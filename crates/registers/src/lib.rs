//! # waitfree-registers
//!
//! The register substrate under level 1 of the hierarchy.
//!
//! The paper's §3.1 situates its results against the register-construction
//! literature it cites ([3, 4, 13, 16, 21, 23, 24, 27, 29]): atomic
//! read/write registers are themselves *built*, wait-free, out of weaker
//! "safe" registers. This crate makes level 1 a real substrate rather than
//! an assumed primitive:
//!
//! * [`base`] — safe and regular register models (reads overlapping a
//!   write are resolved adversarially, via
//!   [`waitfree_model::BranchingSpec`]), and a typed register bank for
//!   constructions whose registers carry structured values;
//! * [`semantics`] — history checkers for the safe / regular / atomic
//!   register conditions (Lamport's hierarchy);
//! * [`constructions`] — the classical wait-free constructions:
//!   safe→regular (binary), binary regular→multivalued regular (unary
//!   encoding), SRSW atomic→MRSW atomic and MRSW→MRMW (timestamped);
//! * [`snapshot`] — a wait-free atomic snapshot from atomic registers
//!   (double collect with embedded-scan helping).
//!
//! Everything is verified by driving the front-ends through the explorer
//! and checking the produced histories against the appropriate semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base;
pub mod constructions;
pub mod semantics;
pub mod snapshot;
