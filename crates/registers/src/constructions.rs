//! The classical wait-free register constructions, bottom of the tower:
//!
//! 1. [`SafeToRegular`] — binary SRSW regular from binary SRSW safe
//!    (Lamport): the writer skips writes that would not change the value,
//!    so every actual write changes it, and an overlapping read's
//!    arbitrary binary result happens to always be "old or new".
//! 2. [`UnaryMultivalued`] — k-valued SRSW regular from k binary SRSW
//!    regular registers (Lamport): write sets bit v then clears the bits
//!    below it, top-down; read scans upward and returns the first set bit.
//! 3. [`SrswToMrsw`] — multi-reader atomic from single-reader atomic
//!    registers (unbounded timestamps): the writer stamps each value; each
//!    reader forwards what it returned to the other readers so later
//!    reads never return older values.
//! 4. [`MrswToMrmw`] — multi-writer atomic from multi-reader atomic
//!    registers: each writer owns a cell; writes stamp `(max ts + 1,
//!    writer id)`; reads return the lexicographically largest stamp.
//! 5. [`RegularToAtomicSrsw`] — atomic SRSW from one regular SRSW
//!    register: the writer stamps values, the reader remembers the newest
//!    stamp it returned, suppressing new/old inversions.
//!
//! Every construction is an [`ImplAutomaton`] driven by the explorer,
//! and its histories are checked against the appropriate level of
//! [`crate::semantics`].
//!
//! [`ImplAutomaton`]: waitfree_model::ImplAutomaton

use waitfree_model::{ImplAction, ImplAutomaton, Pid, Val};
use waitfree_objects::register::{RegOp, RegResp};

use crate::base::{TypedBank, TypedOp, TypedResp, WeakBank, WeakOp, WeakResp};

// ---------------------------------------------------------------------
// 1. Safe -> regular (binary, SRSW).
// ---------------------------------------------------------------------

/// Binary SRSW regular register from a binary SRSW safe register.
///
/// Process 0 is the writer, process 1 the reader. The front-end's
/// persistent state remembers the last written value; writing the same
/// value again performs **no** base-register operation, which is the whole
/// trick: every physical write changes the value, so a concurrent read's
/// arbitrary result is always either the old or the new value.
#[derive(Clone, Debug)]
pub struct SafeToRegular {
    initial: Val,
}

/// Front-end state of [`SafeToRegular`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum S2RState {
    /// Between operations; the writer's copy of the register's value.
    Idle(Val),
    /// Writing: about to `StartWrite`.
    Start(Val),
    /// Writing: about to `EndWrite`.
    End(Val),
    /// About to read.
    DoRead(Val),
    /// About to return.
    Respond(Val, RegResp),
}

impl SafeToRegular {
    /// The front-end plus a fresh binary safe register holding `initial`.
    #[must_use]
    pub fn setup(initial: Val) -> (Self, WeakBank) {
        (
            SafeToRegular { initial },
            WeakBank::new(crate::base::Weakness::Safe, 1, 2, initial),
        )
    }
}

impl ImplAutomaton for SafeToRegular {
    type HiOp = RegOp;
    type HiResp = RegResp;
    type LoOp = WeakOp;
    type LoResp = WeakResp;
    type State = S2RState;

    fn idle(&self, _pid: Pid) -> S2RState {
        // The writer's mirror starts at the register's initial value.
        S2RState::Idle(self.initial)
    }

    fn begin(&self, pid: Pid, state: &S2RState, op: &RegOp) -> S2RState {
        let S2RState::Idle(mirror) = state else {
            unreachable!("begin on a busy front-end")
        };
        match (pid, op) {
            (Pid(0), RegOp::Write(v)) => {
                if v == mirror {
                    // Skip the physical write entirely.
                    S2RState::Respond(*mirror, RegResp::Written)
                } else {
                    S2RState::Start(*v)
                }
            }
            (_, RegOp::Read) => S2RState::DoRead(*mirror),
            (w, o) => unreachable!("SRSW violation: {w} invoked {o:?}"),
        }
    }

    fn action(&self, _pid: Pid, state: &S2RState) -> ImplAction<WeakOp, RegResp> {
        match state {
            S2RState::Idle(_) => unreachable!("idle front-end has no action"),
            S2RState::Start(v) => ImplAction::Invoke(WeakOp::StartWrite(0, *v)),
            S2RState::End(_) => ImplAction::Invoke(WeakOp::EndWrite(0)),
            S2RState::DoRead(_) => ImplAction::Invoke(WeakOp::Read(0)),
            S2RState::Respond(_, r) => ImplAction::Return(r.clone()),
        }
    }

    fn observe(&self, _pid: Pid, state: &S2RState, resp: &WeakResp) -> S2RState {
        match (state, resp) {
            (S2RState::Start(v), WeakResp::Ack) => S2RState::End(*v),
            (S2RState::End(v), WeakResp::Ack) => S2RState::Respond(*v, RegResp::Written),
            (S2RState::DoRead(mirror), WeakResp::Read(v)) => {
                S2RState::Respond(*mirror, RegResp::Read(*v))
            }
            (s, r) => unreachable!("unexpected {r:?} in {s:?}"),
        }
    }

    fn finish(&self, _pid: Pid, state: &S2RState) -> S2RState {
        let S2RState::Respond(mirror, _) = state else {
            unreachable!("finish outside Respond")
        };
        S2RState::Idle(*mirror)
    }
}

// ---------------------------------------------------------------------
// 2. Binary regular -> k-valued regular (unary encoding, SRSW).
// ---------------------------------------------------------------------

/// k-valued SRSW regular register from k binary SRSW regular registers.
///
/// Process 0 writes, process 1 reads. `write(v)`: set `b[v] := 1`, then
/// clear `b[v-1] … b[0]`. `read`: scan upward, return the index of the
/// first set bit.
#[derive(Clone, Debug)]
pub struct UnaryMultivalued {
    /// Number of representable values.
    pub k: usize,
}

/// Front-end state of [`UnaryMultivalued`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum UnaryState {
    /// Between operations.
    Idle,
    /// Writing: about to start setting bit `v`.
    SetStart {
        /// The value being written.
        v: usize,
    },
    /// Writing: about to finish setting bit `v`.
    SetEnd {
        /// The value being written.
        v: usize,
    },
    /// Writing: about to start clearing bit `j` (descending from `v-1`).
    ClearStart {
        /// The value being written.
        v: usize,
        /// The bit being cleared.
        j: usize,
    },
    /// Writing: about to finish clearing bit `j`.
    ClearEnd {
        /// The value being written.
        v: usize,
        /// The bit being cleared.
        j: usize,
    },
    /// Reading: about to read bit `j` (ascending).
    Scan {
        /// The bit being read.
        j: usize,
    },
    /// About to return.
    Respond(RegResp),
}

impl UnaryMultivalued {
    /// The front-end plus its bank of `k` binary regular registers,
    /// encoding the initial value `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is outside `0..k`.
    #[must_use]
    pub fn setup(k: usize, initial: usize) -> (Self, WeakBank) {
        assert!(initial < k, "initial value outside domain");
        let mut bank = WeakBank::new(crate::base::Weakness::Regular, k, 2, 0);
        // Pre-set the initial bit (a private initialization, not a step).
        use waitfree_model::BranchingSpec;
        let (b, _) = bank
            .apply_all(Pid(0), &WeakOp::StartWrite(initial, 1))
            .remove(0);
        let (b, _) = b.apply_all(Pid(0), &WeakOp::EndWrite(initial)).remove(0);
        bank = b;
        (UnaryMultivalued { k }, bank)
    }
}

impl ImplAutomaton for UnaryMultivalued {
    type HiOp = RegOp;
    type HiResp = RegResp;
    type LoOp = WeakOp;
    type LoResp = WeakResp;
    type State = UnaryState;

    fn idle(&self, _pid: Pid) -> UnaryState {
        UnaryState::Idle
    }

    fn begin(&self, pid: Pid, _state: &UnaryState, op: &RegOp) -> UnaryState {
        match (pid, op) {
            (Pid(0), RegOp::Write(v)) => {
                let v = usize::try_from(*v).expect("value in 0..k");
                assert!(v < self.k, "write outside domain");
                UnaryState::SetStart { v }
            }
            (_, RegOp::Read) => UnaryState::Scan { j: 0 },
            (w, o) => unreachable!("SRSW violation: {w} invoked {o:?}"),
        }
    }

    fn action(&self, _pid: Pid, state: &UnaryState) -> ImplAction<WeakOp, RegResp> {
        match state {
            UnaryState::Idle => unreachable!("idle front-end has no action"),
            UnaryState::SetStart { v } => ImplAction::Invoke(WeakOp::StartWrite(*v, 1)),
            UnaryState::SetEnd { v } => ImplAction::Invoke(WeakOp::EndWrite(*v)),
            UnaryState::ClearStart { j, .. } => ImplAction::Invoke(WeakOp::StartWrite(*j, 0)),
            UnaryState::ClearEnd { j, .. } => ImplAction::Invoke(WeakOp::EndWrite(*j)),
            UnaryState::Scan { j } => ImplAction::Invoke(WeakOp::Read(*j)),
            UnaryState::Respond(r) => ImplAction::Return(r.clone()),
        }
    }

    fn observe(&self, _pid: Pid, state: &UnaryState, resp: &WeakResp) -> UnaryState {
        match (state.clone(), resp) {
            (UnaryState::SetStart { v }, WeakResp::Ack) => UnaryState::SetEnd { v },
            (UnaryState::SetEnd { v }, WeakResp::Ack) => {
                if v == 0 {
                    UnaryState::Respond(RegResp::Written)
                } else {
                    UnaryState::ClearStart { v, j: v - 1 }
                }
            }
            (UnaryState::ClearStart { v, j }, WeakResp::Ack) => UnaryState::ClearEnd { v, j },
            (UnaryState::ClearEnd { v, j }, WeakResp::Ack) => {
                if j == 0 {
                    UnaryState::Respond(RegResp::Written)
                } else {
                    UnaryState::ClearStart { v, j: j - 1 }
                }
            }
            (UnaryState::Scan { j }, WeakResp::Read(bit)) => {
                if *bit == 1 {
                    UnaryState::Respond(RegResp::Read(j as Val))
                } else {
                    assert!(
                        j + 1 < self.k,
                        "scan ran off the top: construction invariant violated"
                    );
                    UnaryState::Scan { j: j + 1 }
                }
            }
            (s, r) => unreachable!("unexpected {r:?} in {s:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// 3. SRSW atomic -> MRSW atomic (unbounded timestamps).
// ---------------------------------------------------------------------

/// A stamped value: (timestamp, value).
pub type Stamped = (Val, Val);

/// MRSW atomic register from SRSW atomic registers, for one writer
/// (process 0) and `readers` readers (processes 1..=readers).
///
/// Register layout in the [`TypedBank`]: cells `0..readers` are the
/// writer's columns (one per reader); cells `readers + i·readers + j`
/// hold what reader `i` last reported to reader `j`. Every cell has one
/// writer and one reader — the SRSW discipline.
#[derive(Clone, Debug)]
pub struct SrswToMrsw {
    /// Number of reader processes.
    pub readers: usize,
}

/// Front-end state of [`SrswToMrsw`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MrswState {
    /// Between operations; the writer's timestamp counter.
    Idle(Val),
    /// Writer: broadcasting `(ts, v)` to column `i`.
    Broadcast {
        /// Stamp being written.
        stamped: Stamped,
        /// Next column.
        i: usize,
    },
    /// Reader: about to read the writer's column.
    ReadColumn,
    /// Reader: collecting reports; `best` is the max stamp so far.
    ReadReports {
        /// Best stamped value seen.
        best: Stamped,
        /// Next reporter to read.
        j: usize,
    },
    /// Reader: forwarding `best` to peer `j`.
    Forward {
        /// Value being returned and forwarded.
        best: Stamped,
        /// Next peer to inform.
        j: usize,
    },
    /// About to return.
    Respond(Val, RegResp),
}

impl SrswToMrsw {
    /// The front-end plus its bank, register initialized to `initial`.
    #[must_use]
    pub fn setup(readers: usize, initial: Val) -> (Self, TypedBank<Stamped>) {
        let cells = readers + readers * readers;
        (
            SrswToMrsw { readers },
            TypedBank::new(vec![(0, initial); cells]),
        )
    }

    fn column(&self, reader: usize) -> usize {
        reader
    }

    fn report(&self, from: usize, to: usize) -> usize {
        self.readers + from * self.readers + to
    }
}

impl ImplAutomaton for SrswToMrsw {
    type HiOp = RegOp;
    type HiResp = RegResp;
    type LoOp = TypedOp<Stamped>;
    type LoResp = TypedResp<Stamped>;
    type State = MrswState;

    fn idle(&self, _pid: Pid) -> MrswState {
        MrswState::Idle(0)
    }

    fn begin(&self, pid: Pid, state: &MrswState, op: &RegOp) -> MrswState {
        let MrswState::Idle(ts) = state else {
            unreachable!("begin on a busy front-end")
        };
        match (pid, op) {
            (Pid(0), RegOp::Write(v)) => MrswState::Broadcast {
                stamped: (ts + 1, *v),
                i: 0,
            },
            (Pid(p), RegOp::Read) if p >= 1 && p <= self.readers => MrswState::ReadColumn,
            (w, o) => unreachable!("role violation: {w} invoked {o:?}"),
        }
    }

    fn action(&self, pid: Pid, state: &MrswState) -> ImplAction<TypedOp<Stamped>, RegResp> {
        let me = pid.0.wrapping_sub(1); // reader index
        match state {
            MrswState::Idle(_) => unreachable!("idle front-end has no action"),
            MrswState::Broadcast { stamped, i } => {
                ImplAction::Invoke(TypedOp::Write(self.column(*i), *stamped))
            }
            MrswState::ReadColumn => ImplAction::Invoke(TypedOp::Read(self.column(me))),
            MrswState::ReadReports { j, .. } => {
                ImplAction::Invoke(TypedOp::Read(self.report(*j, me)))
            }
            MrswState::Forward { best, j } => {
                ImplAction::Invoke(TypedOp::Write(self.report(me, *j), *best))
            }
            MrswState::Respond(_, r) => ImplAction::Return(r.clone()),
        }
    }

    fn observe(&self, _pid: Pid, state: &MrswState, resp: &TypedResp<Stamped>) -> MrswState {
        match (state.clone(), resp) {
            (MrswState::Broadcast { stamped, i }, TypedResp::Written) => {
                if i + 1 < self.readers {
                    MrswState::Broadcast { stamped, i: i + 1 }
                } else {
                    MrswState::Respond(stamped.0, RegResp::Written)
                }
            }
            (MrswState::ReadColumn, TypedResp::Read(s)) => {
                MrswState::ReadReports { best: *s, j: 0 }
            }
            (MrswState::ReadReports { best, j }, TypedResp::Read(s)) => {
                let best = if s.0 > best.0 { *s } else { best };
                if j + 1 < self.readers {
                    MrswState::ReadReports { best, j: j + 1 }
                } else {
                    MrswState::Forward { best, j: 0 }
                }
            }
            (MrswState::Forward { best, j }, TypedResp::Written) => {
                if j + 1 < self.readers {
                    MrswState::Forward { best, j: j + 1 }
                } else {
                    MrswState::Respond(0, RegResp::Read(best.1))
                }
            }
            (s, r) => unreachable!("unexpected {r:?} in {s:?}"),
        }
    }

    fn finish(&self, pid: Pid, state: &MrswState) -> MrswState {
        let MrswState::Respond(ts, _) = state else {
            unreachable!("finish outside Respond")
        };
        if pid == Pid(0) {
            MrswState::Idle(*ts)
        } else {
            MrswState::Idle(0)
        }
    }
}

// ---------------------------------------------------------------------
// 4. MRSW atomic -> MRMW atomic (timestamps + writer-id tie-break).
// ---------------------------------------------------------------------

/// A stamped value with writer tie-break: (timestamp, writer id, value).
pub type WStamped = (Val, Val, Val);

/// MRMW atomic register from MRSW atomic registers for `n` processes, all
/// of which may both read and write. Cell `w` is written only by process
/// `w` and read by everyone.
#[derive(Clone, Debug)]
pub struct MrswToMrmw {
    /// Number of processes.
    pub n: usize,
}

/// Front-end state of [`MrswToMrmw`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MrmwState {
    /// Between operations.
    Idle,
    /// Collecting all cells; `Some(v)` when writing `v`, `None` for reads.
    Collect {
        /// `Some(value)` for writes, `None` for reads.
        writing: Option<Val>,
        /// Best stamp collected so far.
        best: WStamped,
        /// Next cell to read.
        j: usize,
    },
    /// Writer: about to install the stamped value in its own cell.
    Install {
        /// The stamp to install.
        stamped: WStamped,
    },
    /// About to return.
    Respond(RegResp),
}

impl MrswToMrmw {
    /// The front-end plus its bank, register initialized to `initial`.
    #[must_use]
    pub fn setup(n: usize, initial: Val) -> (Self, TypedBank<WStamped>) {
        (MrswToMrmw { n }, TypedBank::new(vec![(0, -1, initial); n]))
    }
}

impl ImplAutomaton for MrswToMrmw {
    type HiOp = RegOp;
    type HiResp = RegResp;
    type LoOp = TypedOp<WStamped>;
    type LoResp = TypedResp<WStamped>;
    type State = MrmwState;

    fn idle(&self, _pid: Pid) -> MrmwState {
        MrmwState::Idle
    }

    fn begin(&self, _pid: Pid, _state: &MrmwState, op: &RegOp) -> MrmwState {
        MrmwState::Collect {
            writing: match op {
                RegOp::Write(v) => Some(*v),
                RegOp::Read => None,
            },
            best: (-1, -1, 0),
            j: 0,
        }
    }

    fn action(&self, pid: Pid, state: &MrmwState) -> ImplAction<TypedOp<WStamped>, RegResp> {
        match state {
            MrmwState::Idle => unreachable!("idle front-end has no action"),
            MrmwState::Collect { j, .. } => ImplAction::Invoke(TypedOp::Read(*j)),
            MrmwState::Install { stamped } => {
                ImplAction::Invoke(TypedOp::Write(pid.0, *stamped))
            }
            MrmwState::Respond(r) => ImplAction::Return(r.clone()),
        }
    }

    fn observe(&self, pid: Pid, state: &MrmwState, resp: &TypedResp<WStamped>) -> MrmwState {
        match (state.clone(), resp) {
            (MrmwState::Collect { writing, best, j }, TypedResp::Read(s)) => {
                let best = if (s.0, s.1) > (best.0, best.1) { *s } else { best };
                if j + 1 < self.n {
                    MrmwState::Collect { writing, best, j: j + 1 }
                } else {
                    match writing {
                        Some(v) => MrmwState::Install {
                            stamped: (best.0 + 1, pid.as_val(), v),
                        },
                        None => MrmwState::Respond(RegResp::Read(best.2)),
                    }
                }
            }
            (MrmwState::Install { .. }, TypedResp::Written) => {
                MrmwState::Respond(RegResp::Written)
            }
            (s, r) => unreachable!("unexpected {r:?} in {s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::{is_atomic, is_regular};
    use waitfree_explorer::impl_sim::{all_histories, run_random};

    #[test]
    fn safe_to_regular_all_histories_are_regular() {
        let (fe, bank) = SafeToRegular::setup(0);
        let workloads = vec![
            vec![RegOp::Write(1), RegOp::Write(1), RegOp::Write(0)],
            vec![RegOp::Read, RegOp::Read, RegOp::Read],
        ];
        let histories = all_histories(&fe, &bank, &workloads, 500_000);
        assert!(!histories.is_empty());
        let mut overlapping = 0;
        for h in &histories {
            assert!(is_regular(h, 0), "{h:?}");
            if !is_atomic(h, 0) {
                overlapping += 1;
            }
        }
        // Regularity is strictly weaker: some history should exhibit an
        // old-new inversion (not atomic) — if none does, the test setup is
        // too weak to be interesting.
        let _ = overlapping; // inversion needs 2+ reads inside one write; may be 0 here
    }

    #[test]
    fn raw_safe_register_is_not_regular() {
        // Control experiment: the *unprotected* safe register (writer
        // rewrites the same value) produces non-regular histories. The
        // construction's skip rule is what restores regularity.
        use waitfree_model::{BranchingSpec, History};
        // Manually build: register holds 1; writer starts writing 1
        // (same value); overlapping read returns 0 (safe allows it).
        let bank = WeakBank::new(crate::base::Weakness::Safe, 1, 2, 1);
        let (bank, _) = bank.apply_all(Pid(0), &WeakOp::StartWrite(0, 1)).remove(0);
        let garbage = bank
            .apply_all(Pid(1), &WeakOp::Read(0))
            .into_iter()
            .any(|(_, r)| r == WeakResp::Read(0));
        assert!(garbage, "safe register may return garbage during overlap");
        // And that history, at the high level, is not regular:
        let mut h: History<RegOp, RegResp> = History::new();
        h.invoke(Pid(0), RegOp::Write(1));
        h.invoke(Pid(1), RegOp::Read);
        h.respond(Pid(1), RegResp::Read(0)).unwrap();
        h.respond(Pid(0), RegResp::Written).unwrap();
        assert!(!is_regular(&h, 1));
    }

    #[test]
    fn unary_multivalued_histories_are_regular() {
        let (fe, bank) = UnaryMultivalued::setup(3, 0);
        let workloads = vec![
            vec![RegOp::Write(2), RegOp::Write(1)],
            vec![RegOp::Read, RegOp::Read],
        ];
        let histories = all_histories(&fe, &bank, &workloads, 500_000);
        assert!(!histories.is_empty());
        for h in &histories {
            assert!(is_regular(h, 0), "{h:?}");
        }
    }

    #[test]
    fn unary_multivalued_sequential_read_back() {
        let (fe, bank) = UnaryMultivalued::setup(4, 1);
        let run = run_random(&fe, bank, &[vec![RegOp::Write(3)], vec![]], 1, 0);
        assert!(run.complete);
        let (fe2, bank2) = UnaryMultivalued::setup(4, 3);
        let run2 = run_random(&fe2, bank2, &[vec![], vec![RegOp::Read]], 1, 0);
        assert_eq!(
            run2.history.ops()[0].resp,
            Some(RegResp::Read(3)),
            "read returns the encoded initial value"
        );
    }

    #[test]
    fn srsw_to_mrsw_exhaustive_two_readers_is_atomic() {
        let (fe, bank) = SrswToMrsw::setup(2, 0);
        let workloads = vec![
            vec![RegOp::Write(1)],
            vec![RegOp::Read, RegOp::Read],
            vec![RegOp::Read],
        ];
        let histories = all_histories(&fe, &bank, &workloads, 2_000_000);
        assert!(!histories.is_empty());
        for h in &histories {
            assert!(is_atomic(h, 0), "new-old inversion slipped through: {h:?}");
        }
    }

    #[test]
    fn srsw_to_mrsw_random_runs_are_atomic() {
        let (fe, bank) = SrswToMrsw::setup(3, 0);
        let workloads = vec![
            vec![RegOp::Write(1), RegOp::Write(2), RegOp::Write(3)],
            vec![RegOp::Read, RegOp::Read],
            vec![RegOp::Read, RegOp::Read],
            vec![RegOp::Read, RegOp::Read],
        ];
        for seed in 0..100 {
            let run = run_random(&fe, bank.clone(), &workloads, seed, 300);
            assert!(run.complete);
            assert!(is_atomic(&run.history, 0), "seed {seed}: {:?}", run.history);
        }
    }

    #[test]
    fn mrsw_to_mrmw_exhaustive_two_writers_is_atomic() {
        let (fe, bank) = MrswToMrmw::setup(2, 0);
        let workloads = vec![vec![RegOp::Write(1), RegOp::Read], vec![RegOp::Write(2), RegOp::Read]];
        let histories = all_histories(&fe, &bank, &workloads, 2_000_000);
        assert!(!histories.is_empty());
        for h in &histories {
            assert!(is_atomic(h, 0), "{h:?}");
        }
    }

    #[test]
    fn mrsw_to_mrmw_random_runs_are_atomic() {
        let (fe, bank) = MrswToMrmw::setup(3, 0);
        let workloads = vec![
            vec![RegOp::Write(1), RegOp::Read, RegOp::Write(4)],
            vec![RegOp::Write(2), RegOp::Read],
            vec![RegOp::Read, RegOp::Write(3), RegOp::Read],
        ];
        for seed in 0..100 {
            let run = run_random(&fe, bank.clone(), &workloads, seed, 300);
            assert!(run.complete);
            assert!(is_atomic(&run.history, 0), "seed {seed}: {:?}", run.history);
        }
    }

    #[test]
    fn mrmw_write_stamps_strictly_increase() {
        use waitfree_model::ObjectSpec;
        let (fe, mut bank) = MrswToMrmw::setup(2, 0);
        // Serial writes by alternating writers: stamps must increase.
        let mut last = (-1, -1);
        for (w, v) in [(0usize, 5), (1usize, 6), (0usize, 7)] {
            let pid = Pid(w);
            let mut st = fe.begin(pid, &fe.idle(pid), &RegOp::Write(v));
            while let ImplAction::Invoke(lo) = fe.action(pid, &st) {
                let resp = bank.apply(pid, &lo);
                st = fe.observe(pid, &st, &resp);
            }
            let cell = *bank.value(w);
            assert!((cell.0, cell.1) > last, "stamps increase");
            last = (cell.0, cell.1);
            assert_eq!(cell.2, v);
        }
    }
}

// ---------------------------------------------------------------------
// 5. Regular -> atomic (SRSW, unbounded timestamps).
// ---------------------------------------------------------------------

/// SRSW atomic register from one SRSW regular register (unbounded
/// timestamps). The writer stamps each value; the reader remembers the
/// highest-stamped value it has returned and never goes back — which is
/// exactly the new/old inversion that separates regular from atomic.
///
/// Stamps and values are packed into the base register's integer domain:
/// `encoded = ts · k + v` with `v ∈ 0..k`.
#[derive(Clone, Debug)]
pub struct RegularToAtomicSrsw {
    /// Value domain size `k`.
    pub k: Val,
    /// Maximum number of writes (sizes the packed domain).
    pub max_writes: Val,
}

/// Front-end state of [`RegularToAtomicSrsw`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum R2AState {
    /// Between operations; the writer's stamp counter or the reader's
    /// remembered `(stamp, value)`.
    Idle {
        /// Writer: stamps issued. Reader: highest stamp returned.
        ts: Val,
        /// Reader: the value carrying that stamp.
        val: Val,
    },
    /// Writer: about to start the stamped write.
    Start {
        /// Packed `(ts+1)·k + v`.
        encoded: Val,
    },
    /// Writer: about to finish the write.
    End {
        /// Packed value being installed.
        encoded: Val,
    },
    /// Reader: about to read the base register.
    DoRead {
        /// Remembered stamp.
        ts: Val,
        /// Remembered value.
        val: Val,
    },
    /// About to return.
    Respond {
        /// State to persist.
        ts: Val,
        /// Value to persist.
        val: Val,
        /// The high-level response.
        resp: RegResp,
    },
}

impl RegularToAtomicSrsw {
    /// The front-end plus its regular base register, initialized to
    /// `initial` (stamp 0).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is outside `0..k`.
    #[must_use]
    pub fn setup(k: Val, max_writes: Val, initial: Val) -> (Self, WeakBank) {
        assert!((0..k).contains(&initial), "initial value outside domain");
        let domain = k * (max_writes + 1);
        (
            RegularToAtomicSrsw { k, max_writes },
            WeakBank::new(crate::base::Weakness::Regular, 1, domain, initial),
        )
    }

    fn decode(&self, encoded: Val) -> (Val, Val) {
        (encoded / self.k, encoded % self.k)
    }
}

impl ImplAutomaton for RegularToAtomicSrsw {
    type HiOp = RegOp;
    type HiResp = RegResp;
    type LoOp = WeakOp;
    type LoResp = WeakResp;
    type State = R2AState;

    fn idle(&self, _pid: Pid) -> R2AState {
        R2AState::Idle { ts: 0, val: 0 }
    }

    fn begin(&self, pid: Pid, state: &R2AState, op: &RegOp) -> R2AState {
        let R2AState::Idle { ts, val } = state else {
            unreachable!("begin on a busy front-end")
        };
        match (pid, op) {
            (Pid(0), RegOp::Write(v)) => {
                assert!((0..self.k).contains(v), "write outside domain");
                assert!(*ts < self.max_writes, "write budget exhausted");
                R2AState::Start { encoded: (ts + 1) * self.k + v }
            }
            (Pid(1), RegOp::Read) => R2AState::DoRead { ts: *ts, val: *val },
            (w, o) => unreachable!("SRSW violation: {w} invoked {o:?}"),
        }
    }

    fn action(&self, _pid: Pid, state: &R2AState) -> ImplAction<WeakOp, RegResp> {
        match state {
            R2AState::Idle { .. } => unreachable!("idle front-end has no action"),
            R2AState::Start { encoded } => ImplAction::Invoke(WeakOp::StartWrite(0, *encoded)),
            R2AState::End { .. } => ImplAction::Invoke(WeakOp::EndWrite(0)),
            R2AState::DoRead { .. } => ImplAction::Invoke(WeakOp::Read(0)),
            R2AState::Respond { resp, .. } => ImplAction::Return(resp.clone()),
        }
    }

    fn observe(&self, _pid: Pid, state: &R2AState, resp: &WeakResp) -> R2AState {
        match (state.clone(), resp) {
            (R2AState::Start { encoded }, WeakResp::Ack) => R2AState::End { encoded },
            (R2AState::End { encoded }, WeakResp::Ack) => {
                let (ts, val) = self.decode(encoded);
                R2AState::Respond { ts, val, resp: RegResp::Written }
            }
            (R2AState::DoRead { ts, val }, WeakResp::Read(encoded)) => {
                let (t, x) = self.decode(*encoded);
                if t >= ts {
                    R2AState::Respond { ts: t, val: x, resp: RegResp::Read(x) }
                } else {
                    // A stale (regular) read: stick with the remembered
                    // newer value — this suppresses new/old inversions.
                    R2AState::Respond { ts, val, resp: RegResp::Read(val) }
                }
            }
            (s, r) => unreachable!("unexpected {r:?} in {s:?}"),
        }
    }

    fn finish(&self, _pid: Pid, state: &R2AState) -> R2AState {
        let R2AState::Respond { ts, val, .. } = state else {
            unreachable!("finish outside Respond")
        };
        R2AState::Idle { ts: *ts, val: *val }
    }
}

#[cfg(test)]
mod r2a_tests {
    use super::*;
    use crate::semantics::{is_atomic, is_regular};
    use waitfree_explorer::impl_sim::all_histories;

    #[test]
    fn regular_to_atomic_histories_are_atomic() {
        let (fe, bank) = RegularToAtomicSrsw::setup(4, 8, 0);
        let workloads = vec![
            vec![RegOp::Write(1), RegOp::Write(2)],
            vec![RegOp::Read, RegOp::Read, RegOp::Read],
        ];
        let histories = all_histories(&fe, &bank, &workloads, 2_000_000);
        assert!(!histories.is_empty());
        for h in &histories {
            assert!(is_atomic(h, 0), "new/old inversion: {h:?}");
        }
    }

    #[test]
    fn base_regular_register_alone_is_not_atomic() {
        // Control: without the timestamp memory, a regular register does
        // exhibit the inversion (constructed in semantics tests); here we
        // confirm the construction's histories are a strict subset —
        // every atomic history is regular.
        let (fe, bank) = RegularToAtomicSrsw::setup(4, 8, 0);
        let workloads = vec![vec![RegOp::Write(3)], vec![RegOp::Read, RegOp::Read]];
        for h in &all_histories(&fe, &bank, &workloads, 500_000) {
            assert!(is_regular(h, 0));
            assert!(is_atomic(h, 0));
        }
    }

    #[test]
    fn sequential_read_back() {
        use waitfree_explorer::impl_sim::run_random;
        let (fe, bank) = RegularToAtomicSrsw::setup(8, 4, 5);
        let run = run_random(
            &fe,
            bank,
            &[vec![RegOp::Write(7)], vec![RegOp::Read]],
            3,
            0,
        );
        assert!(run.complete);
    }

    #[test]
    #[should_panic(expected = "write budget")]
    fn write_budget_enforced() {
        use waitfree_explorer::impl_sim::run_random;
        let (fe, bank) = RegularToAtomicSrsw::setup(2, 1, 0);
        let _ = run_random(
            &fe,
            bank,
            &[vec![RegOp::Write(1), RegOp::Write(0)], vec![]],
            1,
            0,
        );
    }
}
