//! Wait-free atomic snapshot from atomic registers (the unbounded-
//! timestamp double-collect construction with embedded-scan helping,
//! after Afek et al.).
//!
//! The snapshot object holds one segment per process; `update` installs a
//! value in the caller's segment and `scan` returns an atomic view of all
//! segments. The construction is the canonical example of *helping*: an
//! updater embeds a full scan in its segment, so a scanner that keeps
//! getting disrupted can borrow the view of a process that moved twice —
//! that view is guaranteed to lie within the scanner's interval.
//!
//! Registers alone cannot solve 2-process consensus (Theorem 2), yet they
//! *can* do atomic snapshots — a useful calibration of how much of the
//! hierarchy's level 1 is actually usable.

use waitfree_model::{ImplAction, ImplAutomaton, ObjectSpec, Pid, Val};

use crate::base::{TypedBank, TypedOp, TypedResp};

/// One process's segment in the snapshot representation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Segment {
    /// The stored value.
    pub val: Val,
    /// Monotone per-writer sequence number.
    pub seq: Val,
    /// The writer's embedded scan at update time.
    pub view: Vec<Val>,
}

/// High-level snapshot operations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SnapOp {
    /// Install a value in the caller's segment.
    Update(Val),
    /// Atomically read all segments.
    Scan,
}

/// High-level snapshot responses.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SnapResp {
    /// An update completed.
    Ack,
    /// The scanned view, one value per process.
    View(Vec<Val>),
}

/// The sequential snapshot specification (for the linearizability
/// checker).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SnapSpec {
    cells: Vec<Val>,
}

impl SnapSpec {
    /// A snapshot of `n` segments, all holding `initial`.
    #[must_use]
    pub fn new(n: usize, initial: Val) -> Self {
        SnapSpec {
            cells: vec![initial; n],
        }
    }
}

impl ObjectSpec for SnapSpec {
    type Op = SnapOp;
    type Resp = SnapResp;

    fn apply(&mut self, pid: Pid, op: &SnapOp) -> SnapResp {
        match op {
            SnapOp::Update(v) => {
                self.cells[pid.0] = *v;
                SnapResp::Ack
            }
            SnapOp::Scan => SnapResp::View(self.cells.clone()),
        }
    }
}

/// Why the front-end is scanning.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Mode {
    ForScan,
    ForUpdate(Val),
}

/// Front-end state of [`SnapshotFrontEnd`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SnapState(Inner);

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum Inner {
    /// Between operations; the caller's sequence counter.
    Idle { seq: Val },
    /// Collecting segment `j` into `cur`.
    Collect {
        mode: Mode,
        seq: Val,
        prev: Option<Vec<Segment>>,
        cur: Vec<Segment>,
        j: usize,
        moved: Vec<u8>,
    },
    /// Update: installing the new segment.
    Install { seq: Val, val: Val, view: Vec<Val> },
    /// About to return.
    Respond { seq: Val, resp: SnapResp },
}

/// The double-collect snapshot front-end for `n` processes over a
/// [`TypedBank`] of [`Segment`]s.
#[derive(Clone, Debug)]
pub struct SnapshotFrontEnd {
    /// Number of processes / segments.
    pub n: usize,
}

impl SnapshotFrontEnd {
    /// The front-end plus its bank, all segments holding `initial`.
    #[must_use]
    pub fn setup(n: usize, initial: Val) -> (Self, TypedBank<Segment>) {
        let seg = Segment {
            val: initial,
            seq: 0,
            view: vec![initial; n],
        };
        (SnapshotFrontEnd { n }, TypedBank::new(vec![seg; n]))
    }

    /// Resolution of a finished double collect.
    fn resolve(&self, mode: &Mode, seq: Val, view: Vec<Val>) -> Inner {
        match mode {
            Mode::ForScan => Inner::Respond { seq, resp: SnapResp::View(view) },
            Mode::ForUpdate(v) => Inner::Install { seq, val: *v, view },
        }
    }
}

impl ImplAutomaton for SnapshotFrontEnd {
    type HiOp = SnapOp;
    type HiResp = SnapResp;
    type LoOp = TypedOp<Segment>;
    type LoResp = TypedResp<Segment>;
    type State = SnapState;

    fn idle(&self, _pid: Pid) -> SnapState {
        SnapState(Inner::Idle { seq: 0 })
    }

    fn begin(&self, _pid: Pid, state: &SnapState, op: &SnapOp) -> SnapState {
        let Inner::Idle { seq } = &state.0 else {
            unreachable!("begin on a busy front-end")
        };
        let mode = match op {
            SnapOp::Update(v) => Mode::ForUpdate(*v),
            SnapOp::Scan => Mode::ForScan,
        };
        SnapState(Inner::Collect {
            mode,
            seq: *seq,
            prev: None,
            cur: Vec::new(),
            j: 0,
            moved: vec![0; self.n],
        })
    }

    fn action(&self, pid: Pid, state: &SnapState) -> ImplAction<TypedOp<Segment>, SnapResp> {
        match &state.0 {
            Inner::Idle { .. } => unreachable!("idle front-end has no action"),
            Inner::Collect { j, .. } => ImplAction::Invoke(TypedOp::Read(*j)),
            Inner::Install { seq, val, view } => ImplAction::Invoke(TypedOp::Write(
                pid.0,
                Segment { val: *val, seq: seq + 1, view: view.clone() },
            )),
            Inner::Respond { resp, .. } => ImplAction::Return(resp.clone()),
        }
    }

    fn observe(&self, pid: Pid, state: &SnapState, resp: &TypedResp<Segment>) -> SnapState {
        let Inner::Collect { mode, seq, prev, cur, j, moved } = &state.0 else {
            match (&state.0, resp) {
                (Inner::Install { seq, .. }, TypedResp::Written) => {
                    return SnapState(Inner::Respond { seq: seq + 1, resp: SnapResp::Ack })
                }
                (s, r) => unreachable!("unexpected {r:?} in {s:?}"),
            }
        };
        let TypedResp::Read(segment) = resp else {
            unreachable!("collect reads segments")
        };
        let mut cur = cur.clone();
        cur.push(segment.clone());
        if *j + 1 < self.n {
            return SnapState(Inner::Collect {
                mode: mode.clone(),
                seq: *seq,
                prev: prev.clone(),
                cur,
                j: j + 1,
                moved: moved.clone(),
            });
        }
        // A collect just completed.
        let Some(prev_c) = prev else {
            // First collect: go around again.
            return SnapState(Inner::Collect {
                mode: mode.clone(),
                seq: *seq,
                prev: Some(cur),
                cur: Vec::new(),
                j: 0,
                moved: moved.clone(),
            });
        };
        if prev_c.iter().zip(&cur).all(|(a, b)| a.seq == b.seq) {
            // Clean double collect.
            let view: Vec<Val> = cur.iter().map(|s| s.val).collect();
            let _ = pid;
            return SnapState(self.resolve(mode, *seq, view));
        }
        // Someone moved; track movers and maybe borrow a view.
        let mut moved = moved.clone();
        for (k, (a, b)) in prev_c.iter().zip(&cur).enumerate() {
            if a.seq != b.seq {
                moved[k] += 1;
                if moved[k] >= 2 {
                    return SnapState(self.resolve(mode, *seq, b.view.clone()));
                }
            }
        }
        SnapState(Inner::Collect {
            mode: mode.clone(),
            seq: *seq,
            prev: Some(cur),
            cur: Vec::new(),
            j: 0,
            moved,
        })
    }

    fn finish(&self, _pid: Pid, state: &SnapState) -> SnapState {
        match &state.0 {
            Inner::Respond { seq, .. } => SnapState(Inner::Idle { seq: *seq }),
            s => unreachable!("finish outside Respond: {s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::impl_sim::{all_histories, run_random};
    use waitfree_model::{linearize, PendingPolicy};

    #[test]
    fn snapshot_spec_is_per_process_segments() {
        let mut s = SnapSpec::new(2, 0);
        s.apply(Pid(1), &SnapOp::Update(9));
        assert_eq!(s.apply(Pid(0), &SnapOp::Scan), SnapResp::View(vec![0, 9]));
    }

    #[test]
    fn exhaustive_two_processes_linearizable() {
        let (fe, bank) = SnapshotFrontEnd::setup(2, 0);
        let workloads = vec![
            vec![SnapOp::Update(5), SnapOp::Scan],
            vec![SnapOp::Scan, SnapOp::Update(7)],
        ];
        let histories = all_histories(&fe, &bank, &workloads, 2_000_000);
        assert!(histories.len() > 1);
        for h in &histories {
            let report = linearize(h, &SnapSpec::new(2, 0), PendingPolicy::MayTakeEffect);
            assert!(report.outcome.is_ok(), "{h:?}");
        }
    }

    #[test]
    fn random_three_processes_linearizable() {
        let (fe, bank) = SnapshotFrontEnd::setup(3, 0);
        let workloads = vec![
            vec![SnapOp::Update(1), SnapOp::Scan, SnapOp::Update(2)],
            vec![SnapOp::Scan, SnapOp::Update(3), SnapOp::Scan],
            vec![SnapOp::Update(4), SnapOp::Scan],
        ];
        for seed in 0..100 {
            let run = run_random(&fe, bank.clone(), &workloads, seed, 400);
            assert!(run.complete, "seed {seed}");
            let report =
                linearize(&run.history, &SnapSpec::new(3, 0), PendingPolicy::MayTakeEffect);
            assert!(report.outcome.is_ok(), "seed {seed}: {:?}", run.history);
        }
    }

    #[test]
    fn scan_costs_are_bounded_by_helping() {
        // Even under heavy interference, a scan performs at most
        // O(n^2) low-level reads before it borrows a view.
        let (fe, bank) = SnapshotFrontEnd::setup(3, 0);
        let workloads = vec![
            vec![SnapOp::Scan],
            vec![SnapOp::Update(1), SnapOp::Update(2), SnapOp::Update(3)],
            vec![SnapOp::Update(4), SnapOp::Update(5)],
        ];
        for seed in 0..50 {
            let run = run_random(&fe, bank.clone(), &workloads, seed, 400);
            assert!(run.complete);
            // n=3: a scan needs at most (n+2) collects of n reads.
            assert!(run.lo_steps[0] <= (3 + 2) * 3, "seed {seed}: {}", run.lo_steps[0]);
        }
    }

    #[test]
    fn sequential_update_then_scan() {
        use waitfree_model::ImplAction;
        let (fe, mut bank) = SnapshotFrontEnd::setup(2, 0);
        let drive = |pid: Pid, op: SnapOp, bank: &mut TypedBank<Segment>| -> SnapResp {
            let mut st = fe.begin(pid, &fe.idle(pid), &op);
            loop {
                match fe.action(pid, &st) {
                    ImplAction::Invoke(lo) => {
                        let resp = bank.apply(pid, &lo);
                        st = fe.observe(pid, &st, &resp);
                    }
                    ImplAction::Return(r) => return r,
                }
            }
        };
        assert_eq!(drive(Pid(0), SnapOp::Update(42), &mut bank), SnapResp::Ack);
        assert_eq!(
            drive(Pid(1), SnapOp::Scan, &mut bank),
            SnapResp::View(vec![42, 0])
        );
    }
}
