//! Base register models: safe, regular, and typed atomic banks.
//!
//! A *safe* register (Lamport \[16\], discussed at the end of the paper's
//! §3.1) "behaves like an atomic read/write register as long as operations
//! do not overlap. If a read overlaps a write, however, no guarantees are
//! made about the value read." A *regular* register narrows that: an
//! overlapping read returns either the old value or a concurrently
//! written one.
//!
//! To expose overlap, writes are split into `StartWrite`/`EndWrite`
//! micro-operations; a read that lands between them is resolved by the
//! adversary through [`BranchingSpec`] — the explorer then quantifies over
//! every resolution.

use std::fmt::Debug;
use std::hash::Hash;

use waitfree_model::{BranchingSpec, ObjectSpec, Pid, Val};

/// Operation on a bank of safe or regular registers.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum WeakOp {
    /// Begin writing `Val` to register `usize`.
    StartWrite(usize, Val),
    /// Complete the pending write to register `usize`.
    EndWrite(usize),
    /// Read register `usize`.
    Read(usize),
}

/// Response of a weak-register operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum WeakResp {
    /// A write step completed.
    Ack,
    /// A read returned this value.
    Read(Val),
}

/// How an overlapping read is resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Weakness {
    /// Safe: an overlapping read may return *any* value in the domain.
    Safe,
    /// Regular: an overlapping read returns the old or the new value.
    Regular,
}

/// A bank of single-writer safe or regular registers over the domain
/// `0..domain` (binary registers have `domain = 2`).
///
/// Writers must bracket writes with `StartWrite`/`EndWrite`; at most one
/// write may be pending per register (single-writer).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct WeakBank {
    weakness: Weakness,
    domain: Val,
    /// Steady value of each register.
    values: Vec<Val>,
    /// Pending write per register, if any.
    writing: Vec<Option<Val>>,
}

impl WeakBank {
    /// A bank of `len` registers with the given weakness and value domain,
    /// all initialized to `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is outside `0..domain`.
    #[must_use]
    pub fn new(weakness: Weakness, len: usize, domain: Val, initial: Val) -> Self {
        assert!((0..domain).contains(&initial), "initial value outside domain");
        WeakBank {
            weakness,
            domain,
            values: vec![initial; len],
            writing: vec![None; len],
        }
    }

    /// Steady value of register `idx` (test convenience).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn value(&self, idx: usize) -> Val {
        self.values[idx]
    }
}

impl BranchingSpec for WeakBank {
    type Op = WeakOp;
    type Resp = WeakResp;

    /// # Panics
    ///
    /// Panics on out-of-bounds registers, on nested writes to the same
    /// register (single-writer violation), or `EndWrite` without a start.
    fn apply_all(&self, _pid: Pid, op: &WeakOp) -> Vec<(Self, WeakResp)> {
        match *op {
            WeakOp::StartWrite(i, v) => {
                assert!(self.writing[i].is_none(), "nested write to register {i}");
                assert!((0..self.domain).contains(&v), "write outside domain");
                let mut next = self.clone();
                next.writing[i] = Some(v);
                vec![(next, WeakResp::Ack)]
            }
            WeakOp::EndWrite(i) => {
                let v = self.writing[i].expect("EndWrite without StartWrite");
                let mut next = self.clone();
                next.values[i] = v;
                next.writing[i] = None;
                vec![(next, WeakResp::Ack)]
            }
            WeakOp::Read(i) => match (self.writing[i], self.weakness) {
                (None, _) => vec![(self.clone(), WeakResp::Read(self.values[i]))],
                (Some(new), Weakness::Regular) => {
                    let mut out = vec![(self.clone(), WeakResp::Read(self.values[i]))];
                    if new != self.values[i] {
                        out.push((self.clone(), WeakResp::Read(new)));
                    }
                    out
                }
                (Some(_), Weakness::Safe) => (0..self.domain)
                    .map(|v| (self.clone(), WeakResp::Read(v)))
                    .collect(),
            },
        }
    }
}

/// Operation on a [`TypedBank`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TypedOp<T> {
    /// Read register `usize`.
    Read(usize),
    /// Write a value to register `usize`.
    Write(usize, T),
}

/// Response of a [`TypedBank`] operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TypedResp<T> {
    /// A write completed.
    Written,
    /// A read returned this value.
    Read(T),
}

/// A bank of *atomic* registers holding arbitrary (hashable) values —
/// timestamps, pairs, embedded scans. The timestamped constructions and
/// the snapshot build on this.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TypedBank<T> {
    cells: Vec<T>,
}

impl<T: Clone + Eq + Hash + Debug> TypedBank<T> {
    /// A bank with the given initial cell contents.
    #[must_use]
    pub fn new(cells: Vec<T>) -> Self {
        TypedBank { cells }
    }

    /// Number of registers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the bank has no registers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Contents of register `idx` (test convenience).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    #[must_use]
    pub fn value(&self, idx: usize) -> &T {
        &self.cells[idx]
    }
}

impl<T: Clone + Eq + Hash + Debug> ObjectSpec for TypedBank<T> {
    type Op = TypedOp<T>;
    type Resp = TypedResp<T>;

    /// # Panics
    ///
    /// Panics if the register index is out of bounds.
    fn apply(&mut self, _pid: Pid, op: &TypedOp<T>) -> TypedResp<T> {
        match op {
            TypedOp::Read(i) => TypedResp::Read(self.cells[*i].clone()),
            TypedOp::Write(i, v) => {
                self.cells[*i] = v.clone();
                TypedResp::Written
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_overlapping_reads_are_exact() {
        let bank = WeakBank::new(Weakness::Safe, 1, 4, 3);
        let out = bank.apply_all(Pid(0), &WeakOp::Read(0));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].1, WeakResp::Read(3));
    }

    #[test]
    fn safe_overlapping_read_branches_over_domain() {
        let bank = WeakBank::new(Weakness::Safe, 1, 4, 0);
        let (bank, _) = bank.apply_all(Pid(0), &WeakOp::StartWrite(0, 1)).remove(0);
        let out = bank.apply_all(Pid(1), &WeakOp::Read(0));
        assert_eq!(out.len(), 4, "any of the 4 domain values may be read");
    }

    #[test]
    fn regular_overlapping_read_branches_old_new() {
        let bank = WeakBank::new(Weakness::Regular, 1, 4, 0);
        let (bank, _) = bank.apply_all(Pid(0), &WeakOp::StartWrite(0, 3)).remove(0);
        let reads: Vec<WeakResp> = bank
            .apply_all(Pid(1), &WeakOp::Read(0))
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(reads, vec![WeakResp::Read(0), WeakResp::Read(3)]);
    }

    #[test]
    fn regular_same_value_write_does_not_branch() {
        let bank = WeakBank::new(Weakness::Regular, 1, 2, 1);
        let (bank, _) = bank.apply_all(Pid(0), &WeakOp::StartWrite(0, 1)).remove(0);
        let out = bank.apply_all(Pid(1), &WeakOp::Read(0));
        assert_eq!(out.len(), 1, "old == new collapses the branch");
    }

    #[test]
    fn end_write_installs_value() {
        let bank = WeakBank::new(Weakness::Safe, 2, 2, 0);
        let (bank, _) = bank.apply_all(Pid(0), &WeakOp::StartWrite(1, 1)).remove(0);
        let (bank, _) = bank.apply_all(Pid(0), &WeakOp::EndWrite(1)).remove(0);
        assert_eq!(bank.value(1), 1);
        assert_eq!(bank.value(0), 0);
    }

    #[test]
    #[should_panic(expected = "nested write")]
    fn single_writer_enforced() {
        let bank = WeakBank::new(Weakness::Safe, 1, 2, 0);
        let (bank, _) = bank.apply_all(Pid(0), &WeakOp::StartWrite(0, 1)).remove(0);
        let _ = bank.apply_all(Pid(0), &WeakOp::StartWrite(0, 1));
    }

    #[test]
    fn typed_bank_round_trip() {
        use waitfree_model::ObjectSpec;
        let mut bank = TypedBank::new(vec![(0i64, 0i64); 2]);
        bank.apply(Pid(0), &TypedOp::Write(1, (5, 7)));
        assert_eq!(bank.apply(Pid(1), &TypedOp::Read(1)), TypedResp::Read((5, 7)));
        assert_eq!(bank.apply(Pid(1), &TypedOp::Read(0)), TypedResp::Read((0, 0)));
    }
}
