//! History checkers for Lamport's register hierarchy: safe ⊂ regular ⊂
//! atomic.
//!
//! Given a single-writer register history (high-level reads and writes
//! with their real-time intervals), decide which condition it satisfies:
//!
//! * **safe** — a read not overlapping any write returns the most recently
//!   written value; an overlapping read may return anything in the domain;
//! * **regular** — a read returns the most recent completed value or any
//!   concurrently-being-written value;
//! * **atomic** — the whole history is linearizable (checked with the
//!   generic [`waitfree_model::linearize`]).

use waitfree_model::{linearize, History, ObjectSpec, PendingPolicy, Pid, Val};
use waitfree_objects::register::{RegOp, RegResp, RwRegister};

/// Extracted read/write intervals of a register history.
struct Intervals {
    /// (value, invoked_at, responded_at) per write; pending writes have
    /// `responded_at == usize::MAX`.
    writes: Vec<(Val, usize, usize)>,
    /// (value read, invoked_at, responded_at) per completed read.
    reads: Vec<(Val, usize, usize)>,
}

fn intervals(history: &History<RegOp, RegResp>) -> Intervals {
    let mut writes = Vec::new();
    let mut reads = Vec::new();
    for op in history.ops() {
        match op.op {
            RegOp::Write(v) => writes.push((v, op.invoked_at, op.responded_at)),
            RegOp::Read => {
                if let Some(RegResp::Read(v)) = op.resp {
                    reads.push((v, op.invoked_at, op.responded_at));
                }
            }
        }
    }
    Intervals { writes, reads }
}

/// Values a read may return under the **regular** condition: the latest
/// write completed before the read began (or `initial`), plus every write
/// overlapping the read.
fn regular_allowed(iv: &Intervals, initial: Val, r_inv: usize, r_resp: usize) -> Vec<Val> {
    let mut allowed = Vec::new();
    // Latest write completed before the read started.
    let last_before = iv
        .writes
        .iter()
        .filter(|&&(_, _, w_resp)| w_resp < r_inv)
        .max_by_key(|&&(_, _, w_resp)| w_resp);
    allowed.push(last_before.map_or(initial, |&(v, _, _)| v));
    // Writes overlapping the read.
    for &(v, w_inv, w_resp) in &iv.writes {
        if w_inv < r_resp && w_resp > r_inv {
            allowed.push(v);
        }
    }
    allowed
}

/// Whether the history satisfies the **safe** condition over the value
/// domain `0..domain`.
#[must_use]
pub fn is_safe(history: &History<RegOp, RegResp>, initial: Val, domain: Val) -> bool {
    let iv = intervals(history);
    iv.reads.iter().all(|&(v, r_inv, r_resp)| {
        let overlapped = iv
            .writes
            .iter()
            .any(|&(_, w_inv, w_resp)| w_inv < r_resp && w_resp > r_inv);
        if overlapped {
            (0..domain).contains(&v)
        } else {
            regular_allowed(&iv, initial, r_inv, r_resp)[0] == v
        }
    })
}

/// Whether the history satisfies the **regular** condition.
#[must_use]
pub fn is_regular(history: &History<RegOp, RegResp>, initial: Val) -> bool {
    let iv = intervals(history);
    iv.reads
        .iter()
        .all(|&(v, r_inv, r_resp)| regular_allowed(&iv, initial, r_inv, r_resp).contains(&v))
}

/// Whether the history satisfies the **atomic** condition (is
/// linearizable).
#[must_use]
pub fn is_atomic(history: &History<RegOp, RegResp>, initial: Val) -> bool {
    linearize(history, &RwRegister::new(initial), PendingPolicy::MayTakeEffect)
        .outcome
        .is_ok()
}

/// Convenience: replay a sequence of already-serial operations into a
/// history (each op completes before the next begins). Useful for tests.
#[must_use]
pub fn serial_history(ops: &[(Pid, RegOp)], initial: Val) -> History<RegOp, RegResp> {
    let mut reg = RwRegister::new(initial);
    let mut h = History::new();
    for (pid, op) in ops {
        h.invoke(*pid, op.clone());
        let resp = reg.apply(*pid, op);
        h.respond(*pid, resp).expect("just invoked");
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// w(1) completes, read overlaps nothing: must see 1 under all three.
    #[test]
    fn serial_histories_satisfy_all_levels() {
        let h = serial_history(
            &[(Pid(0), RegOp::Write(1)), (Pid(1), RegOp::Read)],
            0,
        );
        assert!(is_safe(&h, 0, 2));
        assert!(is_regular(&h, 0));
        assert!(is_atomic(&h, 0));
    }

    /// An overlapping read returning garbage (within domain) is safe but
    /// not regular.
    #[test]
    fn garbage_during_overlap_is_safe_not_regular() {
        let mut h: History<RegOp, RegResp> = History::new();
        h.invoke(Pid(0), RegOp::Write(1)); // long write of 1 over initial 1
        h.invoke(Pid(1), RegOp::Read);
        h.respond(Pid(1), RegResp::Read(0)).unwrap(); // reads 0: neither old nor new
        h.respond(Pid(0), RegResp::Written).unwrap();
        // initial value is 1, write writes 1: regular allows only 1.
        assert!(is_safe(&h, 1, 2));
        assert!(!is_regular(&h, 1));
        assert!(!is_atomic(&h, 1));
    }

    /// Old-new inversion: two sequential reads overlapping one write see
    /// new then old. Regular allows it; atomic does not.
    #[test]
    fn old_new_inversion_is_regular_not_atomic() {
        let mut h: History<RegOp, RegResp> = History::new();
        h.invoke(Pid(0), RegOp::Write(1)); // writing 1 over initial 0
        h.invoke(Pid(1), RegOp::Read);
        h.respond(Pid(1), RegResp::Read(1)).unwrap(); // sees new
        h.invoke(Pid(1), RegOp::Read);
        h.respond(Pid(1), RegResp::Read(0)).unwrap(); // then sees old!
        h.respond(Pid(0), RegResp::Written).unwrap();
        assert!(is_regular(&h, 0));
        assert!(is_safe(&h, 0, 2));
        assert!(!is_atomic(&h, 0));
    }

    /// A read entirely after a completed write must see it even under
    /// safe semantics.
    #[test]
    fn stale_non_overlapping_read_fails_even_safe() {
        let mut h: History<RegOp, RegResp> = History::new();
        h.invoke(Pid(0), RegOp::Write(1));
        h.respond(Pid(0), RegResp::Written).unwrap();
        h.invoke(Pid(1), RegOp::Read);
        h.respond(Pid(1), RegResp::Read(0)).unwrap();
        assert!(!is_safe(&h, 0, 2));
        assert!(!is_regular(&h, 0));
    }

    /// Out-of-domain garbage is rejected even for overlapping safe reads.
    #[test]
    fn safe_requires_domain_membership() {
        let mut h: History<RegOp, RegResp> = History::new();
        h.invoke(Pid(0), RegOp::Write(1));
        h.invoke(Pid(1), RegOp::Read);
        h.respond(Pid(1), RegResp::Read(7)).unwrap(); // domain is {0,1}
        h.respond(Pid(0), RegResp::Written).unwrap();
        assert!(!is_safe(&h, 0, 2));
    }

    /// The hierarchy is ordered: atomic ⇒ regular ⇒ safe on overlapping
    /// histories.
    #[test]
    fn hierarchy_inclusions_hold_on_samples() {
        // A linearizable overlapping history: read during write sees old.
        let mut h: History<RegOp, RegResp> = History::new();
        h.invoke(Pid(0), RegOp::Write(1));
        h.invoke(Pid(1), RegOp::Read);
        h.respond(Pid(1), RegResp::Read(0)).unwrap();
        h.respond(Pid(0), RegResp::Written).unwrap();
        assert!(is_atomic(&h, 0));
        assert!(is_regular(&h, 0));
        assert!(is_safe(&h, 0, 2));
    }
}
