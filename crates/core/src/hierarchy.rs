//! Figure 1-1 — the impossibility and universality hierarchy — as data,
//! with machinery to re-validate every row mechanically.
//!
//! | consensus number | objects |
//! |-----------------:|---------|
//! | 1 | read/write registers |
//! | 2 | test-and-set, swap, fetch-and-add, queue, stack |
//! | 2n-2 | n-register assignment |
//! | ∞ | memory-to-memory move and swap, augmented queue, compare-and-swap, fetch-and-cons |
//!
//! Each [`HierarchyRow`] carries a `solves` hook that runs the paper's
//! protocol for that object at a given process count under the exhaustive
//! checker — the *positive* half of the row. The *negative* half (the
//! object cannot solve consensus one level higher) is certified by the
//! valency and bounded-synthesis experiments in `waitfree-bench`, indexed
//! by the row's `impossibility` note.

use waitfree_explorer::check::{check_consensus, CheckReport, CheckSettings};
use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
use waitfree_objects::register::{RegOp, RegResp, RwRegister};

use crate::protocols::assignment::{AssignConsensus, WideAssignConsensus};
use crate::protocols::augmented_queue::AugQueueConsensus;
use crate::protocols::broadcast::BroadcastConsensus;
use crate::protocols::cas::CasConsensus;
use crate::protocols::fetch_cons::FetchConsConsensus;
use crate::protocols::mem_move::MoveConsensusN;
use crate::protocols::mem_swap::SwapConsensusN;
use crate::protocols::queue::{QueueConsensus, StackConsensus};
use crate::protocols::rmw::RmwConsensus;
use waitfree_objects::rmw::RmwFn;

/// An object's place in the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Solves consensus for exactly this many processes.
    Exact(usize),
    /// The m-register-assignment family: width m solves exactly 2m-2
    /// (Theorems 20 and 22).
    AssignmentFamily,
    /// Solves consensus for arbitrarily many processes (universal).
    Infinite,
}

impl Level {
    /// The consensus number, or `None` for ∞ / the parametric family.
    #[must_use]
    pub fn consensus_number(self) -> Option<usize> {
        match self {
            Level::Exact(n) => Some(n),
            _ => None,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Level::Exact(n) => write!(f, "{n}"),
            Level::AssignmentFamily => write!(f, "2m-2"),
            Level::Infinite => write!(f, "unbounded"),
        }
    }
}

/// One row of Figure 1-1.
pub struct HierarchyRow {
    /// Object name as in the paper.
    pub object: &'static str,
    /// Claimed consensus number.
    pub level: Level,
    /// Run the paper's consensus protocol for this object at `n`
    /// processes under the exhaustive checker. `None` when `n` exceeds the
    /// object's consensus number (no protocol exists to run — that is the
    /// point of the hierarchy).
    pub solves: fn(usize) -> Option<CheckReport>,
    /// Where the matching impossibility certificate lives.
    pub impossibility: &'static str,
}

impl std::fmt::Debug for HierarchyRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HierarchyRow")
            .field("object", &self.object)
            .field("level", &self.level)
            .finish_non_exhaustive()
    }
}

/// The trivial one-process "protocol": read once, decide yourself. Every
/// object solves 1-process consensus; this is what "level 1" means for
/// read/write registers.
struct SoloRegister;

#[derive(Clone, Debug, PartialEq, Eq, Hash)]
enum SoloState {
    Start,
    Done(Val),
}

impl ProcessAutomaton for SoloRegister {
    type Op = RegOp;
    type Resp = RegResp;
    type State = SoloState;

    fn start(&self, _pid: Pid) -> SoloState {
        SoloState::Start
    }

    fn action(&self, _pid: Pid, state: &SoloState) -> Action<RegOp> {
        match state {
            SoloState::Start => Action::Invoke(RegOp::Read),
            SoloState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, pid: Pid, _state: &SoloState, _resp: &RegResp) -> SoloState {
        SoloState::Done(pid.as_val())
    }
}

fn settings() -> CheckSettings {
    CheckSettings::default()
}

fn solves_register(n: usize) -> Option<CheckReport> {
    (n == 1).then(|| check_consensus(&SoloRegister, &RwRegister::new(0), 1, &settings()))
}

fn solves_tas(n: usize) -> Option<CheckReport> {
    (1..=2).contains(&n).then(|| {
        let (p, o) = RmwConsensus::test_and_set();
        check_consensus(&p, &o, n, &settings())
    })
}

fn solves_swap(n: usize) -> Option<CheckReport> {
    (1..=2).contains(&n).then(|| {
        let (p, o) = RmwConsensus::swap();
        check_consensus(&p, &o, n, &settings())
    })
}

fn solves_faa(n: usize) -> Option<CheckReport> {
    (1..=2).contains(&n).then(|| {
        let (p, o) = RmwConsensus::setup(RmwFn::FetchAndAdd(1));
        check_consensus(&p, &o, n, &settings())
    })
}

fn solves_queue(n: usize) -> Option<CheckReport> {
    (1..=2).contains(&n).then(|| {
        let (p, o) = QueueConsensus::setup();
        check_consensus(&p, &o, n, &settings())
    })
}

fn solves_stack(n: usize) -> Option<CheckReport> {
    (1..=2).contains(&n).then(|| {
        let (p, o) = StackConsensus::setup();
        check_consensus(&p, &o, n, &settings())
    })
}

fn solves_assignment(n: usize) -> Option<CheckReport> {
    // Width n solves n directly (Theorem 19); the 2m-2 bound means the
    // narrowest adequate width for n processes is m = (n+2)/2 via
    // Theorem 20. We run Theorem 19 for small n and Theorem 20 where
    // n = 2m-2 is even.
    if n <= 3 {
        let (p, o) = AssignConsensus::setup(n.max(1));
        Some(check_consensus(&p, &o, n, &settings()))
    } else if n.is_multiple_of(2) {
        let m = (n + 2) / 2;
        let (p, o) = WideAssignConsensus::setup(m);
        // Exhaustive beyond n=4 is expensive; cap the budget and accept
        // budget-capped outcomes in validation.
        Some(check_consensus(&p, &o, n, &settings()))
    } else {
        None
    }
}

fn solves_cas(n: usize) -> Option<CheckReport> {
    let (p, o) = CasConsensus::setup();
    Some(check_consensus(&p, &o, n, &settings()))
}

fn solves_augmented_queue(n: usize) -> Option<CheckReport> {
    let (p, o) = AugQueueConsensus::setup();
    Some(check_consensus(&p, &o, n, &settings()))
}

fn solves_move(n: usize) -> Option<CheckReport> {
    let (p, o) = MoveConsensusN::setup(n);
    Some(check_consensus(&p, &o, n, &settings()))
}

fn solves_mem_swap(n: usize) -> Option<CheckReport> {
    let (p, o) = SwapConsensusN::setup(n);
    Some(check_consensus(&p, &o, n, &settings()))
}

fn solves_fetch_cons(n: usize) -> Option<CheckReport> {
    let (p, o) = FetchConsConsensus::setup();
    Some(check_consensus(&p, &o, n, &settings()))
}

fn solves_broadcast(n: usize) -> Option<CheckReport> {
    let (p, o) = BroadcastConsensus::setup(n);
    Some(check_consensus(&p, &o, n, &settings()))
}

/// Figure 1-1 as a table of validated rows.
#[must_use]
pub fn table() -> Vec<HierarchyRow> {
    vec![
        HierarchyRow {
            object: "read/write registers",
            level: Level::Exact(1),
            solves: solves_register,
            impossibility: "Theorem 2: thm_02_registers (valency + bounded synthesis)",
        },
        HierarchyRow {
            object: "test-and-set",
            level: Level::Exact(2),
            solves: solves_tas,
            impossibility: "Theorem 6: thm_06_interfering (interference analysis + synthesis)",
        },
        HierarchyRow {
            object: "swap",
            level: Level::Exact(2),
            solves: solves_swap,
            impossibility: "Theorem 6: thm_06_interfering",
        },
        HierarchyRow {
            object: "fetch-and-add",
            level: Level::Exact(2),
            solves: solves_faa,
            impossibility: "Theorem 6: thm_06_interfering",
        },
        HierarchyRow {
            object: "FIFO queue",
            level: Level::Exact(2),
            solves: solves_queue,
            impossibility: "Theorem 11: thm_11_queue_three (bounded synthesis at n=3)",
        },
        HierarchyRow {
            object: "stack",
            level: Level::Exact(2),
            solves: solves_stack,
            impossibility: "Theorem 11 (variant): thm_11_queue_three",
        },
        HierarchyRow {
            object: "m-register assignment",
            level: Level::AssignmentFamily,
            solves: solves_assignment,
            impossibility: "Theorem 22: thm_22_assignment_impossible",
        },
        HierarchyRow {
            object: "memory-to-memory move",
            level: Level::Infinite,
            solves: solves_move,
            impossibility: "universal (none)",
        },
        HierarchyRow {
            object: "memory-to-memory swap",
            level: Level::Infinite,
            solves: solves_mem_swap,
            impossibility: "universal (none)",
        },
        HierarchyRow {
            object: "augmented queue (peek)",
            level: Level::Infinite,
            solves: solves_augmented_queue,
            impossibility: "universal (none)",
        },
        HierarchyRow {
            object: "compare-and-swap",
            level: Level::Infinite,
            solves: solves_cas,
            impossibility: "universal (none)",
        },
        HierarchyRow {
            object: "fetch-and-cons",
            level: Level::Infinite,
            solves: solves_fetch_cons,
            impossibility: "universal (none)",
        },
        HierarchyRow {
            object: "ordered broadcast",
            level: Level::Infinite,
            solves: solves_broadcast,
            impossibility: "universal (none)",
        },
    ]
}

/// Validate one row at process count `n`: run its protocol (if the row
/// claims to solve `n`) and return whether the exhaustive check passed.
/// `None` means the row makes no claim at `n`.
#[must_use]
pub fn validate_row(row: &HierarchyRow, n: usize) -> Option<bool> {
    (row.solves)(n).map(|r| r.is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_figure_1_1_shape() {
        let t = table();
        assert_eq!(t.len(), 13);
        assert_eq!(
            t.iter().filter(|r| r.level == Level::Exact(1)).count(),
            1,
            "registers alone at level 1"
        );
        assert_eq!(t.iter().filter(|r| r.level == Level::Exact(2)).count(), 5);
        assert_eq!(t.iter().filter(|r| r.level == Level::Infinite).count(), 6);
    }

    #[test]
    fn level_two_rows_validate_at_two() {
        for row in table() {
            if row.level == Level::Exact(2) {
                assert_eq!(validate_row(&row, 2), Some(true), "{}", row.object);
            }
        }
    }

    #[test]
    fn level_one_row_validates_at_one_only() {
        let t = table();
        let reg = &t[0];
        assert_eq!(validate_row(reg, 1), Some(true));
        assert_eq!(validate_row(reg, 2), None, "no claim at n=2");
    }

    #[test]
    fn infinite_rows_validate_at_three() {
        for row in table() {
            if row.level == Level::Infinite {
                assert_eq!(validate_row(&row, 3), Some(true), "{}", row.object);
            }
        }
    }

    #[test]
    fn level_display() {
        assert_eq!(Level::Exact(2).to_string(), "2");
        assert_eq!(Level::AssignmentFamily.to_string(), "2m-2");
        assert_eq!(Level::Infinite.to_string(), "unbounded");
        assert_eq!(Level::Exact(2).consensus_number(), Some(2));
        assert_eq!(Level::Infinite.consensus_number(), None);
    }
}
