//! Figures 4-3 / 4-4 — a constant-time fetch-and-cons from
//! memory-to-memory swap.
//!
//! > *One way to show that an object is universal is to give a direct
//! > implementation of fetch-and-cons. For example, Figures 4-3 and 4-4
//! > show a constant-time implementation of fetch-and-cons by
//! > memory-to-memory swap.*
//!
//! The trick: a process prepares a fresh cons cell holding its item, with
//! the cell's `next` field pointing *at the cell itself*; a single
//! memory-to-memory swap of `Anchor` with the cell's `next` field then
//! atomically (1) makes the anchor point at the new cell and (2) makes the
//! new cell's `next` point at the old list — the entire thread-on step is
//! one atomic operation. Reading back the suffix is a plain pointer walk
//! over immutable cells.

use waitfree_model::{ImplAction, ImplAutomaton, Pid, Val};
use waitfree_objects::memory::{MemOp, MemoryBank, MemResp};

/// Null pointer inside the arena.
pub const NIL: Val = -1;

/// The swap-based fetch-and-cons front-end over a [`MemoryBank`] arena.
///
/// Cell 0 is the anchor. Each process owns a preallocated region of
/// `max_ops` two-cell nodes (`item`, `next`); operation `s` of process `p`
/// uses the node at `1 + 2(p · max_ops + s)`.
#[derive(Clone, Debug)]
pub struct SwapFetchAndCons {
    /// Number of processes.
    pub n: usize,
    /// Per-process operation budget (arena sizing).
    pub max_ops: usize,
}

/// Front-end state of [`SwapFetchAndCons`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SwapFacState {
    /// Between operations; `usize` counts completed operations.
    Idle(usize),
    /// Writing the item into the fresh node.
    WriteItem {
        /// Operation index (node selector).
        seq: usize,
        /// The item.
        x: Val,
    },
    /// Initializing the node's `next` to point at the node itself.
    WriteNext {
        /// Operation index.
        seq: usize,
    },
    /// The atomic thread-on: swap anchor with the node's `next`.
    DoSwap {
        /// Operation index.
        seq: usize,
    },
    /// Reading back the node's `next` (now the old list head).
    ReadHead {
        /// Operation index.
        seq: usize,
    },
    /// Walking the suffix: about to read the item at `ptr`.
    WalkItem {
        /// Operation index.
        seq: usize,
        /// Node base cell being visited.
        ptr: Val,
        /// Items collected so far (newest first).
        acc: Vec<Val>,
    },
    /// Walking the suffix: about to read the `next` at `ptr`.
    WalkNext {
        /// Operation index.
        seq: usize,
        /// Node base cell being visited.
        ptr: Val,
        /// Items collected so far.
        acc: Vec<Val>,
    },
    /// About to return the suffix.
    Respond {
        /// Operation index.
        seq: usize,
        /// The collected suffix.
        acc: Vec<Val>,
    },
}

impl SwapFetchAndCons {
    /// Front-end for `n` processes, each performing at most `max_ops`
    /// operations, plus the arena: anchor `NIL`, all nodes zeroed.
    #[must_use]
    pub fn setup(n: usize, max_ops: usize) -> (Self, MemoryBank) {
        let mut cells = vec![0; 1 + 2 * n * max_ops];
        cells[0] = NIL;
        (SwapFetchAndCons { n, max_ops }, MemoryBank::from_values(cells))
    }

    fn node_base(&self, pid: usize, seq: usize) -> usize {
        assert!(
            seq < self.max_ops,
            "process P{pid} exceeded its arena budget of {} operations",
            self.max_ops
        );
        1 + 2 * (pid * self.max_ops + seq)
    }
}

impl ImplAutomaton for SwapFetchAndCons {
    type HiOp = Val;
    type HiResp = Vec<Val>;
    type LoOp = MemOp;
    type LoResp = MemResp;
    type State = SwapFacState;

    fn idle(&self, _pid: Pid) -> SwapFacState {
        SwapFacState::Idle(0)
    }

    fn begin(&self, _pid: Pid, state: &SwapFacState, x: &Val) -> SwapFacState {
        let SwapFacState::Idle(seq) = state else {
            unreachable!("begin on a busy front-end")
        };
        SwapFacState::WriteItem { seq: *seq, x: *x }
    }

    fn action(&self, pid: Pid, state: &SwapFacState) -> ImplAction<MemOp, Vec<Val>> {
        match state {
            SwapFacState::Idle(_) => unreachable!("idle front-end has no action"),
            SwapFacState::WriteItem { seq, x } => {
                ImplAction::Invoke(MemOp::Write(self.node_base(pid.0, *seq), *x))
            }
            SwapFacState::WriteNext { seq } => {
                let base = self.node_base(pid.0, *seq);
                // The self-pointer: next := &node.
                ImplAction::Invoke(MemOp::Write(base + 1, base as Val))
            }
            SwapFacState::DoSwap { seq } => {
                let base = self.node_base(pid.0, *seq);
                ImplAction::Invoke(MemOp::Swap { a: 0, b: base + 1 })
            }
            SwapFacState::ReadHead { seq } => {
                let base = self.node_base(pid.0, *seq);
                ImplAction::Invoke(MemOp::Read(base + 1))
            }
            SwapFacState::WalkItem { ptr, .. } => {
                ImplAction::Invoke(MemOp::Read(*ptr as usize))
            }
            SwapFacState::WalkNext { ptr, .. } => {
                ImplAction::Invoke(MemOp::Read(*ptr as usize + 1))
            }
            SwapFacState::Respond { acc, .. } => ImplAction::Return(acc.clone()),
        }
    }

    fn observe(&self, _pid: Pid, state: &SwapFacState, resp: &MemResp) -> SwapFacState {
        match (state.clone(), resp) {
            (SwapFacState::WriteItem { seq, .. }, MemResp::Ack) => {
                SwapFacState::WriteNext { seq }
            }
            (SwapFacState::WriteNext { seq }, MemResp::Ack) => SwapFacState::DoSwap { seq },
            (SwapFacState::DoSwap { seq }, MemResp::Ack) => SwapFacState::ReadHead { seq },
            (SwapFacState::ReadHead { seq }, MemResp::Value(head)) => {
                if *head == NIL {
                    SwapFacState::Respond { seq, acc: Vec::new() }
                } else {
                    SwapFacState::WalkItem { seq, ptr: *head, acc: Vec::new() }
                }
            }
            (SwapFacState::WalkItem { seq, ptr, mut acc }, MemResp::Value(item)) => {
                acc.push(*item);
                SwapFacState::WalkNext { seq, ptr, acc }
            }
            (SwapFacState::WalkNext { seq, acc, .. }, MemResp::Value(next)) => {
                if *next == NIL {
                    SwapFacState::Respond { seq, acc }
                } else {
                    SwapFacState::WalkItem { seq, ptr: *next, acc }
                }
            }
            (s, r) => unreachable!("unexpected response {r:?} in state {s:?}"),
        }
    }

    fn finish(&self, _pid: Pid, state: &SwapFacState) -> SwapFacState {
        let SwapFacState::Respond { seq, .. } = state else {
            unreachable!("finish outside Respond")
        };
        SwapFacState::Idle(seq + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::impl_sim::{all_histories, run_random, run_schedule};
    use waitfree_model::{linearize, ObjectSpec, PendingPolicy};

    /// The high-level sequential specification: fetch-and-cons over plain
    /// values, for the linearizability checker.
    #[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
    struct FacSpec(Vec<Val>);

    impl ObjectSpec for FacSpec {
        type Op = Val;
        type Resp = Vec<Val>;
        fn apply(&mut self, _pid: Pid, x: &Val) -> Vec<Val> {
            let old = self.0.clone();
            self.0.insert(0, *x);
            old
        }
    }

    #[test]
    fn sequential_chain() {
        let (fe, arena) = SwapFetchAndCons::setup(1, 3);
        let run = run_schedule(&fe, arena, &[vec![10, 20, 30]], &vec![0; 100]);
        assert!(run.complete);
        let ops = run.history.ops();
        assert_eq!(ops[0].resp, Some(vec![]));
        assert_eq!(ops[1].resp, Some(vec![10]));
        assert_eq!(ops[2].resp, Some(vec![20, 10]));
    }

    #[test]
    fn exhaustive_two_processes_linearizable() {
        let (fe, arena) = SwapFetchAndCons::setup(2, 1);
        let histories = all_histories(&fe, &arena, &[vec![10], vec![20]], 500_000);
        assert!(histories.len() > 1);
        for h in &histories {
            let report = linearize(h, &FacSpec::default(), PendingPolicy::MayTakeEffect);
            assert!(report.outcome.is_ok(), "{h:?}");
        }
    }

    #[test]
    fn random_three_processes_linearizable() {
        let (fe, arena) = SwapFetchAndCons::setup(3, 2);
        let workloads = vec![vec![10, 11], vec![20, 21], vec![30, 31]];
        for seed in 0..150 {
            let run = run_random(&fe, arena.clone(), &workloads, seed, 300);
            assert!(run.complete, "seed {seed}");
            let report = linearize(&run.history, &FacSpec::default(), PendingPolicy::MayTakeEffect);
            assert!(report.outcome.is_ok(), "seed {seed}: {:?}", run.history);
        }
    }

    #[test]
    fn threading_is_constant_time() {
        // The thread-on (write, write, swap) is 3 low-level steps; only the
        // read-back walk depends on history length. With k prior items an
        // operation costs 3 + 1 + 2k steps.
        let (fe, arena) = SwapFetchAndCons::setup(1, 5);
        let run = run_schedule(&fe, arena, &[vec![1, 2, 3, 4, 5]], &vec![0; 200]);
        assert!(run.complete);
        // Total: sum over k=0..4 of (4 + 2k) = 20 + 20 = 40.
        assert_eq!(run.lo_steps[0], 40);
    }

    #[test]
    #[should_panic(expected = "arena budget")]
    fn arena_budget_is_enforced() {
        let (fe, arena) = SwapFetchAndCons::setup(1, 1);
        let _ = run_schedule(&fe, arena, &[vec![1, 2]], &vec![0; 100]);
    }
}
