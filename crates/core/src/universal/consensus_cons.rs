//! Figure 4-5 — a wait-free fetch-and-cons from *any* consensus object.
//!
//! This is the construction behind Theorem 26 ("an object X is universal
//! if (and only if) it solves n-process consensus"): combined with §4.1
//! (any sequential object from fetch-and-cons, [`crate::universal::log`]),
//! it turns a consensus protocol into a universal object.
//!
//! Faithful to the paper's pseudocode: each process keeps shared registers
//! `announce[i]` (its latest operation), `round[i]` (its latest consensus
//! round) and `prefer[i]` (its latest preference list), a *persistent*
//! local variable `winner`, and an unbounded array of consensus objects.
//! A fetch-and-cons announces its item, builds a goal from everyone's
//! announcements, catches up with the highest observed round, then runs at
//! most n rounds of consensus, merging its goal into the winning
//! preference each time. "Our fetch-and-cons implementation requires at
//! most n rounds of consensus, implying that any consensus protocol that
//! is polynomial in n can be systematically transformed into a wait-free
//! fetch-and-cons polynomial in n."
//!
//! Correctness of generated histories is checked with the paper's own
//! §4.2 criterion ([`verify_history`]): all views coherent, and real-time
//! precedence implies the suffix relation (Lemmas 24 and 25).

use std::collections::BTreeMap;

use waitfree_model::{History, ImplAction, ImplAutomaton, ObjectSpec, Pid, Val};

use super::merge::{is_suffix, merge, trim_after, view};

/// A logged item: who consed it, their per-process sequence number, and
/// the payload. The sequence number keeps repeated payloads by the same
/// process distinguishable, which `trim` ("the suffix following its own
/// most recent operation") requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Item {
    /// The consing process.
    pub owner: usize,
    /// The owner's operation counter at cons time.
    pub seq: usize,
    /// The consed value.
    pub payload: Val,
}

/// The representation object: announce/round/prefer register arrays plus
/// the unbounded consensus array. Every operation touches exactly one
/// register or one consensus object, so this object grants no power
/// beyond "registers + consensus" — which is the point.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct F45Rep {
    announce: Vec<Option<Item>>,
    round: Vec<usize>,
    prefer: Vec<Vec<Item>>,
    winners: BTreeMap<usize, usize>,
}

impl F45Rep {
    /// Fresh representation for `n` processes: all announces `⊥`, all
    /// rounds 0, all preferences `Λ`, no round decided.
    #[must_use]
    pub fn new(n: usize) -> Self {
        F45Rep {
            announce: vec![None; n],
            round: vec![0; n],
            prefer: vec![Vec::new(); n],
            winners: BTreeMap::new(),
        }
    }
}

/// Operations on [`F45Rep`] — each touches one register or one consensus
/// object.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum F45Op {
    /// `announce[caller] := item`.
    WriteAnnounce(Item),
    /// Read `announce[p]`.
    ReadAnnounce(usize),
    /// Read `round[p]`.
    ReadRound(usize),
    /// `round[caller] := r`.
    WriteRound(usize),
    /// Read `prefer[p]`.
    ReadPrefer(usize),
    /// `prefer[caller] := list`.
    WritePrefer(Vec<Item>),
    /// `consensus[round].decide(caller)`.
    Decide {
        /// The consensus round to join.
        round: usize,
    },
}

/// Responses from [`F45Rep`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum F45Resp {
    /// A write completed.
    Ack,
    /// Contents of an announce register.
    Announce(Option<Item>),
    /// Contents of a round register.
    Round(usize),
    /// Contents of a prefer register.
    Prefer(Vec<Item>),
    /// The winning process of a consensus round.
    Winner(usize),
}

impl ObjectSpec for F45Rep {
    type Op = F45Op;
    type Resp = F45Resp;

    fn apply(&mut self, pid: Pid, op: &F45Op) -> F45Resp {
        match op {
            F45Op::WriteAnnounce(item) => {
                self.announce[pid.0] = Some(*item);
                F45Resp::Ack
            }
            F45Op::ReadAnnounce(p) => F45Resp::Announce(self.announce[*p]),
            F45Op::ReadRound(p) => F45Resp::Round(self.round[*p]),
            F45Op::WriteRound(r) => {
                self.round[pid.0] = *r;
                F45Resp::Ack
            }
            F45Op::ReadPrefer(p) => F45Resp::Prefer(self.prefer[*p].clone()),
            F45Op::WritePrefer(list) => {
                self.prefer[pid.0] = list.clone();
                F45Resp::Ack
            }
            F45Op::Decide { round } => {
                let w = *self.winners.entry(*round).or_insert(pid.0);
                F45Resp::Winner(w)
            }
        }
    }
}

/// Front-end state of [`ConsensusFetchAndCons`]. The `Idle` variant is the
/// persistent between-operations state (the paper's local `winner`
/// variable and the operation counter).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum F45State {
    /// Between operations.
    Idle {
        /// Winner of the last consensus round this process joined.
        winner: Option<usize>,
        /// Number of operations completed (sequence numbers).
        seq: usize,
    },
    /// About to write `announce[i]`.
    Announce {
        /// Persisted winner coming into this operation.
        winner0: Option<usize>,
        /// This operation's item.
        item: Item,
    },
    /// Scanning `announce[p]`.
    ScanAnnounce {
        /// Persisted winner.
        winner0: Option<usize>,
        /// This operation's item.
        item: Item,
        /// Process being scanned.
        p: usize,
        /// Goal list so far (newest first).
        goal: Vec<Item>,
        /// Maximum round seen so far.
        last_round: usize,
        /// Own round register's value.
        my_round: usize,
    },
    /// Scanning `round[p]`.
    ScanRound {
        /// Persisted winner.
        winner0: Option<usize>,
        /// This operation's item.
        item: Item,
        /// Process being scanned.
        p: usize,
        /// Goal list so far.
        goal: Vec<Item>,
        /// Maximum round seen so far.
        last_round: usize,
        /// Own round register's value.
        my_round: usize,
    },
    /// Joining the highest observed round to learn its winner.
    CatchUp {
        /// This operation's item.
        item: Item,
        /// Goal list.
        goal: Vec<Item>,
        /// The highest observed round.
        last_round: usize,
    },
    /// Loop step (a): reading `prefer[winner]`.
    ReadWinnerPref {
        /// This operation's item.
        item: Item,
        /// Goal list.
        goal: Vec<Item>,
        /// Current round.
        r: usize,
        /// Final round of this operation's window.
        end: usize,
        /// Winner whose preference is read.
        winner: usize,
    },
    /// Loop step (b): writing the merged preference.
    WriteMerged {
        /// This operation's item.
        item: Item,
        /// Goal list.
        goal: Vec<Item>,
        /// Current round.
        r: usize,
        /// Final round.
        end: usize,
        /// `goal \ prefer[winner]`.
        merged: Vec<Item>,
    },
    /// Loop step (c): joining round `r`.
    RoundDecide {
        /// This operation's item.
        item: Item,
        /// Goal list.
        goal: Vec<Item>,
        /// Current round.
        r: usize,
        /// Final round.
        end: usize,
    },
    /// Loop step (d): reading the new winner's preference.
    ReadNewWinnerPref {
        /// This operation's item.
        item: Item,
        /// Goal list.
        goal: Vec<Item>,
        /// Current round.
        r: usize,
        /// Final round.
        end: usize,
        /// Winner of round `r`.
        new_winner: usize,
    },
    /// Loop step (e): adopting the winner's preference.
    AdoptPref {
        /// This operation's item.
        item: Item,
        /// Goal list.
        goal: Vec<Item>,
        /// Current round.
        r: usize,
        /// Final round.
        end: usize,
        /// Winner of round `r`.
        new_winner: usize,
        /// The adopted preference.
        adopted: Vec<Item>,
    },
    /// Loop step (f): writing `round[i] := r`.
    WriteMyRound {
        /// This operation's item.
        item: Item,
        /// Goal list.
        goal: Vec<Item>,
        /// Current round.
        r: usize,
        /// Final round.
        end: usize,
        /// Winner of round `r`.
        new_winner: usize,
        /// The adopted preference.
        adopted: Vec<Item>,
    },
    /// About to return the trimmed suffix.
    Respond {
        /// Winner to persist.
        winner: usize,
        /// This operation's sequence number (to persist `seq + 1`).
        seq: usize,
        /// The operation's result.
        result: Vec<Item>,
    },
}

/// The Figure 4-5 front-end: implements fetch-and-cons over [`F45Rep`].
#[derive(Clone, Debug)]
pub struct ConsensusFetchAndCons {
    /// Number of processes.
    pub n: usize,
}

impl ConsensusFetchAndCons {
    /// Front-end for `n` processes plus its fresh representation.
    #[must_use]
    pub fn setup(n: usize) -> (Self, F45Rep) {
        (ConsensusFetchAndCons { n }, F45Rep::new(n))
    }

    /// Enter the round loop: with a known previous winner we first read
    /// that winner's preference; with none (no round ever ran) the
    /// previous preference is `Λ`, so the merge is just the goal.
    fn enter_loop(
        item: Item,
        goal: Vec<Item>,
        r: usize,
        end: usize,
        winner: Option<usize>,
    ) -> F45State {
        match winner {
            Some(w) => F45State::ReadWinnerPref { item, goal, r, end, winner: w },
            None => {
                let merged = merge(&goal, &[]);
                F45State::WriteMerged { item, goal, r, end, merged }
            }
        }
    }
}

impl ImplAutomaton for ConsensusFetchAndCons {
    type HiOp = Val;
    type HiResp = Vec<Item>;
    type LoOp = F45Op;
    type LoResp = F45Resp;
    type State = F45State;

    fn idle(&self, _pid: Pid) -> F45State {
        F45State::Idle { winner: None, seq: 0 }
    }

    fn begin(&self, pid: Pid, state: &F45State, payload: &Val) -> F45State {
        let F45State::Idle { winner, seq } = state else {
            unreachable!("begin on a busy front-end")
        };
        F45State::Announce {
            winner0: *winner,
            item: Item { owner: pid.0, seq: *seq, payload: *payload },
        }
    }

    fn action(&self, _pid: Pid, state: &F45State) -> ImplAction<F45Op, Vec<Item>> {
        match state {
            F45State::Idle { .. } => unreachable!("idle front-end has no action"),
            F45State::Announce { item, .. } => ImplAction::Invoke(F45Op::WriteAnnounce(*item)),
            F45State::ScanAnnounce { p, .. } => ImplAction::Invoke(F45Op::ReadAnnounce(*p)),
            F45State::ScanRound { p, .. } => ImplAction::Invoke(F45Op::ReadRound(*p)),
            F45State::CatchUp { last_round, .. } => {
                ImplAction::Invoke(F45Op::Decide { round: *last_round })
            }
            F45State::ReadWinnerPref { winner, .. } => {
                ImplAction::Invoke(F45Op::ReadPrefer(*winner))
            }
            F45State::WriteMerged { merged, .. } => {
                ImplAction::Invoke(F45Op::WritePrefer(merged.clone()))
            }
            F45State::RoundDecide { r, .. } => ImplAction::Invoke(F45Op::Decide { round: *r }),
            F45State::ReadNewWinnerPref { new_winner, .. } => {
                ImplAction::Invoke(F45Op::ReadPrefer(*new_winner))
            }
            F45State::AdoptPref { adopted, .. } => {
                ImplAction::Invoke(F45Op::WritePrefer(adopted.clone()))
            }
            F45State::WriteMyRound { r, .. } => ImplAction::Invoke(F45Op::WriteRound(*r)),
            F45State::Respond { result, .. } => ImplAction::Return(result.clone()),
        }
    }

    fn observe(&self, pid: Pid, state: &F45State, resp: &F45Resp) -> F45State {
        let me = pid.0;
        match (state.clone(), resp) {
            (F45State::Announce { winner0, item }, F45Resp::Ack) => F45State::ScanAnnounce {
                winner0,
                item,
                p: 0,
                goal: Vec::new(),
                last_round: 0,
                my_round: 0,
            },
            (
                F45State::ScanAnnounce { winner0, item, p, mut goal, last_round, my_round },
                F45Resp::Announce(a),
            ) => {
                if let Some(it) = a {
                    goal.insert(0, *it); // goal := announce[P] · goal
                }
                F45State::ScanRound { winner0, item, p, goal, last_round, my_round }
            }
            (
                F45State::ScanRound { winner0, item, p, goal, last_round, my_round },
                F45Resp::Round(k),
            ) => {
                let last_round = last_round.max(*k);
                let my_round = if p == me { *k } else { my_round };
                if p + 1 < self.n {
                    F45State::ScanAnnounce {
                        winner0,
                        item,
                        p: p + 1,
                        goal,
                        last_round,
                        my_round,
                    }
                } else if last_round > my_round {
                    F45State::CatchUp { item, goal, last_round }
                } else {
                    Self::enter_loop(item, goal, last_round + 1, last_round + self.n, winner0)
                }
            }
            (F45State::CatchUp { item, goal, last_round }, F45Resp::Winner(w)) => {
                Self::enter_loop(item, goal, last_round + 1, last_round + self.n, Some(*w))
            }
            (F45State::ReadWinnerPref { item, goal, r, end, .. }, F45Resp::Prefer(list)) => {
                let merged = merge(&goal, list);
                F45State::WriteMerged { item, goal, r, end, merged }
            }
            (F45State::WriteMerged { item, goal, r, end, .. }, F45Resp::Ack) => {
                F45State::RoundDecide { item, goal, r, end }
            }
            (F45State::RoundDecide { item, goal, r, end }, F45Resp::Winner(w)) => {
                F45State::ReadNewWinnerPref { item, goal, r, end, new_winner: *w }
            }
            (
                F45State::ReadNewWinnerPref { item, goal, r, end, new_winner },
                F45Resp::Prefer(list),
            ) => F45State::AdoptPref { item, goal, r, end, new_winner, adopted: list.clone() },
            (F45State::AdoptPref { item, goal, r, end, new_winner, adopted }, F45Resp::Ack) => {
                F45State::WriteMyRound { item, goal, r, end, new_winner, adopted }
            }
            (
                F45State::WriteMyRound { item, goal, r, end, new_winner, adopted },
                F45Resp::Ack,
            ) => {
                if new_winner == me || r == end {
                    let result = trim_after(&adopted, |it: &Item| it.owner == me && it.seq == item.seq)
                        .unwrap_or_else(|| {
                            unreachable!(
                                "Lemma 24: after winning or n rounds, the item is preferred"
                            )
                        })
                        .to_vec();
                    F45State::Respond { winner: new_winner, seq: item.seq, result }
                } else {
                    Self::enter_loop(item, goal, r + 1, end, Some(new_winner))
                }
            }
            (s, r) => unreachable!("unexpected response {r:?} in state {s:?}"),
        }
    }

    fn finish(&self, _pid: Pid, state: &F45State) -> F45State {
        let F45State::Respond { winner, seq, .. } = state else {
            unreachable!("finish outside Respond")
        };
        F45State::Idle { winner: Some(*winner), seq: seq + 1 }
    }
}

/// Verify a fetch-and-cons history against the paper's §4.2
/// linearizability criterion:
///
/// 1. every two views are coherent (one is a suffix of the other), and
/// 2. if operation `p` completes before `q` starts, `p`'s view is a
///    suffix of `q`'s view.
///
/// Views are reconstructed from the history: the view of an operation is
/// its item prepended to its result (pending operations are skipped).
#[must_use]
pub fn verify_history(history: &History<Val, Vec<Item>>) -> bool {
    let ops = history.ops();
    // Reconstruct items: the k-th completed-or-pending op by process P has
    // seq k in invocation order.
    let mut seqs: BTreeMap<usize, usize> = BTreeMap::new();
    let mut views: Vec<Option<Vec<Item>>> = Vec::new();
    for op in &ops {
        let seq = seqs.entry(op.pid.0).or_insert(0);
        let item = Item { owner: op.pid.0, seq: *seq, payload: op.op };
        *seq += 1;
        views.push(op.resp.as_ref().map(|r| view(item, r)));
    }
    let complete: Vec<Vec<Item>> = views.iter().flatten().cloned().collect();
    if !super::merge::coherent(&complete) {
        return false;
    }
    for i in 0..ops.len() {
        for j in 0..ops.len() {
            if ops[i].precedes(&ops[j]) {
                if let (Some(vi), Some(vj)) = (&views[i], &views[j]) {
                    if !is_suffix(vi, vj) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::impl_sim::{run_random, run_schedule};

    #[test]
    fn sequential_operations_chain_views() {
        let (fe, rep) = ConsensusFetchAndCons::setup(2);
        // P0 conses 10, then P1 conses 20, strictly sequentially.
        let workloads = vec![vec![10], vec![20]];
        let schedule: Vec<usize> = std::iter::repeat_n(0, 64)
            .chain(std::iter::repeat_n(1, 64))
            .collect();
        let run = run_schedule(&fe, rep, &workloads, &schedule);
        assert!(run.complete);
        let ops = run.history.ops();
        assert_eq!(ops[0].resp.as_ref().unwrap().len(), 0, "first cons sees Λ");
        let second = ops[1].resp.as_ref().unwrap();
        assert_eq!(second.len(), 1, "second cons sees the first item");
        assert_eq!(second[0].payload, 10);
        assert!(verify_history(&run.history));
    }

    #[test]
    fn random_runs_two_processes_are_linearizable() {
        let (fe, rep) = ConsensusFetchAndCons::setup(2);
        let workloads = vec![vec![10, 11], vec![20, 21]];
        for seed in 0..300 {
            let run = run_random(&fe, rep.clone(), &workloads, seed, 200);
            assert!(run.complete, "seed {seed}");
            assert!(verify_history(&run.history), "seed {seed}: {:?}", run.history);
        }
    }

    #[test]
    fn random_runs_three_processes_are_linearizable() {
        let (fe, rep) = ConsensusFetchAndCons::setup(3);
        let workloads = vec![vec![10, 11], vec![20, 21], vec![30, 31]];
        for seed in 0..200 {
            let run = run_random(&fe, rep.clone(), &workloads, seed, 400);
            assert!(run.complete, "seed {seed}");
            assert!(verify_history(&run.history), "seed {seed}: {:?}", run.history);
        }
    }

    #[test]
    fn random_runs_four_processes_repeated_payloads() {
        // Identical payloads across processes and operations: the seq
        // numbers must keep trim working.
        let (fe, rep) = ConsensusFetchAndCons::setup(4);
        let workloads = vec![vec![7, 7], vec![7, 7], vec![7], vec![7]];
        for seed in 0..100 {
            let run = run_random(&fe, rep.clone(), &workloads, seed, 600);
            assert!(run.complete, "seed {seed}");
            assert!(verify_history(&run.history), "seed {seed}");
        }
    }

    #[test]
    fn step_complexity_is_bounded_by_rounds() {
        // Strong wait-freedom: one operation costs at most
        // 1 (announce) + 2n (scan) + 1 (catch-up) + 6n (rounds) low-level
        // steps.
        let (fe, rep) = ConsensusFetchAndCons::setup(3);
        let n = 3;
        let bound_per_op = 1 + 2 * n + 1 + 6 * n;
        let workloads = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        for seed in 0..50 {
            let run = run_random(&fe, rep.clone(), &workloads, seed, 500);
            assert!(run.complete);
            for (p, steps) in run.lo_steps.iter().enumerate() {
                assert!(
                    *steps <= 2 * bound_per_op,
                    "seed {seed}: P{p} took {steps} > {}",
                    2 * bound_per_op
                );
            }
        }
    }

    #[test]
    fn verify_history_rejects_forked_views() {
        let mut h: History<Val, Vec<Item>> = History::new();
        // Two operations that both claim to be first: incoherent views.
        h.invoke(Pid(0), 10);
        h.respond(Pid(0), vec![]).unwrap();
        h.invoke(Pid(1), 20);
        h.respond(Pid(1), vec![]).unwrap();
        assert!(!verify_history(&h), "P1's view must include P0's item");
    }

    #[test]
    fn verify_history_accepts_the_legal_order() {
        let mut h: History<Val, Vec<Item>> = History::new();
        h.invoke(Pid(0), 10);
        h.respond(Pid(0), vec![]).unwrap();
        h.invoke(Pid(1), 20);
        h.respond(Pid(1), vec![Item { owner: 0, seq: 0, payload: 10 }])
            .unwrap();
        assert!(verify_history(&h));
    }
}
