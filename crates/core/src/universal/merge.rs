//! The list operators of §4.2: the merge operator `\`, operation views,
//! suffix tests and trimming.
//!
//! > *The merge operator, written `\`, takes two lists, a suffix and a
//! > prefix, and returns the list constructed by prepending to the suffix
//! > all the entries in the prefix but not in suffix, preserving their
//! > relative order in the prefix:*
//! >
//! > `Λ \ h = h`
//! > `(p · g) \ h = if p ∈ h then g \ h else p · (g \ h)`
//!
//! The linearizability criterion for fetch-and-cons histories (§4.2): all
//! views are *coherent* (pairwise, one is a suffix of the other), and
//! real-time order implies the suffix relation.

/// Merge `prefix \ suffix`: prepend to `suffix` every entry of `prefix`
/// not already in `suffix`, preserving the prefix's relative order.
///
/// # Example
///
/// ```
/// use waitfree_core::universal::merge::merge;
/// assert_eq!(merge(&[3, 2, 1], &[2, 0]), vec![3, 1, 2, 0]);
/// assert_eq!(merge(&[], &[5]), vec![5]);
/// assert_eq!(merge(&[5], &[]), vec![5]);
/// ```
#[must_use]
pub fn merge<T: PartialEq + Clone>(prefix: &[T], suffix: &[T]) -> Vec<T> {
    let mut out: Vec<T> = prefix
        .iter()
        .filter(|p| !suffix.contains(p))
        .cloned()
        .collect();
    out.extend_from_slice(suffix);
    out
}

/// The *view* of a fetch-and-cons operation: its argument prepended to its
/// result.
///
/// ```
/// use waitfree_core::universal::merge::view;
/// assert_eq!(view(9, &[2, 1]), vec![9, 2, 1]);
/// ```
#[must_use]
pub fn view<T: Clone>(arg: T, result: &[T]) -> Vec<T> {
    let mut v = Vec::with_capacity(result.len() + 1);
    v.push(arg);
    v.extend_from_slice(result);
    v
}

/// Whether `a` is a suffix of `b`.
///
/// ```
/// use waitfree_core::universal::merge::is_suffix;
/// assert!(is_suffix(&[2, 3], &[1, 2, 3]));
/// assert!(is_suffix::<i32>(&[], &[1]));
/// assert!(!is_suffix(&[1, 2], &[1, 2, 3]));
/// ```
#[must_use]
pub fn is_suffix<T: PartialEq>(a: &[T], b: &[T]) -> bool {
    a.len() <= b.len() && b[b.len() - a.len()..] == *a
}

/// Whether a set of views is *coherent*: for any two, one is a suffix of
/// the other (§4.2's linearizability condition (1)).
#[must_use]
pub fn coherent<T: PartialEq>(views: &[Vec<T>]) -> bool {
    for (i, a) in views.iter().enumerate() {
        for b in &views[i + 1..] {
            if !is_suffix(a, b) && !is_suffix(b, a) {
                return false;
            }
        }
    }
    true
}

/// The suffix strictly following the first entry matching `pred`
/// (the paper's `trim`: "the suffix following its own most recent
/// operation"), or `None` if no entry matches.
///
/// ```
/// use waitfree_core::universal::merge::trim_after;
/// let log = [30, 20, 10];
/// assert_eq!(trim_after(&log, |&x| x == 20), Some(&log[2..]));
/// assert_eq!(trim_after(&log, |&x| x == 99), None);
/// ```
pub fn trim_after<T, F: FnMut(&T) -> bool>(list: &[T], pred: F) -> Option<&[T]> {
    list.iter().position(pred).map(|i| &list[i + 1..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_base_cases_match_the_definition() {
        // Λ \ h = h
        assert_eq!(merge::<i32>(&[], &[1, 2]), vec![1, 2]);
        // (p·g) \ h with p ∈ h drops p
        assert_eq!(merge(&[2, 5], &[2]), vec![5, 2]);
        // with p ∉ h keeps p in front
        assert_eq!(merge(&[7], &[2]), vec![7, 2]);
    }

    #[test]
    fn merge_preserves_prefix_order() {
        assert_eq!(merge(&[4, 3, 2, 1], &[]), vec![4, 3, 2, 1]);
        assert_eq!(merge(&[4, 3, 2, 1], &[3, 1]), vec![4, 2, 3, 1]);
    }

    #[test]
    fn merge_result_always_has_suffix() {
        let suffix = vec![9, 8, 7];
        let m = merge(&[8, 1], &suffix);
        assert!(is_suffix(&suffix, &m));
    }

    #[test]
    fn merge_is_idempotent_on_contained_prefix() {
        let h = vec![1, 2, 3];
        assert_eq!(merge(&[2, 3], &h), h);
    }

    #[test]
    fn coherence_detects_forks() {
        let a = vec![3, 2, 1];
        let b = vec![2, 1];
        let c = vec![9, 1];
        assert!(coherent(&[a.clone(), b.clone()]));
        assert!(!coherent(&[a, b, c]));
    }

    #[test]
    fn empty_view_is_suffix_of_all() {
        assert!(coherent(&[vec![], vec![1], vec![2, 1]]));
    }

    #[test]
    fn trim_after_own_most_recent_operation() {
        // Entries tagged (owner, op); trim finds P1's latest (first in
        // head-first order) entry and returns what follows.
        let log = [(2, 'c'), (1, 'b'), (0, 'a'), (1, 'z')];
        let suffix = trim_after(&log, |e| e.0 == 1).unwrap();
        assert_eq!(suffix, &[(0, 'a'), (1, 'z')]);
    }

    // Randomized property tests over seeded lists (deterministic, offline
    // replacement for the former proptest strategies).
    fn random_list(rng: &mut waitfree_faults::rng::DetRng, max_len: usize, vals: i64) -> Vec<i64> {
        let len = rng.below(max_len + 1);
        (0..len).map(|_| rng.range_i64(0, vals)).collect()
    }

    /// merge(p, s) always ends with s.
    #[test]
    fn prop_merge_keeps_suffix() {
        let mut rng = waitfree_faults::rng::DetRng::new(0x4D45_5247);
        for _ in 0..512 {
            let prefix = random_list(&mut rng, 7, 20);
            let suffix = random_list(&mut rng, 7, 20);
            let m = merge(&prefix, &suffix);
            assert!(is_suffix(&suffix, &m), "prefix {prefix:?} suffix {suffix:?} -> {m:?}");
        }
    }

    /// Entries of the result = entries of suffix plus prefix-only entries.
    #[test]
    fn prop_merge_contains_exactly_union() {
        let mut rng = waitfree_faults::rng::DetRng::new(0x554E_494F);
        for _ in 0..512 {
            let prefix = random_list(&mut rng, 7, 20);
            let suffix = random_list(&mut rng, 7, 20);
            let m = merge(&prefix, &suffix);
            for p in &prefix {
                assert!(m.contains(p));
            }
            for s in &suffix {
                assert!(m.contains(s));
            }
            // No invented entries.
            for x in &m {
                assert!(prefix.contains(x) || suffix.contains(x));
            }
        }
    }

    /// Merging is monotone: a second merge with the same prefix is a no-op
    /// when the suffix already absorbed it.
    #[test]
    fn prop_merge_absorbs() {
        let mut rng = waitfree_faults::rng::DetRng::new(0x4142_534F);
        for _ in 0..512 {
            let prefix = random_list(&mut rng, 5, 10);
            let suffix = random_list(&mut rng, 5, 10);
            let once = merge(&prefix, &suffix);
            let twice = merge(&prefix, &once);
            assert_eq!(once, twice);
        }
    }

    /// is_suffix is a partial order: antisymmetric on distinct lists.
    #[test]
    fn prop_suffix_antisymmetric() {
        let mut rng = waitfree_faults::rng::DetRng::new(0x414E_5449);
        for _ in 0..2048 {
            let a = random_list(&mut rng, 5, 5);
            let b = random_list(&mut rng, 5, 5);
            if is_suffix(&a, &b) && is_suffix(&b, &a) {
                assert_eq!(a, b);
            }
        }
    }
}
