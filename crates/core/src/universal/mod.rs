//! §4 — Universality results.
//!
//! The paper's two-step reduction, each step implemented and checkable:
//!
//! 1. [`log`] — §4.1: any deterministic sequential object has a wait-free
//!    implementation from **fetch-and-cons** ("we represent the object's
//!    state as a list of the invocations that have been applied to it"),
//!    plus the strongly-wait-free variant that truncates the log with
//!    checkpointed states.
//! 2. [`consensus_cons`] — Figure 4-5: fetch-and-cons has a wait-free
//!    implementation from **any n-process consensus object**, using at
//!    most n rounds of consensus per operation.
//!
//! Together: an object is universal iff it solves n-process consensus
//! (Theorem 26). [`swap_cons`] adds the direct constant-time
//! implementation of fetch-and-cons from memory-to-memory swap
//! (Figures 4-3/4-4), and [`merge`] holds the list operators (`\`, views,
//! trim) with the coherence lemmas as tested properties.

pub mod consensus_cons;
pub mod log;
pub mod merge;
pub mod swap_cons;
