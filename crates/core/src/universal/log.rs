//! §4.1 — the universal construction: any deterministic sequential object
//! from fetch-and-cons.
//!
//! > *We represent the object's state as a list of the invocations that
//! > have been applied to it, placing the most recent invocation at the
//! > head of the list. … First, [a process] uses fetch-and-cons to place
//! > the operation at the head of the list. This step is when the
//! > operation "really happens." Second, the process computes the
//! > operation's result after traversing the list to reconstruct the
//! > object's previous state.*
//!
//! Two artifacts:
//!
//! * [`LogUniversal`] — the construction as a directly usable data
//!   structure, with the optional **checkpoint truncation** that makes it
//!   *strongly* wait-free ("we allow each element in the list to be either
//!   an operation or a state … a front-end will replay at most n
//!   operations before it encounters a state"). Replay lengths are
//!   tracked so the O(k) vs O(n) difference is measurable (bench
//!   `log_truncation`).
//! * [`LogFrontEnd`] — the same construction as a front-end automaton over
//!   a `ConsList` representation, so the explorer can interleave it and
//!   the linearizability checker can certify the resulting histories.

use std::fmt::Debug;
use std::hash::Hash;

use waitfree_model::{ImplAction, ImplAutomaton, ObjectSpec, Pid};
use waitfree_objects::list::{ListOp, ListResp};

/// One log entry: an invocation, or a checkpointed state (the strongly
/// wait-free extension: "We allow each element in the list to be either an
/// operation or a state").
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LogEntry<S: ObjectSpec> {
    /// An invocation: who called what.
    Op {
        /// Invoking process.
        pid: Pid,
        /// The operation.
        op: S::Op,
    },
    /// The object state reflecting every entry *below* (older than) this
    /// point.
    Checkpoint(S),
}

/// Replay a head-first (newest-first) log suffix from `initial`, stopping
/// early at the first checkpoint: "The eval function is extended in the
/// obvious way, returning immediately when it encounters a state in place
/// of an operation." Returns the reconstructed state and the number of
/// operation entries actually replayed.
pub fn replay<S: ObjectSpec>(initial: &S, suffix: &[LogEntry<S>]) -> (S, usize) {
    // Find the newest checkpoint (closest to the head).
    let stop = suffix
        .iter()
        .position(|e| matches!(e, LogEntry::Checkpoint(_)))
        .unwrap_or(suffix.len());
    let mut state = match suffix.get(stop) {
        Some(LogEntry::Checkpoint(s)) => s.clone(),
        _ => initial.clone(),
    };
    // Apply the operations above the checkpoint, oldest first.
    let mut replayed = 0;
    for entry in suffix[..stop].iter().rev() {
        let LogEntry::Op { pid, op } = entry else {
            unreachable!("no checkpoint above `stop`")
        };
        state.apply(*pid, op);
        replayed += 1;
    }
    (state, replayed)
}

/// The universal construction as a directly usable object.
///
/// `invoke` is the whole §4.1 algorithm: atomically thread the invocation
/// onto the log, replay the suffix to reconstruct the prior state, compute
/// the response. With `checkpointing` enabled, the caller then replaces
/// everything below its entry with the reconstructed state, bounding every
/// future replay by the number of concurrent operations.
///
/// # Example
///
/// ```
/// use waitfree_core::universal::log::LogUniversal;
/// use waitfree_model::Pid;
/// use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};
///
/// let mut q = LogUniversal::new(FifoQueue::new(), true);
/// q.invoke(Pid(0), QueueOp::Enq(7));
/// assert_eq!(q.invoke(Pid(1), QueueOp::Deq), QueueResp::Item(7));
/// ```
#[derive(Clone, Debug)]
pub struct LogUniversal<S: ObjectSpec> {
    initial: S,
    /// Head-first log.
    log: Vec<LogEntry<S>>,
    checkpointing: bool,
    last_replay: usize,
    max_replay: usize,
}

impl<S: ObjectSpec> LogUniversal<S> {
    /// Wrap a sequential object. With `checkpointing`, the construction is
    /// strongly wait-free (bounded replay); without, replay cost grows
    /// with history length.
    #[must_use]
    pub fn new(initial: S, checkpointing: bool) -> Self {
        LogUniversal {
            initial,
            log: Vec::new(),
            checkpointing,
            last_replay: 0,
            max_replay: 0,
        }
    }

    /// Execute one operation through the log.
    pub fn invoke(&mut self, pid: Pid, op: S::Op) -> S::Resp {
        // Step 1: fetch-and-cons — the operation "really happens" here.
        self.log.insert(
            0,
            LogEntry::Op {
                pid,
                op: op.clone(),
            },
        );
        // Step 2: replay the suffix (everything after our entry).
        let (mut state, replayed) = replay(&self.initial, &self.log[1..]);
        self.last_replay = replayed;
        self.max_replay = self.max_replay.max(replayed);
        if self.checkpointing {
            // Replace our cdr with the reconstructed (pre-operation)
            // state: future replays stop here.
            self.log.truncate(1);
            self.log.push(LogEntry::Checkpoint(state.clone()));
        }
        state.apply(pid, &op)
    }

    /// Entries replayed by the most recent `invoke`.
    #[must_use]
    pub fn last_replay(&self) -> usize {
        self.last_replay
    }

    /// Maximum entries replayed by any `invoke` so far.
    #[must_use]
    pub fn max_replay(&self) -> usize {
        self.max_replay
    }

    /// Current log length (the space-complexity side of §4.1).
    #[must_use]
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Reconstruct the current abstract state (replays the whole log).
    #[must_use]
    pub fn state(&self) -> S {
        replay(&self.initial, &self.log).0
    }
}

/// A log item as stored in the `ConsList` representation: the invoking
/// process's index paired with the operation.
pub type LogItem<Op> = (usize, Op);

/// The §4.1 construction as a front-end automaton over `ConsList<LogItem>`
/// — the form the explorer can drive and the linearizability checker can
/// certify.
#[derive(Clone, Debug)]
pub struct LogFrontEnd<S: ObjectSpec> {
    /// The implemented object's initial state.
    pub initial: S,
}

/// Front-end state of [`LogFrontEnd`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum LogFeState<S: ObjectSpec> {
    /// Between operations.
    Idle,
    /// About to fetch-and-cons this operation.
    Threading(S::Op),
    /// Computed the response; about to return it.
    Responding(S::Resp),
}

impl<S: ObjectSpec> ImplAutomaton for LogFrontEnd<S> {
    type HiOp = S::Op;
    type HiResp = S::Resp;
    type LoOp = ListOp<LogItem<S::Op>>;
    type LoResp = ListResp<LogItem<S::Op>>;
    type State = LogFeState<S>;

    fn idle(&self, _pid: Pid) -> Self::State {
        LogFeState::Idle
    }

    fn begin(&self, _pid: Pid, _state: &Self::State, op: &S::Op) -> Self::State {
        LogFeState::Threading(op.clone())
    }

    fn action(&self, pid: Pid, state: &Self::State) -> ImplAction<Self::LoOp, S::Resp> {
        match state {
            LogFeState::Idle => unreachable!("idle front-end has no action"),
            LogFeState::Threading(op) => {
                ImplAction::Invoke(ListOp::FetchAndCons((pid.0, op.clone())))
            }
            LogFeState::Responding(resp) => ImplAction::Return(resp.clone()),
        }
    }

    fn observe(&self, pid: Pid, state: &Self::State, resp: &Self::LoResp) -> Self::State {
        let LogFeState::Threading(op) = state else {
            unreachable!("only the fetch-and-cons awaits a response")
        };
        let ListResp::Items(suffix) = resp else {
            unreachable!("fetch-and-cons returns the suffix")
        };
        // Replay the suffix, oldest first.
        let mut st = self.initial.clone();
        for (p, o) in suffix.iter().rev() {
            st.apply(Pid(*p), o);
        }
        LogFeState::Responding(st.apply(pid, op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::impl_sim::{all_histories, run_random};
    use waitfree_model::{linearize, PendingPolicy, Val};
    use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
    use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};
    use waitfree_objects::list::ConsList;
    use waitfree_objects::stack::{Stack, StackOp};

    #[test]
    fn universal_queue_matches_direct_queue_sequentially() {
        let mut uni = LogUniversal::new(FifoQueue::new(), false);
        let mut direct = FifoQueue::new();
        use waitfree_model::ObjectSpec;
        let script = [
            QueueOp::Enq(1),
            QueueOp::Enq(2),
            QueueOp::Deq,
            QueueOp::Enq(3),
            QueueOp::Deq,
            QueueOp::Deq,
            QueueOp::Deq,
        ];
        for (i, op) in script.iter().enumerate() {
            let pid = Pid(i % 3);
            assert_eq!(uni.invoke(pid, op.clone()), direct.apply(pid, op), "{op:?}");
        }
        assert_eq!(uni.state(), direct);
    }

    #[test]
    fn replay_grows_without_checkpointing() {
        let mut uni = LogUniversal::new(Counter::new(0), false);
        for k in 0..50 {
            uni.invoke(Pid(0), CounterOp::Add(1));
            assert_eq!(uni.last_replay(), k, "k-th op replays k entries");
        }
        assert_eq!(uni.log_len(), 50);
        assert_eq!(uni.max_replay(), 49);
    }

    #[test]
    fn replay_is_constant_with_checkpointing() {
        let mut uni = LogUniversal::new(Counter::new(0), true);
        for _ in 0..50 {
            uni.invoke(Pid(0), CounterOp::Add(1));
            assert!(uni.last_replay() <= 1, "checkpoint bounds the replay");
        }
        assert!(uni.log_len() <= 2);
        match uni.invoke(Pid(1), CounterOp::Get) {
            CounterResp::Value(v) => assert_eq!(v, 50),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn checkpointed_and_plain_agree() {
        let mut a = LogUniversal::new(Stack::new(), true);
        let mut b = LogUniversal::new(Stack::new(), false);
        let script = [
            StackOp::Push(4),
            StackOp::Push(5),
            StackOp::Pop,
            StackOp::Pop,
            StackOp::Pop,
        ];
        for (i, op) in script.iter().enumerate() {
            let pid = Pid(i % 2);
            assert_eq!(a.invoke(pid, op.clone()), b.invoke(pid, op.clone()));
        }
    }

    #[test]
    fn replay_helper_stops_at_checkpoint() {
        let ck = {
            let mut s = Counter::new(0);
            use waitfree_model::ObjectSpec;
            s.apply(Pid(0), &CounterOp::Add(10));
            s
        };
        let suffix: Vec<LogEntry<Counter>> = vec![
            LogEntry::Op { pid: Pid(1), op: CounterOp::Add(1) },
            LogEntry::Checkpoint(ck),
            LogEntry::Op { pid: Pid(0), op: CounterOp::Add(100) }, // ignored
        ];
        let (state, replayed) = replay(&Counter::new(0), &suffix);
        assert_eq!(state.value(), 11);
        assert_eq!(replayed, 1);
    }

    #[test]
    fn front_end_histories_linearize_against_queue_spec() {
        let fe = LogFrontEnd { initial: FifoQueue::new() };
        let workloads = vec![
            vec![QueueOp::Enq(10), QueueOp::Deq],
            vec![QueueOp::Enq(20), QueueOp::Deq],
        ];
        let histories = all_histories(
            &fe,
            &ConsList::<LogItem<QueueOp>>::new(),
            &workloads,
            50_000,
        );
        assert!(histories.len() > 1, "concurrency produces several histories");
        for h in &histories {
            let report = linearize(h, &FifoQueue::new(), PendingPolicy::MayTakeEffect);
            assert!(report.outcome.is_ok(), "{h:?}");
        }
    }

    #[test]
    fn front_end_random_runs_linearize_three_processes() {
        let fe = LogFrontEnd { initial: FifoQueue::new() };
        let workloads: Vec<Vec<QueueOp>> = (0..3)
            .map(|p| {
                vec![
                    QueueOp::Enq(10 * p as Val),
                    QueueOp::Deq,
                    QueueOp::Enq(10 * p as Val + 1),
                    QueueOp::Deq,
                ]
            })
            .collect();
        for seed in 0..20 {
            let run = run_random(
                &fe,
                ConsList::<LogItem<QueueOp>>::new(),
                &workloads,
                seed,
                500,
            );
            assert!(run.complete);
            let report = linearize(&run.history, &FifoQueue::new(), PendingPolicy::MayTakeEffect);
            assert!(report.outcome.is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn front_end_responses_expose_enqueue_order() {
        // Two concurrent enqueues then two dequeues: the dequeues must
        // return the two items in *some* consistent FIFO order — never the
        // same item twice and never `Empty`.
        let fe = LogFrontEnd { initial: FifoQueue::new() };
        let workloads = vec![
            vec![QueueOp::Enq(1), QueueOp::Deq],
            vec![QueueOp::Enq(2), QueueOp::Deq],
        ];
        let histories = all_histories(
            &fe,
            &ConsList::<LogItem<QueueOp>>::new(),
            &workloads,
            50_000,
        );
        for h in &histories {
            let deq_results: Vec<QueueResp> = h
                .ops()
                .iter()
                .filter(|o| o.op == QueueOp::Deq)
                .filter_map(|o| o.resp.clone())
                .collect();
            if deq_results.len() == 2 {
                assert_ne!(deq_results[0], deq_results[1], "items dequeued once each");
                assert!(!deq_results.contains(&QueueResp::Empty));
            }
        }
    }
}
