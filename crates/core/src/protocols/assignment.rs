//! Theorems 19 and 20: atomic m-register assignment solves consensus for
//! m processes (Theorem 19) and, with the two-phase group construction,
//! for 2m-2 processes (Theorem 20) — the only object family in the paper
//! occupying the *intermediate* levels of the hierarchy (Figure 1-1's
//! "n-register assignment at level 2n-2").
//!
//! **Theorem 19.** Each of the m processes owns a private register and
//! shares one register with every other process. A process atomically
//! assigns its identifier to its private register and its m-1 shared
//! registers, then determines the *earliest* assigner: the unique
//! participant `F` such that, for every other participant `j`, the shared
//! register `r_{Fj}` holds `j`'s value (everyone who assigned did so after
//! `F` and therefore overwrote `F`'s mark).
//!
//! **Theorem 20.** Split 2m-2 processes into two groups of m-1. Phase one:
//! each group internally agrees using the Theorem 19 protocol (width
//! m-1 ≤ m). Phase two: each process atomically assigns its *group's*
//! value to a fresh private register and the m-1 registers shared with the
//! other group; from the resulting precedence graph every process finds a
//! *source* (≥1 outgoing, no incoming edge) and decides that source's
//! group value. The paper proves all sources lie in one group.
//!
//! Theorem 22 (m-assignment cannot solve 2m-1 processes) is exercised by
//! the bounded-synthesis experiment `thm_22_assignment_impossible`.

use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
use waitfree_objects::assignment::{AssignBank, AssignOp, AssignResp};

/// "Unassigned" sentinel; process ids are non-negative.
pub const UNSET: Val = -1;

/// Register layout and scan logic for one Theorem 19 instance over an
/// arbitrary subset of processes ("members"), at a cell-base offset —
/// reused by Theorem 20's phase one.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct Group {
    /// Global pids of the participants, ascending.
    members: Vec<usize>,
    /// First cell of this instance's register block.
    base: usize,
}

impl Group {
    fn len(&self) -> usize {
        self.members.len()
    }

    /// Cells used by this instance: g privates followed by C(g,2) shared.
    fn cells(&self) -> usize {
        let g = self.len();
        g + g * (g - 1) / 2
    }

    fn private_cell(&self, k: usize) -> usize {
        self.base + k
    }

    /// Shared register of member indices `i < j`.
    fn shared_cell(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.len());
        let g = self.len();
        // Triangular packing: pairs (0,1),(0,2),…,(0,g-1),(1,2),…
        self.base + g + i * g - i * (i + 1) / 2 + (j - i - 1)
    }

    fn member_index(&self, pid: usize) -> usize {
        self.members.iter().position(|&m| m == pid).expect("pid is a member")
    }

    /// The atomic assignment of member `k`: its value (= global pid) into
    /// its private register and all its shared registers.
    fn assign_op(&self, k: usize) -> AssignOp {
        let v = self.members[k] as Val;
        let mut pairs = vec![(self.private_cell(k), v)];
        for j in 0..self.len() {
            if j != k {
                let (a, b) = if k < j { (k, j) } else { (j, k) };
                pairs.push((self.shared_cell(a, b), v));
            }
        }
        AssignOp::Assign(pairs)
    }

    /// Next participant index `> after` (or from 0 when `after` is None)
    /// whose private value is set.
    fn next_participant(&self, vals: &[Val], after: Option<usize>) -> Option<usize> {
        let start = after.map_or(0, |a| a + 1);
        (start..self.len()).find(|&k| vals[k] != UNSET)
    }

    /// Next participant `j > after` (skipping `m`) whose shared register
    /// with candidate `m` must be checked.
    fn next_check(&self, vals: &[Val], m: usize, after: Option<usize>) -> Option<usize> {
        let start = after.map_or(0, |a| a + 1);
        (start..self.len()).find(|&j| j != m && vals[j] != UNSET)
    }
}

/// Local state of the Theorem 19 scan, shared by both protocols.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ScanState {
    /// About to perform the atomic assignment.
    Assign,
    /// Reading the next private register.
    ReadPrivate {
        /// Private values collected so far.
        vals: Vec<Val>,
        /// Index of the private register to read next.
        k: usize,
    },
    /// Checking a candidate for "earliest assigner".
    CheckCandidate {
        /// Private values from the scan.
        vals: Vec<Val>,
        /// Candidate member index.
        m: usize,
        /// Member whose shared register with `m` is read next.
        j: usize,
    },
    /// Scan finished: the earliest assigner is this member index.
    Found(usize),
}

impl Group {
    /// Advance the scan state machine given the latest response.
    fn step_scan(&self, state: &ScanState, resp: &AssignResp) -> ScanState {
        match state {
            ScanState::Assign => ScanState::ReadPrivate { vals: Vec::new(), k: 0 },
            ScanState::ReadPrivate { vals, k } => {
                let AssignResp::Value(v) = resp else {
                    unreachable!("read returns a value")
                };
                let mut vals = vals.clone();
                vals.push(*v);
                if *k + 1 < self.len() {
                    ScanState::ReadPrivate { vals, k: *k + 1 }
                } else {
                    let m = self
                        .next_participant(&vals, None)
                        .expect("scanner itself has assigned");
                    match self.next_check(&vals, m, None) {
                        Some(j) => ScanState::CheckCandidate { vals, m, j },
                        None => ScanState::Found(m),
                    }
                }
            }
            ScanState::CheckCandidate { vals, m, j } => {
                let AssignResp::Value(v) = resp else {
                    unreachable!("read returns a value")
                };
                if *v == self.members[*j] as Val {
                    // j assigned after m; candidate m survives this check.
                    match self.next_check(vals, *m, Some(*j)) {
                        Some(j2) => ScanState::CheckCandidate { vals: vals.clone(), m: *m, j: j2 },
                        None => ScanState::Found(*m),
                    }
                } else {
                    // Someone assigned before m: m is not the earliest.
                    let m2 = self
                        .next_participant(vals, Some(*m))
                        .expect("the earliest participant always passes");
                    match self.next_check(vals, m2, None) {
                        Some(j2) => ScanState::CheckCandidate { vals: vals.clone(), m: m2, j: j2 },
                        None => ScanState::Found(m2),
                    }
                }
            }
            ScanState::Found(_) => unreachable!("scan already finished"),
        }
    }

    /// The shared-object operation the scan state wants to perform, or the
    /// found winner.
    fn scan_action(&self, me: usize, state: &ScanState) -> Result<AssignOp, usize> {
        match state {
            ScanState::Assign => Ok(self.assign_op(me)),
            ScanState::ReadPrivate { k, .. } => Ok(AssignOp::Read(self.private_cell(*k))),
            ScanState::CheckCandidate { m, j, .. } => {
                let (a, b) = if m < j { (*m, *j) } else { (*j, *m) };
                Ok(AssignOp::Read(self.shared_cell(a, b)))
            }
            ScanState::Found(m) => Err(*m),
        }
    }
}

/// The Theorem 19 protocol: n-register assignment, n processes.
#[derive(Clone, Debug)]
pub struct AssignConsensus {
    group: Group,
}

/// Local state of [`AssignConsensus`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AssignState(ScanState);

impl AssignConsensus {
    /// The protocol for `n` processes plus its bank: width `n`, with `n`
    /// private and `n(n-1)/2` shared registers, all initialized to `⊥`.
    #[must_use]
    pub fn setup(n: usize) -> (Self, AssignBank) {
        let group = Group { members: (0..n).collect(), base: 0 };
        let bank = AssignBank::new(group.cells(), n, UNSET);
        (AssignConsensus { group }, bank)
    }
}

impl ProcessAutomaton for AssignConsensus {
    type Op = AssignOp;
    type Resp = AssignResp;
    type State = AssignState;

    fn start(&self, _pid: Pid) -> AssignState {
        AssignState(ScanState::Assign)
    }

    fn action(&self, pid: Pid, state: &AssignState) -> Action<AssignOp> {
        let me = self.group.member_index(pid.0);
        match self.group.scan_action(me, &state.0) {
            Ok(op) => Action::Invoke(op),
            Err(m) => Action::Decide(self.group.members[m] as Val),
        }
    }

    fn observe(&self, _pid: Pid, state: &AssignState, resp: &AssignResp) -> AssignState {
        AssignState(self.group.step_scan(&state.0, resp))
    }
}

/// The Theorem 20 protocol: m-register assignment, 2m-2 processes.
///
/// Group A is processes `0..m-1`, group B is `m-1..2m-2` (each of size
/// m-1). Phase one runs [`AssignConsensus`]'s scan within each group;
/// phase two assigns the group's value across the inter-group registers
/// and decides via the precedence graph.
#[derive(Clone, Debug)]
pub struct WideAssignConsensus {
    m: usize,
    group_a: Group,
    group_b: Group,
    /// First cell of the phase-two private block.
    p2_private: usize,
    /// First cell of the phase-two shared block (`(m-1)²` cells).
    p2_shared: usize,
}

/// Local state of [`WideAssignConsensus`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum WideState {
    /// Phase one: group-internal Theorem 19 scan.
    Phase1(ScanState),
    /// Phase two: about to assign the group value.
    Phase2Assign {
        /// The group's phase-one value.
        gval: Val,
    },
    /// Phase two: reading phase-two private register `k`.
    Phase2ReadPrivate {
        /// The group's phase-one value.
        gval: Val,
        /// Collected private values so far.
        vals: Vec<Val>,
        /// Next private index to read.
        k: usize,
    },
    /// Phase two: reading the shared register of cross pair `idx`.
    Phase2ReadShared {
        /// The group's phase-one value.
        gval: Val,
        /// Phase-two private values.
        vals: Vec<Val>,
        /// Next cross-pair index (into the canonical participant-pair list).
        idx: usize,
        /// Shared values read so far, in pair order.
        shared: Vec<Val>,
    },
    /// Finished, with this decision.
    Done(Val),
}

impl WideAssignConsensus {
    /// The protocol for width `m` (so `2m-2` processes) plus its bank.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2`.
    #[must_use]
    pub fn setup(m: usize) -> (Self, AssignBank) {
        assert!(m >= 2, "Theorem 20 needs assignment width at least 2");
        let g = m - 1;
        let group_a = Group { members: (0..g).collect(), base: 0 };
        let b_base = group_a.cells();
        let group_b = Group { members: (g..2 * g).collect(), base: b_base };
        let p2_private = b_base + group_b.cells();
        let p2_shared = p2_private + 2 * g;
        let total = p2_shared + g * g;
        let bank = AssignBank::new(total, m, UNSET);
        (
            WideAssignConsensus { m, group_a, group_b, p2_private, p2_shared },
            bank,
        )
    }

    /// Number of processes this instance serves.
    #[must_use]
    pub fn processes(&self) -> usize {
        2 * (self.m - 1)
    }

    fn group_of(&self, pid: usize) -> (&Group, bool) {
        if pid < self.m - 1 {
            (&self.group_a, true)
        } else {
            (&self.group_b, false)
        }
    }

    fn p2_shared_cell(&self, a_local: usize, b_local: usize) -> usize {
        self.p2_shared + a_local * (self.m - 1) + b_local
    }

    /// Phase-two assignment for `pid`: group value into own private and
    /// the m-1 registers shared with the other group.
    fn p2_assign_op(&self, pid: usize, gval: Val) -> AssignOp {
        let g = self.m - 1;
        let mut pairs = vec![(self.p2_private + pid, gval)];
        if pid < g {
            for b in 0..g {
                pairs.push((self.p2_shared_cell(pid, b), gval));
            }
        } else {
            for a in 0..g {
                pairs.push((self.p2_shared_cell(a, pid - g), gval));
            }
        }
        pairs.truncate(self.m); // 1 + (m-1) = m cells: full width
        AssignOp::Assign(pairs)
    }

    /// Canonical cross-pair list for a participant set: all (a, b) with
    /// `a ∈ V∩A`, `b ∈ V∩B`, in ascending order.
    fn cross_pairs(&self, vals: &[Val]) -> Vec<(usize, usize)> {
        let g = self.m - 1;
        let mut pairs = Vec::new();
        for a in 0..g {
            if vals[a] == UNSET {
                continue;
            }
            for b in 0..g {
                if vals[g + b] != UNSET {
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }

    /// Final decision from the phase-two scan: find a source of the
    /// precedence graph, or fall back to the own group's value when the
    /// view is single-group.
    fn decide(&self, gval: Val, vals: &[Val], shared: &[Val]) -> Val {
        let g = self.m - 1;
        let pairs = self.cross_pairs(vals);
        if pairs.is_empty() {
            return gval;
        }
        let n2 = 2 * g;
        let mut incoming = vec![0usize; n2];
        let mut outgoing = vec![0usize; n2];
        for (p, &(a, b)) in pairs.iter().enumerate() {
            let b_pid = g + b;
            // The shared register holds the *later* assigner's value.
            if shared[p] == vals[b_pid] {
                // b assigned later: a precedes b.
                outgoing[a] += 1;
                incoming[b_pid] += 1;
            } else {
                debug_assert_eq!(shared[p], vals[a]);
                outgoing[b_pid] += 1;
                incoming[a] += 1;
            }
        }
        let source = (0..n2)
            .find(|&i| outgoing[i] > 0 && incoming[i] == 0)
            .expect("the earliest phase-two assigner is a source");
        vals[source]
    }
}

impl ProcessAutomaton for WideAssignConsensus {
    type Op = AssignOp;
    type Resp = AssignResp;
    type State = WideState;

    fn start(&self, _pid: Pid) -> WideState {
        WideState::Phase1(ScanState::Assign)
    }

    fn action(&self, pid: Pid, state: &WideState) -> Action<AssignOp> {
        let (group, _) = self.group_of(pid.0);
        match state {
            WideState::Phase1(scan) => {
                let me = group.member_index(pid.0);
                match group.scan_action(me, scan) {
                    Ok(op) => Action::Invoke(op),
                    Err(_) => unreachable!("Found is converted in observe"),
                }
            }
            WideState::Phase2Assign { gval } => {
                Action::Invoke(self.p2_assign_op(pid.0, *gval))
            }
            WideState::Phase2ReadPrivate { k, .. } => {
                Action::Invoke(AssignOp::Read(self.p2_private + k))
            }
            WideState::Phase2ReadShared { vals, idx, .. } => {
                let (a, b) = self.cross_pairs(vals)[*idx];
                Action::Invoke(AssignOp::Read(self.p2_shared_cell(a, b)))
            }
            WideState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, pid: Pid, state: &WideState, resp: &AssignResp) -> WideState {
        let (group, _) = self.group_of(pid.0);
        match state {
            WideState::Phase1(scan) => {
                let next = group.step_scan(scan, resp);
                if let ScanState::Found(m) = next {
                    WideState::Phase2Assign { gval: group.members[m] as Val }
                } else {
                    WideState::Phase1(next)
                }
            }
            WideState::Phase2Assign { gval } => WideState::Phase2ReadPrivate {
                gval: *gval,
                vals: Vec::new(),
                k: 0,
            },
            WideState::Phase2ReadPrivate { gval, vals, k } => {
                let AssignResp::Value(v) = resp else {
                    unreachable!("read returns a value")
                };
                let mut vals = vals.clone();
                vals.push(*v);
                if *k + 1 < self.processes() {
                    WideState::Phase2ReadPrivate { gval: *gval, vals, k: *k + 1 }
                } else if self.cross_pairs(&vals).is_empty() {
                    WideState::Done(self.decide(*gval, &vals, &[]))
                } else {
                    WideState::Phase2ReadShared {
                        gval: *gval,
                        vals,
                        idx: 0,
                        shared: Vec::new(),
                    }
                }
            }
            WideState::Phase2ReadShared { gval, vals, idx, shared } => {
                let AssignResp::Value(v) = resp else {
                    unreachable!("read returns a value")
                };
                let mut shared = shared.clone();
                shared.push(*v);
                if *idx + 1 < self.cross_pairs(vals).len() {
                    WideState::Phase2ReadShared {
                        gval: *gval,
                        vals: vals.clone(),
                        idx: *idx + 1,
                        shared,
                    }
                } else {
                    WideState::Done(self.decide(*gval, vals, &shared))
                }
            }
            WideState::Done(_) => unreachable!("decided processes do not observe"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::check::{check_consensus, CheckSettings};
    use waitfree_explorer::random::{run_random, RandomSettings};

    #[test]
    fn theorem_19_exhaustive_two_and_three() {
        for n in [2, 3] {
            let (p, o) = AssignConsensus::setup(n);
            let report = check_consensus(&p, &o, n, &CheckSettings::default());
            assert!(report.is_ok(), "n={n}: {:?}", report.violation);
            assert_eq!(report.decisions_seen.len(), n);
        }
    }

    #[test]
    fn theorem_19_randomized_five() {
        let (p, o) = AssignConsensus::setup(5);
        let settings = RandomSettings { runs: 150, ..RandomSettings::default() };
        let report = run_random(&p, &o, 5, &settings);
        assert!(report.is_ok(), "{:?}", report.violation);
    }

    #[test]
    fn theorem_19_protocol_fails_with_one_extra_process() {
        // Width-2 assignment run by 3 processes (pretending the third is
        // "process 2" sharing register layout of a 3-member group but the
        // bank only has width 2): the honest statement of Theorem 22 needs
        // synthesis, but the direct protocol must at least not generalize:
        // building a 3-member instance requires width 3.
        let (p3, _) = AssignConsensus::setup(3);
        let narrow = AssignBank::new(6, 2, UNSET); // width 2 < required 3
        let result = std::panic::catch_unwind(|| {
            check_consensus(&p3, &narrow, 3, &CheckSettings::default())
        });
        assert!(result.is_err(), "width enforcement must reject the assignment");
    }

    #[test]
    fn theorem_20_width_two_serves_two() {
        let (p, o) = WideAssignConsensus::setup(2);
        assert_eq!(p.processes(), 2);
        let report = check_consensus(&p, &o, 2, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
        assert_eq!(report.decisions_seen.len(), 2);
    }

    #[test]
    fn theorem_20_width_three_serves_four_randomized() {
        let (p, o) = WideAssignConsensus::setup(3);
        assert_eq!(p.processes(), 4);
        let settings = RandomSettings { runs: 400, ..RandomSettings::default() };
        let report = run_random(&p, &o, 4, &settings);
        assert!(report.is_ok(), "{:?}", report.violation);
        assert_eq!(report.decisions_seen.len(), 4, "every process can win");
    }

    #[test]
    fn theorem_20_width_three_exhaustive_bounded() {
        // Exhaustive check with a budget; if the state space fits, great —
        // if not, the budget violation is reported and we rely on the
        // randomized test. Either way, no *correctness* violation may
        // appear.
        use waitfree_explorer::check::Violation;
        let (p, o) = WideAssignConsensus::setup(3);
        let settings = CheckSettings { crashes: false, max_configs: 150_000 };
        let report = check_consensus(&p, &o, 4, &settings);
        match report.violation {
            None | Some(Violation::Budget { .. }) => {}
            Some(v) => panic!("correctness violation: {v}"),
        }
    }

    #[test]
    fn group_register_layout_is_disjoint_and_dense() {
        let (p, o) = WideAssignConsensus::setup(3);
        // Groups of 2: each needs 2 private + 1 shared = 3 cells; phase
        // two: 4 private + 4 shared. Total 3+3+4+4 = 14.
        assert_eq!(o.len(), 14);
        assert_eq!(p.group_a.cells(), 3);
        assert_eq!(p.group_b.base, 3);
        assert_eq!(p.p2_private, 6);
        assert_eq!(p.p2_shared, 10);
    }

    #[test]
    fn triangular_shared_cell_packing() {
        let g = Group { members: vec![0, 1, 2, 3], base: 10 };
        // privates 10..14, shared pairs (0,1),(0,2),(0,3),(1,2),(1,3),(2,3)
        // at 14..20.
        assert_eq!(g.shared_cell(0, 1), 14);
        assert_eq!(g.shared_cell(0, 3), 16);
        assert_eq!(g.shared_cell(1, 2), 17);
        assert_eq!(g.shared_cell(2, 3), 19);
        assert_eq!(g.cells(), 10);
    }
}
