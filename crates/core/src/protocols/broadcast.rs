//! Ordered broadcast solves n-process consensus (§3.1's message-passing
//! discussion, after Dolev–Dwork–Stockmeyer): every process broadcasts its
//! identifier and decides the sender of the *first* message delivered —
//! total delivery order makes that sender common knowledge.
//!
//! The companion experiment (`sec_3_1_channels`) shows the other two
//! channel flavors of the paper's comparison — point-to-point FIFO and
//! unordered broadcast — fail bounded synthesis at n = 2.

use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
use waitfree_objects::channel::{BcastOp, ChanResp, OrderedBroadcast};

/// The n-process ordered-broadcast consensus protocol.
#[derive(Clone, Copy, Debug, Default)]
pub struct BroadcastConsensus;

/// Local state of [`BroadcastConsensus`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BcastState {
    /// About to broadcast own identifier.
    Send,
    /// About to receive the first delivered message.
    Receive,
    /// Finished, with this decision.
    Done(Val),
}

impl BroadcastConsensus {
    /// The protocol plus an empty ordered-broadcast channel for `n`
    /// processes.
    #[must_use]
    pub fn setup(n: usize) -> (Self, OrderedBroadcast) {
        (BroadcastConsensus, OrderedBroadcast::new(n))
    }
}

impl ProcessAutomaton for BroadcastConsensus {
    type Op = BcastOp;
    type Resp = ChanResp;
    type State = BcastState;

    fn start(&self, _pid: Pid) -> BcastState {
        BcastState::Send
    }

    fn action(&self, pid: Pid, state: &BcastState) -> Action<BcastOp> {
        match state {
            BcastState::Send => Action::Invoke(BcastOp::Bcast(pid.as_val())),
            BcastState::Receive => Action::Invoke(BcastOp::Recv),
            BcastState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, _pid: Pid, state: &BcastState, resp: &ChanResp) -> BcastState {
        match (state, resp) {
            (BcastState::Send, _) => BcastState::Receive,
            (BcastState::Receive, ChanResp::Msg { body, .. }) => BcastState::Done(*body),
            (BcastState::Receive, other) => {
                unreachable!("recv after own broadcast cannot see {other:?}")
            }
            (BcastState::Done(_), _) => unreachable!("decided processes do not observe"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::check::{check_consensus, CheckSettings};
    use waitfree_explorer::random::{run_random, RandomSettings};

    #[test]
    fn ordered_broadcast_solves_consensus_exhaustively() {
        for n in [2, 3] {
            let (p, o) = BroadcastConsensus::setup(n);
            let report = check_consensus(&p, &o, n, &CheckSettings::default());
            assert!(report.is_ok(), "n={n}: {:?}", report.violation);
            assert_eq!(report.decisions_seen.len(), n);
        }
    }

    #[test]
    fn ordered_broadcast_randomized_ten_processes() {
        let (p, o) = BroadcastConsensus::setup(10);
        let settings = RandomSettings { runs: 150, ..RandomSettings::default() };
        let report = run_random(&p, &o, 10, &settings);
        assert!(report.is_ok(), "{:?}", report.violation);
    }
}
