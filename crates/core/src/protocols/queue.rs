//! Theorem 9: two-process consensus from a FIFO queue (and the "trivial
//! variations" for stacks and sets of Corollary 10).
//!
//! > *The queue is initialized by enqueuing the value `first` followed by
//! > the value `second`. P and Q each attempt to dequeue the first item in
//! > the queue; if P succeeds, the protocol decides on 0, otherwise it
//! > decides on 1.*
//!
//! Theorem 11 shows the same queue *cannot* solve three-process consensus;
//! the bounded synthesis experiment (`thm_11_queue_three`) reproduces that
//! side mechanically.

use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};
use waitfree_objects::setobj::{SetObj, SetOp, SetResp};
use waitfree_objects::stack::{Stack, StackOp, StackResp};

/// Item meaning "whoever dequeues me went first".
pub const FIRST: Val = 100;
/// Item meaning "the other process went first".
pub const SECOND: Val = 200;

/// Shared two-phase local state for the queue/stack/set protocols.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum DrawState {
    /// About to draw from the object.
    Start,
    /// Finished, with this decision.
    Done(Val),
}

/// The two-process FIFO-queue consensus protocol of Theorem 9.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueConsensus;

impl QueueConsensus {
    /// The protocol plus the queue initialized to `[FIRST, SECOND]`.
    #[must_use]
    pub fn setup() -> (Self, FifoQueue) {
        (QueueConsensus, FifoQueue::from_items([FIRST, SECOND]))
    }
}

impl ProcessAutomaton for QueueConsensus {
    type Op = QueueOp;
    type Resp = QueueResp;
    type State = DrawState;

    fn start(&self, _pid: Pid) -> DrawState {
        DrawState::Start
    }

    fn action(&self, _pid: Pid, state: &DrawState) -> Action<QueueOp> {
        match state {
            DrawState::Start => Action::Invoke(QueueOp::Deq),
            DrawState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, pid: Pid, _state: &DrawState, resp: &QueueResp) -> DrawState {
        match resp {
            QueueResp::Item(v) if *v == FIRST => DrawState::Done(pid.as_val()),
            _ => DrawState::Done(1 - pid.as_val()),
        }
    }
}

/// The stack variant: initialized to `[SECOND, FIRST]` (FIRST on top);
/// whoever pops `FIRST` wins.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackConsensus;

impl StackConsensus {
    /// The protocol plus the stack with `FIRST` on top.
    #[must_use]
    pub fn setup() -> (Self, Stack) {
        (StackConsensus, Stack::from_items([SECOND, FIRST]))
    }
}

impl ProcessAutomaton for StackConsensus {
    type Op = StackOp;
    type Resp = StackResp;
    type State = DrawState;

    fn start(&self, _pid: Pid) -> DrawState {
        DrawState::Start
    }

    fn action(&self, _pid: Pid, state: &DrawState) -> Action<StackOp> {
        match state {
            DrawState::Start => Action::Invoke(StackOp::Pop),
            DrawState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, pid: Pid, _state: &DrawState, resp: &StackResp) -> DrawState {
        match resp {
            StackResp::Item(v) if *v == FIRST => DrawState::Done(pid.as_val()),
            _ => DrawState::Done(1 - pid.as_val()),
        }
    }
}

/// The set variant: both processes insert the same element; `insert`
/// reports whether it was new, so whoever inserts first wins. ("any
/// deterministic object with operations that return different results if
/// applied in different orders.")
#[derive(Clone, Copy, Debug, Default)]
pub struct SetConsensus;

impl SetConsensus {
    /// The protocol plus an empty set.
    #[must_use]
    pub fn setup() -> (Self, SetObj) {
        (SetConsensus, SetObj::new())
    }
}

impl ProcessAutomaton for SetConsensus {
    type Op = SetOp;
    type Resp = SetResp;
    type State = DrawState;

    fn start(&self, _pid: Pid) -> DrawState {
        DrawState::Start
    }

    fn action(&self, _pid: Pid, state: &DrawState) -> Action<SetOp> {
        match state {
            DrawState::Start => Action::Invoke(SetOp::Insert(FIRST)),
            DrawState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, pid: Pid, _state: &DrawState, resp: &SetResp) -> DrawState {
        match resp {
            SetResp::Bool(true) => DrawState::Done(pid.as_val()),
            _ => DrawState::Done(1 - pid.as_val()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::check::{check_consensus, CheckSettings};

    #[test]
    fn theorem_9_queue() {
        let (p, o) = QueueConsensus::setup();
        let report = check_consensus(&p, &o, 2, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
        assert_eq!(report.decisions_seen.len(), 2);
    }

    #[test]
    fn corollary_10_stack_variant() {
        let (p, o) = StackConsensus::setup();
        let report = check_consensus(&p, &o, 2, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
    }

    #[test]
    fn corollary_10_set_variant() {
        let (p, o) = SetConsensus::setup();
        let report = check_consensus(&p, &o, 2, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
    }

    #[test]
    fn queue_protocol_three_processes_fails() {
        // Running the *two-process* queue protocol with three processes
        // violates agreement (two losers decide different "winners"):
        // this is not Theorem 11 itself, but a sanity check that the
        // protocol does not accidentally generalize.
        let (p, o) = QueueConsensus::setup();
        let report = check_consensus(&p, &o, 3, &CheckSettings::default());
        assert!(!report.is_ok());
    }
}

/// The priority-queue variant of Corollary 10: both processes insert
/// their marker then extract the minimum; the extraction order reveals
/// who was linearized first. Initialized with `FIRST` so the first
/// extractor always wins a deterministic token.
#[derive(Clone, Copy, Debug, Default)]
pub struct PqConsensus;

impl PqConsensus {
    /// The protocol plus its priority queue holding `[FIRST, SECOND]`.
    #[must_use]
    pub fn setup() -> (Self, waitfree_objects::pqueue::PriorityQueue) {
        use waitfree_model::ObjectSpec;
        let mut pq = waitfree_objects::pqueue::PriorityQueue::new();
        pq.apply(Pid(0), &waitfree_objects::pqueue::PqOp::Insert(FIRST));
        pq.apply(Pid(0), &waitfree_objects::pqueue::PqOp::Insert(SECOND));
        (PqConsensus, pq)
    }
}

impl ProcessAutomaton for PqConsensus {
    type Op = waitfree_objects::pqueue::PqOp;
    type Resp = waitfree_objects::pqueue::PqResp;
    type State = DrawState;

    fn start(&self, _pid: Pid) -> DrawState {
        DrawState::Start
    }

    fn action(&self, _pid: Pid, state: &DrawState) -> Action<waitfree_objects::pqueue::PqOp> {
        match state {
            DrawState::Start => Action::Invoke(waitfree_objects::pqueue::PqOp::ExtractMin),
            DrawState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(
        &self,
        pid: Pid,
        _state: &DrawState,
        resp: &waitfree_objects::pqueue::PqResp,
    ) -> DrawState {
        match resp {
            waitfree_objects::pqueue::PqResp::Item(v) if *v == FIRST => {
                DrawState::Done(pid.as_val())
            }
            _ => DrawState::Done(1 - pid.as_val()),
        }
    }
}

#[cfg(test)]
mod pq_tests {
    use super::*;
    use waitfree_explorer::check::{check_consensus, CheckSettings};

    #[test]
    fn corollary_10_priority_queue_variant() {
        let (p, o) = PqConsensus::setup();
        let report = check_consensus(&p, &o, 2, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
        assert_eq!(report.decisions_seen.len(), 2);
    }

    #[test]
    fn pq_variant_fails_at_three() {
        let (p, o) = PqConsensus::setup();
        let report = check_consensus(&p, &o, 3, &CheckSettings::default());
        assert!(!report.is_ok(), "priority queues are level 2, not 3");
        assert!(report.counterexample.is_some());
    }
}
