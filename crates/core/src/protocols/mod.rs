//! The consensus protocols of §3, one module per object family.
//!
//! Each protocol is a [`ProcessAutomaton`](waitfree_model::ProcessAutomaton)
//! paired with a `setup()` constructor that also produces the correctly
//! initialized shared object, mirroring the paper's protocol descriptions
//! ("The queue is initialized by enqueuing the value *first* followed by
//! the value *second*", etc.).
//!
//! | module | theorem | object | solves |
//! |--------|---------|--------|--------|
//! | [`rmw`] | 4 | any non-trivial read-modify-write | 2-process |
//! | [`cas`] | 7 | compare-and-swap | n-process |
//! | [`queue`] | 9 | FIFO queue (also stack variant) | 2-process |
//! | [`augmented_queue`] | 12 | queue with `peek` | n-process |
//! | [`mem_move`] | 15 | memory-to-memory move | n-process |
//! | [`mem_swap`] | 16 | memory-to-memory swap | n-process |
//! | [`assignment`] | 19/20 | atomic m-register assignment | m and 2m-2 |
//! | [`broadcast`] | §3.1 | ordered broadcast | n-process |
//! | [`fetch_cons`] | §4 | fetch-and-cons | n-process |
//! | [`randomized`] | §5 (future work) | read/write registers + coins | 2-process, probabilistic termination |

pub mod assignment;
pub mod augmented_queue;
pub mod broadcast;
pub mod cas;
pub mod fetch_cons;
pub mod mem_move;
pub mod mem_swap;
pub mod queue;
pub mod randomized;
pub mod rmw;
