//! Theorem 16: memory-to-memory `swap` solves n-process consensus for
//! arbitrary n.
//!
//! > *The processes share an array of registers `p[1..n]` whose elements
//! > are initialized to 0, and a single register r, initialized to 1.
//! > Process Pᵢ executes `swap(p[i], r)`, then scans `p` and decides the
//! > first k with `p[k] = 1`. The first process to swap 1 into p wins.*
//!
//! (Footnote 3 of the paper: this *memory-to-memory* swap exchanges two
//! shared cells, unlike the read-modify-write swap of §3.2.) The single
//! token `1` moves from `r` into the first swapper's slot and then can
//! never leave: later swaps exchange zeros.

use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
use waitfree_objects::memory::{MemOp, MemoryBank, MemResp};

/// The n-process memory-to-memory-swap protocol of Theorem 16.
///
/// Cell layout: `p[i]` at cell `i` (initialized 0), `r` at cell `n`
/// (initialized 1).
#[derive(Clone, Copy, Debug)]
pub struct SwapConsensusN {
    n: usize,
}

/// Local state of [`SwapConsensusN`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SwapNState {
    /// About to `swap(p[i], r)`.
    Swap,
    /// Scanning `p[k]`.
    Scan(usize),
    /// Finished, with this decision.
    Done(Val),
}

impl SwapConsensusN {
    /// The protocol for `n` processes plus its initialized bank.
    #[must_use]
    pub fn setup(n: usize) -> (Self, MemoryBank) {
        let mut cells = vec![0; n + 1];
        cells[n] = 1;
        (SwapConsensusN { n }, MemoryBank::from_values(cells))
    }
}

impl ProcessAutomaton for SwapConsensusN {
    type Op = MemOp;
    type Resp = MemResp;
    type State = SwapNState;

    fn start(&self, _pid: Pid) -> SwapNState {
        SwapNState::Swap
    }

    fn action(&self, pid: Pid, state: &SwapNState) -> Action<MemOp> {
        match state {
            SwapNState::Swap => Action::Invoke(MemOp::Swap { a: pid.0, b: self.n }),
            SwapNState::Scan(k) => Action::Invoke(MemOp::Read(*k)),
            SwapNState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, _pid: Pid, state: &SwapNState, resp: &MemResp) -> SwapNState {
        match state {
            SwapNState::Swap => SwapNState::Scan(0),
            SwapNState::Scan(k) => {
                let MemResp::Value(v) = resp else {
                    unreachable!("read returns a value")
                };
                if *v == 1 {
                    SwapNState::Done(*k as Val)
                } else {
                    assert!(
                        *k + 1 < self.n,
                        "the token is always in some slot after my swap"
                    );
                    SwapNState::Scan(*k + 1)
                }
            }
            SwapNState::Done(_) => unreachable!("decided processes do not observe"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::check::{check_consensus, CheckSettings};
    use waitfree_explorer::random::{run_random, RandomSettings};
    use waitfree_explorer::valency;

    #[test]
    fn theorem_16_exhaustive_small_n() {
        for n in [1, 2, 3] {
            let (p, o) = SwapConsensusN::setup(n);
            let report = check_consensus(&p, &o, n, &CheckSettings::default());
            assert!(report.is_ok(), "n={n}: {:?}", report.violation);
            assert_eq!(report.decisions_seen.len(), n);
        }
    }

    #[test]
    fn theorem_16_randomized_ten_processes() {
        let (p, o) = SwapConsensusN::setup(10);
        let settings = RandomSettings { runs: 200, ..RandomSettings::default() };
        let report = run_random(&p, &o, 10, &settings);
        assert!(report.is_ok(), "{:?}", report.violation);
    }

    #[test]
    fn decision_is_fixed_by_first_swap() {
        // Once any process swaps, the configuration is univalent: the
        // token's position decides everything. Valency analysis confirms
        // the only bivalent configurations precede the first swap.
        let (p, o) = SwapConsensusN::setup(2);
        let report = valency::analyze(&p, &o, 2, 1_000_000);
        assert!(report.initially_bivalent());
        for crit in &report.critical {
            // In a critical configuration, no process has swapped yet.
            assert!(
                crit.config.procs.iter().all(|s| matches!(
                    s,
                    waitfree_explorer::config::ProcStatus::Running(SwapNState::Swap)
                )),
                "critical configurations precede the first swap"
            );
        }
    }
}
