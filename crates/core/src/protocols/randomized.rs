//! Randomized consensus from read/write registers — the direction §5
//! flags as unexplored ("the use of randomization \[1\] for wait-free
//! concurrent objects remains unexplored", citing Abrahamson's PODC 1988
//! paper).
//!
//! Theorem 2 says *deterministic* wait-free 2-process consensus from
//! registers is impossible. Randomization circumvents it in the weakest
//! possible sense: agreement and validity remain absolute, but
//! termination holds only with probability 1 against a non-adaptive
//! adversary — and this module demonstrates **both** sides:
//!
//! * under seeded random schedules the protocol always terminates and
//!   agrees (tests drive thousands of runs);
//! * an explicit adversarial schedule keeps it running forever
//!   ([`lockstep_schedule_never_decides`](self#the-adversarial-schedule)
//!   in the tests): schedule the processes in lockstep with identical
//!   coin streams and their preferences swap endlessly. The explorer's
//!   wait-freedom check would rightly reject this protocol; randomization
//!   trades the *certainty* of Theorem 2's impossibility for an
//!   expected-finite run.
//!
//! The protocol ("flip till agree"): each process publishes its
//! preference in its own register and reads the other's. Seeing `⊥` (the
//! other never started) or its own preference, it decides. Seeing a
//! disagreement, it adopts the other's preference with probability ½ and
//! retries. Preferences only ever copy inputs (validity); a decided
//! process's register is frozen, which makes the first decision sticky
//! (agreement — see the safety test exploring *all* schedules of a
//! bounded-coin variant).

use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
use waitfree_objects::register::{BankOp, RegResp, RegisterBank};

/// "Not yet written" marker.
pub const EMPTY: Val = -1;

/// A tiny deterministic PRNG (xorshift64*), embedded in the local state
/// so the automaton stays deterministic given its seed — randomness is an
/// *input*, exactly like Abrahamson's model.
fn next_coin(state: u64) -> (u64, bool) {
    let mut x = state.max(1);
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    (x, x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 63 == 1)
}

/// The two-process randomized "flip till agree" consensus protocol.
#[derive(Clone, Debug)]
pub struct FlipConsensus2 {
    /// Per-process coin-stream seeds.
    pub seeds: [u64; 2],
}

/// Local state of [`FlipConsensus2`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FlipState {
    /// About to publish the current preference.
    Publish {
        /// Current preference.
        pref: Val,
        /// Coin-stream state.
        rng: u64,
    },
    /// About to read the peer's register.
    Peek {
        /// Current preference.
        pref: Val,
        /// Coin-stream state.
        rng: u64,
    },
    /// Finished, with this decision.
    Done(Val),
}

impl FlipConsensus2 {
    /// The protocol (with the given coin seeds) plus its two registers.
    #[must_use]
    pub fn setup(seeds: [u64; 2]) -> (Self, RegisterBank) {
        (FlipConsensus2 { seeds }, RegisterBank::new(2, EMPTY))
    }
}

impl ProcessAutomaton for FlipConsensus2 {
    type Op = BankOp;
    type Resp = RegResp;
    type State = FlipState;

    fn start(&self, pid: Pid) -> FlipState {
        FlipState::Publish {
            pref: pid.as_val(),
            rng: self.seeds[pid.0],
        }
    }

    fn action(&self, pid: Pid, state: &FlipState) -> Action<BankOp> {
        match state {
            FlipState::Publish { pref, .. } => Action::Invoke(BankOp::Write(pid.0, *pref)),
            FlipState::Peek { .. } => Action::Invoke(BankOp::Read(1 - pid.0)),
            FlipState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, _pid: Pid, state: &FlipState, resp: &RegResp) -> FlipState {
        match (state, resp) {
            (FlipState::Publish { pref, rng }, RegResp::Written) => {
                FlipState::Peek { pref: *pref, rng: *rng }
            }
            (FlipState::Peek { pref, rng }, RegResp::Read(other)) => {
                if *other == EMPTY || other == pref {
                    // Peer absent or agreeing: decide. The freeze of our
                    // own register makes this sticky.
                    FlipState::Done(*pref)
                } else {
                    let (rng2, switch) = next_coin(*rng);
                    let pref2 = if switch { *other } else { *pref };
                    FlipState::Publish { pref: pref2, rng: rng2 }
                }
            }
            (s, r) => unreachable!("unexpected {r:?} in {s:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::config::Config;
    use waitfree_explorer::random::{run_random, RandomSettings};

    #[test]
    fn randomized_runs_always_terminate_and_agree() {
        // 500 random schedules × distinct seed pairs: agreement and
        // validity must hold in every run; termination within the step
        // budget in all of them (expected constant rounds).
        for trial in 0..50 {
            let (p, o) = FlipConsensus2::setup([trial * 2 + 1, trial * 3 + 2]);
            let settings = RandomSettings {
                runs: 10,
                seed: 0xABCD + trial,
                crash_per_mille: 100,
                max_steps_per_run: 10_000,
            };
            let report = run_random(&p, &o, 2, &settings);
            assert!(report.is_ok(), "trial {trial}: {:?}", report.violation);
        }
    }

    #[test]
    fn expected_rounds_are_small() {
        let mut total_steps = 0u64;
        let mut runs = 0u64;
        for trial in 0..100 {
            let (p, o) = FlipConsensus2::setup([trial + 11, trial * 7 + 5]);
            let settings = RandomSettings {
                runs: 10,
                seed: trial,
                crash_per_mille: 0,
                max_steps_per_run: 10_000,
            };
            let report = run_random(&p, &o, 2, &settings);
            assert!(report.is_ok());
            total_steps += report.total_steps;
            runs += u64::from(report.runs as u32);
        }
        let avg = total_steps as f64 / runs as f64;
        // Each round is 2 steps/process; geometric agreement: small mean.
        assert!(avg < 40.0, "expected steps per run too high: {avg}");
    }

    /// The adversarial schedule: identical coin streams + lockstep
    /// scheduling swap the preferences forever. This is the residue of
    /// Theorem 2 that randomization cannot remove.
    #[test]
    fn lockstep_schedule_never_decides() {
        let (p, o) = FlipConsensus2::setup([42, 42]); // identical coins
        let mut cfg = Config::initial(&p, o, 2);
        // Lockstep: P0 write, P1 write, P0 read, P1 read, repeat.
        // With equal coin streams both processes always flip the same
        // way: both switch (swap prefs) or both hold — disagreement is
        // invariant.
        for round in 0..200 {
            for pid in [0, 1, 0, 1] {
                let succs = cfg.step(&p, Pid(pid));
                assert!(
                    !succs.is_empty(),
                    "round {round}: {pid} decided — adversary failed"
                );
                cfg = succs.into_iter().next().unwrap();
            }
            assert_eq!(cfg.decisions().count(), 0, "round {round}");
        }
        // 200 rounds without a decision: the protocol is not wait-free.
    }

    #[test]
    fn solo_process_decides_itself() {
        let (p, o) = FlipConsensus2::setup([1, 2]);
        let mut cfg = Config::initial(&p, o, 2);
        cfg = cfg.crash(Pid(1)).unwrap();
        cfg = cfg.step(&p, Pid(0)).remove(0); // write
        cfg = cfg.step(&p, Pid(0)).remove(0); // read ⊥
        cfg = cfg.step(&p, Pid(0)).remove(0); // decide
        assert_eq!(cfg.decisions().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn first_decision_is_sticky() {
        // P0 runs alone and decides 0; P1 then runs with the opposite
        // preference and must converge to 0 regardless of its coins.
        for seed in 0..50 {
            let (p, o) = FlipConsensus2::setup([7, seed]);
            let mut cfg = Config::initial(&p, o, 2);
            for _ in 0..3 {
                cfg = cfg.step(&p, Pid(0)).remove(0);
            }
            assert_eq!(cfg.decisions().collect::<Vec<_>>(), vec![0]);
            // Now run P1 to completion (bounded by coin luck; generous cap).
            let mut steps = 0;
            while cfg.procs[1].is_running() {
                cfg = cfg.step(&p, Pid(1)).remove(0);
                steps += 1;
                assert!(steps < 10_000, "seed {seed}: P1 failed to converge");
            }
            let decisions: Vec<Val> = cfg.decisions().collect();
            assert_eq!(decisions, vec![0, 0], "seed {seed}");
        }
    }
}
