//! Fetch-and-cons solves n-process consensus — the easy direction of the
//! universality equivalence in §4 (the hard direction, consensus ⇒
//! fetch-and-cons, is Figure 4-5, implemented in
//! [`crate::universal::consensus_cons`]).
//!
//! Each process conses its identifier; the process whose item ends up
//! *last* in the returned suffix chain was first, and wins. Concretely: if
//! my `fetch-and-cons` returns the empty suffix I was first; otherwise the
//! last element of my suffix is the first item ever consed.

use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
use waitfree_objects::list::{ConsList, ListOp, ListResp};

/// The n-process fetch-and-cons consensus protocol.
#[derive(Clone, Copy, Debug, Default)]
pub struct FetchConsConsensus;

/// Local state of [`FetchConsConsensus`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum FetchConsState {
    /// About to cons own identifier.
    Cons,
    /// Finished, with this decision.
    Done(Val),
}

impl FetchConsConsensus {
    /// The protocol plus an empty list.
    #[must_use]
    pub fn setup() -> (Self, ConsList) {
        (FetchConsConsensus, ConsList::new())
    }
}

impl ProcessAutomaton for FetchConsConsensus {
    type Op = ListOp;
    type Resp = ListResp;
    type State = FetchConsState;

    fn start(&self, _pid: Pid) -> FetchConsState {
        FetchConsState::Cons
    }

    fn action(&self, pid: Pid, state: &FetchConsState) -> Action<ListOp> {
        match state {
            FetchConsState::Cons => Action::Invoke(ListOp::FetchAndCons(pid.as_val())),
            FetchConsState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, pid: Pid, _state: &FetchConsState, resp: &ListResp) -> FetchConsState {
        let ListResp::Items(suffix) = resp else {
            unreachable!("fetch-and-cons returns the suffix")
        };
        match suffix.last() {
            None => FetchConsState::Done(pid.as_val()), // I was first
            Some(first_ever) => FetchConsState::Done(*first_ever),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::check::{check_consensus, CheckSettings};
    use waitfree_explorer::random::{run_random, RandomSettings};

    #[test]
    fn fetch_and_cons_solves_consensus_exhaustively() {
        for n in [2, 3, 4] {
            let (p, o) = FetchConsConsensus::setup();
            let report = check_consensus(&p, &o, n, &CheckSettings::default());
            assert!(report.is_ok(), "n={n}: {:?}", report.violation);
            assert_eq!(report.decisions_seen.len(), n);
        }
    }

    #[test]
    fn fetch_and_cons_randomized_twelve_processes() {
        let (p, o) = FetchConsConsensus::setup();
        let settings = RandomSettings { runs: 200, ..RandomSettings::default() };
        let report = run_random(&p, &o, 12, &settings);
        assert!(report.is_ok(), "{:?}", report.violation);
    }
}
