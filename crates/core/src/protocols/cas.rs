//! Theorem 7: compare-and-swap solves n-process consensus for arbitrary n.
//!
//! > *The register is initialized to `⊥`, and process Pᵢ executes
//! > `old := compare-and-swap(r, ⊥, prefer); if old = ⊥ then
//! > decide(prefer) else decide(old)`.*
//!
//! (The paper writes the initial value as `1` and the preference as a
//! boolean; we use `⊥ = -1` and the process id, which is the same protocol
//! for the election domain.) Corollary 8: compare-and-swap therefore has no
//! wait-free implementation from any combination of read, write,
//! test-and-set, swap, or fetch-and-add.

use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};

/// Sentinel "unclaimed" value; process ids are non-negative.
pub const UNCLAIMED: Val = -1;

/// The n-process compare-and-swap consensus protocol of Theorem 7.
#[derive(Clone, Copy, Debug, Default)]
pub struct CasConsensus;

/// Local state of [`CasConsensus`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CasState {
    /// About to attempt the compare-and-swap.
    Start,
    /// Finished, with this decision.
    Done(Val),
}

impl CasConsensus {
    /// The protocol plus its correctly initialized register.
    #[must_use]
    pub fn setup() -> (Self, RmwRegister) {
        (CasConsensus, RmwRegister::new(UNCLAIMED))
    }
}

impl ProcessAutomaton for CasConsensus {
    type Op = RmwOp;
    type Resp = Val;
    type State = CasState;

    fn start(&self, _pid: Pid) -> CasState {
        CasState::Start
    }

    fn action(&self, pid: Pid, state: &CasState) -> Action<RmwOp> {
        match state {
            CasState::Start => {
                Action::Invoke(RmwOp(RmwFn::CompareAndSwap(UNCLAIMED, pid.as_val())))
            }
            CasState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, pid: Pid, _state: &CasState, resp: &Val) -> CasState {
        if *resp == UNCLAIMED {
            CasState::Done(pid.as_val()) // my CAS installed my preference
        } else {
            CasState::Done(*resp) // someone beat me; adopt the winner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::check::{check_consensus, CheckSettings};
    use waitfree_explorer::random::{run_random, RandomSettings};

    #[test]
    fn theorem_7_exhaustive_two_and_three_processes() {
        for n in [2, 3] {
            let (p, o) = CasConsensus::setup();
            let report = check_consensus(&p, &o, n, &CheckSettings::default());
            assert!(report.is_ok(), "n={n}: {:?}", report.violation);
            assert_eq!(
                report.decisions_seen.len(),
                n,
                "every process can win some schedule"
            );
        }
    }

    #[test]
    fn theorem_7_exhaustive_four_processes() {
        let (p, o) = CasConsensus::setup();
        let report = check_consensus(&p, &o, 4, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
    }

    #[test]
    fn theorem_7_randomized_sixteen_processes() {
        let (p, o) = CasConsensus::setup();
        let settings = RandomSettings { runs: 300, ..RandomSettings::default() };
        let report = run_random(&p, &o, 16, &settings);
        assert!(report.is_ok(), "{:?}", report.violation);
    }

    #[test]
    fn each_operation_is_one_shot() {
        // Strong wait-freedom: exactly one shared-memory operation per
        // process, so the longest run with n processes is 2n steps
        // (operation + decide each).
        let (p, o) = CasConsensus::setup();
        let report = check_consensus(&p, &o, 3, &CheckSettings { crashes: false, ..CheckSettings::default() });
        assert!(report.is_ok());
        assert_eq!(report.max_depth, 6);
    }
}
