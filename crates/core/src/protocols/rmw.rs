//! Theorem 4: two-process consensus from any non-trivial read-modify-write
//! operation.
//!
//! > *Since `f` is not the identity, there exists a value `v` such that
//! > `v ≠ f(v)`. Let P and Q be the two processes, and let the shared
//! > register `r` be initialized to `v` … The protocol chooses 0 if P's
//! > operation is linearized first, and 1 otherwise.*
//!
//! Each process performs one `RMW(r, f)`; whoever observes the initial
//! value `v` went first and wins.

use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};

/// The two-process consensus protocol of Theorem 4, parameterized by the
/// non-trivial function `f` and a witness value `v` with `f(v) ≠ v`.
#[derive(Clone, Debug)]
pub struct RmwConsensus {
    f: RmwFn,
    witness: Val,
}

/// Local state of [`RmwConsensus`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RmwState {
    /// About to perform the RMW.
    Start,
    /// Finished, with this decision.
    Done(Val),
}

impl RmwConsensus {
    /// Build the protocol for a non-trivial `f`, choosing the smallest
    /// non-negative witness `v` with `f(v) ≠ v`, and the register
    /// initialized to it.
    ///
    /// # Panics
    ///
    /// Panics if `f` is trivial on `0..=64` (no witness found) — Theorem 4
    /// only applies to non-trivial operations.
    #[must_use]
    pub fn setup(f: RmwFn) -> (Self, RmwRegister) {
        let witness = (0..=64)
            .find(|&v| f.eval(v) != v)
            .expect("function is trivial: Theorem 4 does not apply");
        (RmwConsensus { f, witness }, RmwRegister::new(witness))
    }

    /// The test-and-set instance.
    #[must_use]
    pub fn test_and_set() -> (Self, RmwRegister) {
        RmwConsensus::setup(RmwFn::TestAndSet)
    }

    /// The swap instance (swapping in `2`, with witness `0`).
    #[must_use]
    pub fn swap() -> (Self, RmwRegister) {
        RmwConsensus::setup(RmwFn::Swap(2))
    }

    /// The fetch-and-add instance.
    #[must_use]
    pub fn fetch_and_add() -> (Self, RmwRegister) {
        RmwConsensus::setup(RmwFn::FetchAndAdd(1))
    }
}

impl ProcessAutomaton for RmwConsensus {
    type Op = RmwOp;
    type Resp = Val;
    type State = RmwState;

    fn start(&self, _pid: Pid) -> RmwState {
        RmwState::Start
    }

    fn action(&self, _pid: Pid, state: &RmwState) -> Action<RmwOp> {
        match state {
            RmwState::Start => Action::Invoke(RmwOp(self.f)),
            RmwState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, pid: Pid, _state: &RmwState, resp: &Val) -> RmwState {
        // Observing the witness value means my RMW was linearized first.
        if *resp == self.witness {
            RmwState::Done(pid.as_val())
        } else {
            RmwState::Done(1 - pid.as_val())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::check::{check_consensus, CheckSettings};
    use waitfree_explorer::valency;

    #[test]
    fn theorem_4_test_and_set() {
        let (p, o) = RmwConsensus::test_and_set();
        let report = check_consensus(&p, &o, 2, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
        assert_eq!(report.decisions_seen.len(), 2, "either process can win");
    }

    #[test]
    fn theorem_4_swap() {
        let (p, o) = RmwConsensus::swap();
        let report = check_consensus(&p, &o, 2, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
    }

    #[test]
    fn theorem_4_fetch_and_add() {
        let (p, o) = RmwConsensus::fetch_and_add();
        let report = check_consensus(&p, &o, 2, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
    }

    #[test]
    fn theorem_4_fetch_and_or_and_max() {
        for f in [RmwFn::FetchAndOr(1), RmwFn::FetchAndMax(1), RmwFn::ShiftIn(1)] {
            let (p, o) = RmwConsensus::setup(f);
            let report = check_consensus(&p, &o, 2, &CheckSettings::default());
            assert!(report.is_ok(), "{f:?}: {:?}", report.violation);
        }
    }

    #[test]
    #[should_panic(expected = "trivial")]
    fn trivial_function_rejected() {
        let _ = RmwConsensus::setup(RmwFn::Identity);
    }

    #[test]
    fn protocol_is_initially_bivalent_with_critical_state() {
        // The structure the impossibility proofs rely on: a correct
        // 2-process protocol starts bivalent and passes through a critical
        // configuration.
        let (p, o) = RmwConsensus::test_and_set();
        let report = valency::analyze(&p, &o, 2, 100_000);
        assert!(report.initially_bivalent());
        assert!(!report.critical.is_empty());
    }
}
