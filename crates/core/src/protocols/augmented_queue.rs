//! Theorem 12: a queue augmented with `peek` solves n-process consensus
//! for arbitrary n.
//!
//! > *The queue is initialized to empty, and each process enqueues its own
//! > identifier … `enq(q, i); decide(peek(q))`. The process whose enq is
//! > ordered first establishes the decision value.*
//!
//! Corollaries 13 and 14: the augmented queue therefore has no wait-free
//! implementation from read/write/test-and-set/swap/fetch-and-add
//! registers, nor from plain FIFO queues — which is why Herlihy's own
//! earlier queue built from fetch-and-add and swap (\[10\]) cannot be
//! extended with a wait-free `peek`.

use waitfree_model::{Action, Pid, ProcessAutomaton};
use waitfree_objects::queue::{AugQueueOp, AugmentedQueue, QueueResp};

/// The n-process augmented-queue consensus protocol of Theorem 12.
#[derive(Clone, Copy, Debug, Default)]
pub struct AugQueueConsensus;

/// Local state of [`AugQueueConsensus`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum AugQueueState {
    /// About to enqueue own identifier.
    Enqueue,
    /// About to peek at the front.
    Peek,
    /// Finished, with this decision.
    Done(waitfree_model::Val),
}

impl AugQueueConsensus {
    /// The protocol plus an empty augmented queue.
    #[must_use]
    pub fn setup() -> (Self, AugmentedQueue) {
        (AugQueueConsensus, AugmentedQueue::new())
    }
}

impl ProcessAutomaton for AugQueueConsensus {
    type Op = AugQueueOp;
    type Resp = QueueResp;
    type State = AugQueueState;

    fn start(&self, _pid: Pid) -> AugQueueState {
        AugQueueState::Enqueue
    }

    fn action(&self, pid: Pid, state: &AugQueueState) -> Action<AugQueueOp> {
        match state {
            AugQueueState::Enqueue => Action::Invoke(AugQueueOp::Enq(pid.as_val())),
            AugQueueState::Peek => Action::Invoke(AugQueueOp::Peek),
            AugQueueState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, _pid: Pid, state: &AugQueueState, resp: &QueueResp) -> AugQueueState {
        match (state, resp) {
            (AugQueueState::Enqueue, _) => AugQueueState::Peek,
            (AugQueueState::Peek, QueueResp::Item(v)) => AugQueueState::Done(*v),
            (AugQueueState::Peek, other) => {
                unreachable!("peek after own enq cannot see {other:?}")
            }
            (AugQueueState::Done(_), _) => unreachable!("decided processes do not observe"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::check::{check_consensus, CheckSettings};
    use waitfree_explorer::random::{run_random, RandomSettings};

    #[test]
    fn theorem_12_exhaustive_small_n() {
        for n in [2, 3] {
            let (p, o) = AugQueueConsensus::setup();
            let report = check_consensus(&p, &o, n, &CheckSettings::default());
            assert!(report.is_ok(), "n={n}: {:?}", report.violation);
            assert_eq!(report.decisions_seen.len(), n);
        }
    }

    #[test]
    fn theorem_12_randomized_twelve_processes() {
        let (p, o) = AugQueueConsensus::setup();
        let settings = RandomSettings { runs: 300, ..RandomSettings::default() };
        let report = run_random(&p, &o, 12, &settings);
        assert!(report.is_ok(), "{:?}", report.violation);
    }

    #[test]
    fn first_enqueuer_wins_deterministically() {
        // Sequential run: P1 enqueues before P0 — both must decide 1.
        use waitfree_explorer::config::Config;
        let (p, o) = AugQueueConsensus::setup();
        let mut cfg = Config::initial(&p, o, 2);
        for pid in [1, 0, 1, 0, 1, 0] {
            let steps = cfg.step(&p, Pid(pid));
            if !steps.is_empty() {
                cfg = steps.into_iter().next().unwrap();
            }
        }
        let decisions: Vec<_> = cfg.decisions().collect();
        assert_eq!(decisions, vec![1, 1]);
    }
}
