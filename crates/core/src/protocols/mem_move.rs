//! Theorem 15: memory-to-memory `move` solves n-process consensus for
//! arbitrary n — even though `move` returns no value.
//!
//! Two-process form (`move(a, b)` copies cell `a` into cell `b`):
//!
//! > *Let r1 and r2 be respectively initialized to 1 and 2.
//! > `Decide_1: r2 := 1; decide(r1)` and
//! > `Decide_2: move(r2, r1); decide(r1)`. The protocol decides 2 if P2's
//! > move is linearized before P1's write, and 1 otherwise.*
//!
//! General form: process `i` first wins "its" round by moving `r[i,1]`
//! into `r[i,2]`, then attacks every higher round `j` by overwriting
//! `r[j,1]` with `j-1`, and finally scans rounds from the top down,
//! deciding the highest round whose owner won it.

use waitfree_model::{Action, Pid, ProcessAutomaton, Val};
use waitfree_objects::memory::{MemOp, MemoryBank, MemResp};

/// The two-process memory-to-memory-move protocol of Theorem 15.
///
/// Process 0 plays the writer (`Decide_1`), process 1 the mover
/// (`Decide_2`). Cell 0 is `r1`, cell 1 is `r2`.
#[derive(Clone, Copy, Debug, Default)]
pub struct MoveConsensus2;

/// Local state of [`MoveConsensus2`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Move2State {
    /// About to perform the write (P0) or move (P1).
    Act,
    /// About to read `r1`.
    ReadBack,
    /// Finished, with this decision.
    Done(Val),
}

impl MoveConsensus2 {
    /// The protocol plus its bank: `r1 = 0` (P0's id), `r2 = 1` (P1's id).
    #[must_use]
    pub fn setup() -> (Self, MemoryBank) {
        (MoveConsensus2, MemoryBank::from_values(vec![0, 1]))
    }
}

impl ProcessAutomaton for MoveConsensus2 {
    type Op = MemOp;
    type Resp = MemResp;
    type State = Move2State;

    fn start(&self, _pid: Pid) -> Move2State {
        Move2State::Act
    }

    fn action(&self, pid: Pid, state: &Move2State) -> Action<MemOp> {
        match state {
            Move2State::Act => {
                if pid == Pid(0) {
                    Action::Invoke(MemOp::Write(1, 0)) // r2 := my id
                } else {
                    Action::Invoke(MemOp::Move { src: 1, dst: 0 }) // r1 := r2
                }
            }
            Move2State::ReadBack => Action::Invoke(MemOp::Read(0)),
            Move2State::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, _pid: Pid, state: &Move2State, resp: &MemResp) -> Move2State {
        match (state, resp) {
            (Move2State::Act, _) => Move2State::ReadBack,
            (Move2State::ReadBack, MemResp::Value(v)) => Move2State::Done(*v),
            (s, r) => unreachable!("unexpected {r:?} in {s:?}"),
        }
    }
}

/// The general n-process protocol of Theorem 15.
///
/// Cell layout: `r[i,1]` at `2i` (initialized to `i+1`) and `r[i,2]` at
/// `2i+1` (initialized to `i`), using 1-based values so that "`r[i,2]`
/// holds `i+1`" marks process `i` (0-based) as the winner of round `i`.
#[derive(Clone, Copy, Debug)]
pub struct MoveConsensusN {
    n: usize,
}

/// Local state of [`MoveConsensusN`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum MoveNState {
    /// About to move `r[i,1]` into `r[i,2]` (win own round).
    MoveOwn,
    /// Attacking round `j` by writing `r[j,1] := j` (the 1-based `j-1`).
    Attack(usize),
    /// Scanning rounds from the top: about to read `r[j,2]`.
    Scan(usize),
    /// Finished, with this decision.
    Done(Val),
}

impl MoveConsensusN {
    /// The protocol for `n` processes plus its initialized bank.
    #[must_use]
    pub fn setup(n: usize) -> (Self, MemoryBank) {
        let mut cells = Vec::with_capacity(2 * n);
        for i in 0..n {
            cells.push(i as Val + 1); // r[i,1] = i+1
            cells.push(i as Val); // r[i,2] = i
        }
        (MoveConsensusN { n }, MemoryBank::from_values(cells))
    }

    fn r1(i: usize) -> usize {
        2 * i
    }

    fn r2(i: usize) -> usize {
        2 * i + 1
    }
}

impl ProcessAutomaton for MoveConsensusN {
    type Op = MemOp;
    type Resp = MemResp;
    type State = MoveNState;

    fn start(&self, _pid: Pid) -> MoveNState {
        MoveNState::MoveOwn
    }

    fn action(&self, pid: Pid, state: &MoveNState) -> Action<MemOp> {
        match state {
            MoveNState::MoveOwn => Action::Invoke(MemOp::Move {
                src: Self::r1(pid.0),
                dst: Self::r2(pid.0),
            }),
            MoveNState::Attack(j) => Action::Invoke(MemOp::Write(Self::r1(*j), *j as Val)),
            MoveNState::Scan(j) => Action::Invoke(MemOp::Read(Self::r2(*j))),
            MoveNState::Done(v) => Action::Decide(*v),
        }
    }

    fn observe(&self, pid: Pid, state: &MoveNState, resp: &MemResp) -> MoveNState {
        let after_attacks = |j: usize| {
            if j + 1 < self.n {
                MoveNState::Attack(j + 1)
            } else {
                MoveNState::Scan(self.n - 1)
            }
        };
        match state {
            MoveNState::MoveOwn => after_attacks(pid.0),
            MoveNState::Attack(j) => after_attacks(*j),
            MoveNState::Scan(j) => {
                let MemResp::Value(v) = resp else {
                    unreachable!("read returns a value")
                };
                if *v == *j as Val + 1 {
                    // Round j was won by its owner.
                    MoveNState::Done(*j as Val)
                } else {
                    assert!(*j > 0, "some round always has a winner");
                    MoveNState::Scan(*j - 1)
                }
            }
            MoveNState::Done(_) => unreachable!("decided processes do not observe"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_explorer::check::{check_consensus, CheckSettings};
    use waitfree_explorer::random::{run_random, RandomSettings};

    #[test]
    fn theorem_15_two_process_form() {
        let (p, o) = MoveConsensus2::setup();
        let report = check_consensus(&p, &o, 2, &CheckSettings::default());
        assert!(report.is_ok(), "{:?}", report.violation);
        assert_eq!(report.decisions_seen.len(), 2);
    }

    #[test]
    fn theorem_15_general_form_exhaustive() {
        for n in [1, 2, 3] {
            let (p, o) = MoveConsensusN::setup(n);
            let report = check_consensus(&p, &o, n, &CheckSettings::default());
            assert!(report.is_ok(), "n={n}: {:?}", report.violation);
        }
    }

    #[test]
    fn theorem_15_general_form_randomized() {
        for n in [5, 8] {
            let (p, o) = MoveConsensusN::setup(n);
            let settings = RandomSettings { runs: 200, ..RandomSettings::default() };
            let report = run_random(&p, &o, n, &settings);
            assert!(report.is_ok(), "n={n}: {:?}", report.violation);
        }
    }
}
