//! # waitfree-core
//!
//! The primary contribution of Herlihy's *"Impossibility and Universality
//! Results for Wait-Free Synchronization"* (PODC 1988), as a library:
//!
//! * [`protocols`] — every consensus protocol the paper exhibits
//!   (Theorems 4, 7, 9, 12, 15, 16, 19, 20), each as a
//!   [`ProcessAutomaton`](waitfree_model::ProcessAutomaton) the explorer
//!   can verify over all schedules;
//! * [`interfering`] — the commute-or-overwrite analysis of Theorem 6 that
//!   caps test-and-set, swap and fetch-and-add at consensus number 2;
//! * [`hierarchy`] — Figure 1-1 as data plus machinery to re-validate each
//!   row mechanically;
//! * [`universal`] — the universality results of §4: the log-based
//!   universal construction over fetch-and-cons (§4.1, with and without
//!   checkpoint truncation), fetch-and-cons from rounds of consensus
//!   (Figure 4-5), and fetch-and-cons from memory-to-memory swap
//!   (Figures 4-3/4-4).
//!
//! # Example
//!
//! Verify Theorem 7 — compare-and-swap solves n-process consensus — for
//! n = 3, over every schedule including crashes:
//!
//! ```
//! use waitfree_core::protocols::cas::CasConsensus;
//! use waitfree_explorer::check::{check_consensus, CheckSettings};
//!
//! let (protocol, object) = CasConsensus::setup();
//! let report = check_consensus(&protocol, &object, 3, &CheckSettings::default());
//! assert!(report.is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchy;
pub mod interfering;
pub mod protocols;
pub mod universal;
