//! Theorem 6's interference analysis.
//!
//! A family `F` of read-modify-write functions is *interfering* if for all
//! values `v` and all `f, g ∈ F` either
//!
//! * `f` and `g` **commute**: `f(g(v)) = g(f(v))`, or
//! * one **overwrites** the other: `f(g(v)) = f(v)` or `g(f(v)) = g(v)`.
//!
//! Theorem 6: no combination of RMW operations drawn from an interfering
//! family solves three-process consensus. Test-and-set, swap and
//! fetch-and-add all generate interfering families (so the classical
//! primitives top out at consensus number 2), while compare-and-swap does
//! not — which is exactly how it escapes to level ∞.
//!
//! This module checks the condition mechanically over a sampled value
//! domain. Because the functions in [`RmwFn`] are simple arithmetic on
//! `i64`, a modest symmetric domain is adequate to witness
//! non-interference, and interference verified on the sampled domain is
//! backed by the algebraic argument in each test.

use waitfree_objects::rmw::RmwFn;
use waitfree_model::Val;

/// How an ordered pair of functions relates on a domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairRelation {
    /// `f(g(v)) = g(f(v))` for all sampled `v`.
    Commute,
    /// `f(g(v)) = f(v)` for all sampled `v` (`f` overwrites `g`).
    FirstOverwritesSecond,
    /// `g(f(v)) = g(v)` for all sampled `v` (`g` overwrites `f`).
    SecondOverwritesFirst,
    /// Neither commutation nor overwriting holds.
    Interferes,
}

impl PairRelation {
    /// Whether this relation satisfies the interfering-family condition.
    #[must_use]
    pub fn is_benign(self) -> bool {
        self != PairRelation::Interferes
    }
}

/// Whether `f` and `g` commute on every value in `domain`.
#[must_use]
pub fn commutes(f: RmwFn, g: RmwFn, domain: &[Val]) -> bool {
    domain.iter().all(|&v| f.eval(g.eval(v)) == g.eval(f.eval(v)))
}

/// Whether `f` overwrites `g` on every value in `domain`:
/// `f(g(v)) = f(v)`.
#[must_use]
pub fn overwrites(f: RmwFn, g: RmwFn, domain: &[Val]) -> bool {
    domain.iter().all(|&v| f.eval(g.eval(v)) == f.eval(v))
}

/// Classify an ordered pair over `domain`.
#[must_use]
pub fn classify_pair(f: RmwFn, g: RmwFn, domain: &[Val]) -> PairRelation {
    if commutes(f, g, domain) {
        PairRelation::Commute
    } else if overwrites(f, g, domain) {
        PairRelation::FirstOverwritesSecond
    } else if overwrites(g, f, domain) {
        PairRelation::SecondOverwritesFirst
    } else {
        PairRelation::Interferes
    }
}

/// A full interference report for a function family.
#[derive(Clone, Debug)]
pub struct InterferenceReport {
    /// The family that was analyzed.
    pub family: Vec<RmwFn>,
    /// Relation of every unordered pair `(i, j)`, `i ≤ j`, by index.
    pub pairs: Vec<(usize, usize, PairRelation)>,
    /// Whether the family is interfering (every pair benign).
    pub interfering: bool,
}

/// Analyze a family over `domain`. An interfering family is capped at
/// consensus number 2 by Theorem 6; a non-interfering pair is the
/// signature of potential level-∞ power (compare-and-swap).
#[must_use]
pub fn analyze_family(family: &[RmwFn], domain: &[Val]) -> InterferenceReport {
    let mut pairs = Vec::new();
    let mut interfering = true;
    for i in 0..family.len() {
        for j in i..family.len() {
            let rel = classify_pair(family[i], family[j], domain);
            interfering &= rel.is_benign();
            pairs.push((i, j, rel));
        }
    }
    InterferenceReport {
        family: family.to_vec(),
        pairs,
        interfering,
    }
}

/// The standard sampling domain: a symmetric range plus the sentinels the
/// protocols use.
#[must_use]
pub fn standard_domain() -> Vec<Val> {
    let mut d: Vec<Val> = (-8..=8).collect();
    d.extend([-1, 100, 200]);
    d.sort_unstable();
    d.dedup();
    d
}

/// The classical primitive family of §3.2: reads, test-and-set, a swap
/// and a fetch-and-add. Interfering, hence (Theorem 6) consensus number 2.
#[must_use]
pub fn classical_family() -> Vec<RmwFn> {
    vec![
        RmwFn::Identity,
        RmwFn::TestAndSet,
        RmwFn::Swap(2),
        RmwFn::Swap(7),
        RmwFn::FetchAndAdd(1),
        RmwFn::FetchAndAdd(5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> Vec<Val> {
        standard_domain()
    }

    #[test]
    fn fetch_and_add_commutes_with_itself() {
        assert_eq!(
            classify_pair(RmwFn::FetchAndAdd(3), RmwFn::FetchAndAdd(5), &d()),
            PairRelation::Commute
        );
    }

    #[test]
    fn swaps_overwrite_each_other() {
        let rel = classify_pair(RmwFn::Swap(2), RmwFn::Swap(9), &d());
        assert!(rel.is_benign());
        assert_ne!(rel, PairRelation::Commute);
    }

    #[test]
    fn test_and_set_overwrites_itself() {
        let rel = classify_pair(RmwFn::TestAndSet, RmwFn::TestAndSet, &d());
        assert!(rel.is_benign());
    }

    #[test]
    fn identity_commutes_with_everything() {
        for f in classical_family() {
            assert_eq!(
                classify_pair(RmwFn::Identity, f, &d()),
                PairRelation::Commute,
                "{f:?}"
            );
        }
    }

    #[test]
    fn theorem_6_classical_family_is_interfering() {
        let report = analyze_family(&classical_family(), &d());
        assert!(report.interfering, "{:?}", report.pairs);
    }

    #[test]
    fn swap_vs_fetch_and_add_is_benign() {
        // swap ∘ faa: swap overwrites faa.
        let rel = classify_pair(RmwFn::Swap(2), RmwFn::FetchAndAdd(1), &d());
        assert_eq!(rel, PairRelation::FirstOverwritesSecond);
    }

    #[test]
    fn compare_and_swap_family_is_not_interfering() {
        // CAS(0,1) vs CAS(1,2): cas1(cas2(1)) = cas1(2) = 2,
        // cas2(cas1(1)) ... witness non-interference mechanically.
        let family = vec![RmwFn::CompareAndSwap(0, 1), RmwFn::CompareAndSwap(1, 2)];
        let report = analyze_family(&family, &d());
        assert!(!report.interfering);
    }

    #[test]
    fn cas_against_classical_family_is_not_interfering() {
        let mut family = classical_family();
        family.push(RmwFn::CompareAndSwap(0, 1));
        let report = analyze_family(&family, &d());
        assert!(!report.interfering);
    }

    #[test]
    fn shift_in_pair_is_not_interfering() {
        // The artificial non-commuting, non-overwriting pair: 2v and 2v+1.
        let family = vec![RmwFn::ShiftIn(0), RmwFn::ShiftIn(1)];
        let report = analyze_family(&family, &d());
        assert!(!report.interfering);
    }

    #[test]
    fn fetch_and_max_family_is_interfering() {
        // max(a, max(b, v)) = max(b, max(a, v)): commutes.
        let family = vec![RmwFn::FetchAndMax(3), RmwFn::FetchAndMax(7)];
        let report = analyze_family(&family, &d());
        assert!(report.interfering);
    }
}
