//! Lock-based baselines.
//!
//! The paper's opening argument against critical sections — "if a faulty
//! process halts in a critical section, non-faulty processes will also be
//! unable to progress" — is qualitative; these baselines give the
//! *quantitative* comparison: the same sequential objects guarded by a
//! `parking_lot` mutex, for the `universal_throughput` benchmarks.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Acquire ignoring poison: these baselines guard plain data, and a
/// panicking workload thread must not cascade into every later lock.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A queue guarded by a mutex.
#[derive(Debug, Default)]
pub struct LockedQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> LockedQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        LockedQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Enqueue a value.
    pub fn enq(&self, value: T) {
        lock(&self.inner).push_back(value);
    }

    /// Dequeue the oldest value.
    pub fn deq(&self) -> Option<T> {
        lock(&self.inner).pop_front()
    }

    /// Number of queued items.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        lock(&self.inner).is_empty()
    }
}

/// A stack guarded by a mutex.
#[derive(Debug, Default)]
pub struct LockedStack<T> {
    inner: Mutex<Vec<T>>,
}

impl<T> LockedStack<T> {
    /// An empty stack.
    #[must_use]
    pub fn new() -> Self {
        LockedStack {
            inner: Mutex::new(Vec::new()),
        }
    }

    /// Push a value.
    pub fn push(&self, value: T) {
        lock(&self.inner).push(value);
    }

    /// Pop the most recent value.
    pub fn pop(&self) -> Option<T> {
        lock(&self.inner).pop()
    }
}

/// A counter guarded by a mutex.
#[derive(Debug, Default)]
pub struct LockedCounter {
    inner: Mutex<i64>,
}

impl LockedCounter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        LockedCounter::default()
    }

    /// Add `delta`, returning the old value.
    pub fn fetch_add(&self, delta: i64) -> i64 {
        let mut guard = lock(&self.inner);
        let old = *guard;
        *guard += delta;
        old
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        *lock(&self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use waitfree_sched::thread;

    #[test]
    fn queue_fifo() {
        let q = LockedQueue::new();
        q.enq(1);
        q.enq(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.deq(), Some(1));
        assert_eq!(q.deq(), Some(2));
        assert_eq!(q.deq(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn stack_lifo() {
        let s = LockedStack::new();
        s.push(1);
        s.push(2);
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn counter_exact_under_contention() {
        let c = Arc::new(LockedCounter::new());
        let joins: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.fetch_add(1);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
