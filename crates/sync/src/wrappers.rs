//! Typed wait-free objects instantiating the universal construction —
//! "a wait-free implementation of any sequential object" (§4), made
//! concrete: queue, stack, counter and register handles over
//! [`WfUniversal`] instances.
//!
//! [`WfUniversal`]: crate::universal::WfUniversal
//!
//! The point of these wrappers is the corollary users actually care
//! about: none of these objects can be built wait-free from reads and
//! writes alone (Corollaries 5 and 10), but all of them fall out of *one*
//! construction given a consensus primitive.
//!
//! `create` builds [`WfUniversal::new`], so every wrapper rides the
//! batch-combining decide path by default: under contention one winning
//! consensus decide threads every currently-pending announced operation
//! (see `universal`'s module docs). The `sched`-tier campaigns in
//! `tests/sched_linearizability.rs` explore ≥ 1000 random-walk and
//! ≥ 1000 PCT schedules over each wrapper on exactly this path.
//!
//! Each wrapper also has a dynamic-membership front-end (`WfQueue`,
//! `WfStack`, `WfCounter`, `WfRegister`): a cloneable object whose
//! `register()` hands out handles to arriving clients and whose handles
//! `retire()` on departure, riding `universal`'s slot registry.

use waitfree_model::Val;
use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};
use waitfree_objects::register::{RegOp, RegResp, RwRegister};
use waitfree_objects::stack::{Stack, StackOp, StackResp};

use crate::universal::{WfHandle, WfUniversal};

/// Define a dynamic-membership front-end over one typed wrapper: a
/// cloneable object with `register()` → handle, plus `retire()` /
/// `is_retired()` / `tid()` on the handle itself.
macro_rules! dynamic_front_end {
    ($(#[$doc:meta])* $front:ident, $handle:ident, $spec:ty) => {
        $(#[$doc])*
        #[derive(Clone, Debug)]
        pub struct $front(WfUniversal<$spec>);

        impl $front {
            /// Register an arriving client: claim (or recycle) a
            /// registry slot and return its handle with a fresh
            /// `max_ops` budget.
            #[must_use]
            pub fn register(&self) -> $handle {
                $handle(self.0.register())
            }

            /// Currently registered handles.
            #[must_use]
            pub fn active_handles(&self) -> usize {
                self.0.active_handles()
            }

            /// One past the highest registry slot ever claimed —
            /// bounded by peak active handles, not total arrivals.
            #[must_use]
            pub fn registry_slots(&self) -> usize {
                self.0.registry_slots()
            }
        }

        impl $handle {
            /// Depart: mark this handle retired so its registry slot
            /// can be recycled. Idempotent.
            pub fn retire(&mut self) {
                self.0.retire();
            }

            /// Whether [`Self::retire`] was called.
            #[must_use]
            pub fn is_retired(&self) -> bool {
                self.0.is_retired()
            }

            /// This handle's registry slot index.
            #[must_use]
            pub fn tid(&self) -> usize {
                self.0.tid()
            }
        }
    };
}

dynamic_front_end!(
    /// A wait-free FIFO queue with dynamic membership: clients
    /// [`register`](WfQueue::register) to obtain a [`WfQueueHandle`]
    /// and retire it on departure.
    WfQueue,
    WfQueueHandle,
    FifoQueue
);

impl WfQueue {
    /// Create a dynamic wait-free queue; each registration may perform
    /// up to `max_ops` operations.
    #[must_use]
    pub fn new_dynamic(max_ops: usize) -> Self {
        WfQueue(WfUniversal::new_dynamic(FifoQueue::new(), max_ops))
    }

    /// Like [`Self::new_dynamic`], with checkpointed log truncation: a
    /// checkpoint is decided roughly every `every` log positions and
    /// segments behind every active handle's replay frontier are freed,
    /// so a long-running queue holds memory proportional to the
    /// frontier spread, not its whole history.
    #[must_use]
    pub fn new_checkpointed(max_ops: usize, every: usize) -> Self {
        WfQueue(WfUniversal::new_dynamic_checkpointed(FifoQueue::new(), max_ops, every))
    }
}

dynamic_front_end!(
    /// A wait-free LIFO stack with dynamic membership.
    WfStack,
    WfStackHandle,
    Stack
);

impl WfStack {
    /// Create a dynamic wait-free stack; each registration may perform
    /// up to `max_ops` operations.
    #[must_use]
    pub fn new_dynamic(max_ops: usize) -> Self {
        WfStack(WfUniversal::new_dynamic(Stack::new(), max_ops))
    }

    /// Like [`Self::new_dynamic`], with checkpointed log truncation
    /// (see [`WfQueue::new_checkpointed`]).
    #[must_use]
    pub fn new_checkpointed(max_ops: usize, every: usize) -> Self {
        WfStack(WfUniversal::new_dynamic_checkpointed(Stack::new(), max_ops, every))
    }
}

dynamic_front_end!(
    /// A wait-free counter with dynamic membership.
    WfCounter,
    WfCounterHandle,
    Counter
);

impl WfCounter {
    /// Create a dynamic wait-free counter starting at 0; each
    /// registration may perform up to `max_ops` operations.
    #[must_use]
    pub fn new_dynamic(max_ops: usize) -> Self {
        WfCounter(WfUniversal::new_dynamic(Counter::new(0), max_ops))
    }

    /// Like [`Self::new_dynamic`], with checkpointed log truncation
    /// (see [`WfQueue::new_checkpointed`]).
    #[must_use]
    pub fn new_checkpointed(max_ops: usize, every: usize) -> Self {
        WfCounter(WfUniversal::new_dynamic_checkpointed(Counter::new(0), max_ops, every))
    }
}

dynamic_front_end!(
    /// A wait-free multi-writer register with dynamic membership.
    WfRegister,
    WfRegisterHandle,
    RwRegister
);

impl WfRegister {
    /// Create a dynamic wait-free register initialized to `initial`;
    /// each registration may perform up to `max_ops` operations.
    #[must_use]
    pub fn new_dynamic(max_ops: usize, initial: Val) -> Self {
        WfRegister(WfUniversal::new_dynamic(RwRegister::new(initial), max_ops))
    }

    /// Like [`Self::new_dynamic`], with checkpointed log truncation
    /// (see [`WfQueue::new_checkpointed`]).
    #[must_use]
    pub fn new_checkpointed(max_ops: usize, initial: Val, every: usize) -> Self {
        WfRegister(WfUniversal::new_dynamic_checkpointed(RwRegister::new(initial), max_ops, every))
    }
}

/// One thread's handle to a wait-free FIFO queue of [`Val`]s.
#[derive(Debug)]
pub struct WfQueueHandle(WfHandle<FifoQueue>);

impl WfQueueHandle {
    /// Create a wait-free queue for `n` threads, `max_ops` operations per
    /// thread, returning one handle per thread.
    #[must_use]
    pub fn create(n: usize, max_ops: usize) -> Vec<WfQueueHandle> {
        WfUniversal::new(FifoQueue::new(), n, max_ops)
            .into_iter()
            .map(WfQueueHandle)
            .collect()
    }

    /// Enqueue a value (wait-free).
    pub fn enq(&mut self, v: Val) {
        let _ = self.0.invoke(QueueOp::Enq(v));
    }

    /// Dequeue the oldest value (wait-free, total: `None` when empty).
    pub fn deq(&mut self) -> Option<Val> {
        match self.0.invoke(QueueOp::Deq) {
            QueueResp::Item(v) => Some(v),
            QueueResp::Empty => None,
            QueueResp::Ack => unreachable!("deq never acks"),
        }
    }
}

/// One thread's handle to a wait-free LIFO stack of [`Val`]s.
#[derive(Debug)]
pub struct WfStackHandle(WfHandle<Stack>);

impl WfStackHandle {
    /// Create a wait-free stack for `n` threads, `max_ops` operations per
    /// thread.
    #[must_use]
    pub fn create(n: usize, max_ops: usize) -> Vec<WfStackHandle> {
        WfUniversal::new(Stack::new(), n, max_ops)
            .into_iter()
            .map(WfStackHandle)
            .collect()
    }

    /// Push a value (wait-free).
    pub fn push(&mut self, v: Val) {
        let _ = self.0.invoke(StackOp::Push(v));
    }

    /// Pop the most recent value (wait-free, total).
    pub fn pop(&mut self) -> Option<Val> {
        match self.0.invoke(StackOp::Pop) {
            StackResp::Item(v) => Some(v),
            StackResp::Empty => None,
            StackResp::Ack => unreachable!("pop never acks"),
        }
    }
}

/// One thread's handle to a wait-free counter.
#[derive(Debug)]
pub struct WfCounterHandle(WfHandle<Counter>);

impl WfCounterHandle {
    /// Create a wait-free counter for `n` threads, `max_ops` operations
    /// per thread.
    #[must_use]
    pub fn create(n: usize, max_ops: usize) -> Vec<WfCounterHandle> {
        WfUniversal::new(Counter::new(0), n, max_ops)
            .into_iter()
            .map(WfCounterHandle)
            .collect()
    }

    /// Add `delta`, returning the previous value (wait-free).
    pub fn fetch_add(&mut self, delta: Val) -> Val {
        match self.0.invoke(CounterOp::FetchAndAdd(delta)) {
            CounterResp::Value(v) => v,
            CounterResp::Ack => unreachable!("fetch-and-add returns a value"),
        }
    }

    /// Current value (wait-free linearizable read).
    pub fn get(&mut self) -> Val {
        match self.0.invoke(CounterOp::Get) {
            CounterResp::Value(v) => v,
            CounterResp::Ack => unreachable!("get returns a value"),
        }
    }
}

/// One thread's handle to a wait-free multi-writer register.
#[derive(Debug)]
pub struct WfRegisterHandle(WfHandle<RwRegister>);

impl WfRegisterHandle {
    /// Create a wait-free register for `n` threads, `max_ops` operations
    /// per thread, initialized to `initial`.
    #[must_use]
    pub fn create(n: usize, max_ops: usize, initial: Val) -> Vec<WfRegisterHandle> {
        WfUniversal::new(RwRegister::new(initial), n, max_ops)
            .into_iter()
            .map(WfRegisterHandle)
            .collect()
    }

    /// Write a value (wait-free).
    pub fn write(&mut self, v: Val) {
        let _ = self.0.invoke(RegOp::Write(v));
    }

    /// Read the current value (wait-free linearizable read).
    pub fn read(&mut self) -> Val {
        match self.0.invoke(RegOp::Read) {
            RegResp::Read(v) => v,
            RegResp::Written => unreachable!("read returns a value"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_sched::thread;

    #[test]
    fn wf_queue_conserves_items_across_threads() {
        let handles = WfQueueHandle::create(4, 400);
        let joins: Vec<_> = handles
            .into_iter()
            .enumerate()
            .map(|(t, mut h)| {
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..150 {
                        h.enq((t * 1000 + i) as Val);
                        if let Some(v) = h.deq() {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<Val> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "no duplicates");
    }

    #[test]
    fn wf_stack_round_trip() {
        let mut handles = WfStackHandle::create(1, 8);
        let h = &mut handles[0];
        h.push(1);
        h.push(2);
        assert_eq!(h.pop(), Some(2));
        assert_eq!(h.pop(), Some(1));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn wf_counter_tickets_unique() {
        let handles = WfCounterHandle::create(3, 200);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| thread::spawn(move || (0..100).map(|_| h.fetch_add(1)).collect::<Vec<_>>()))
            .collect();
        let mut all: Vec<Val> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<Val>>());
    }

    #[test]
    fn wf_counter_churn_recycles_slots() {
        let counter = WfCounter::new_dynamic(8);
        for _ in 0..20 {
            let mut h = counter.register();
            h.fetch_add(1);
            h.retire();
            assert!(h.is_retired());
        }
        assert_eq!(counter.registry_slots(), 1, "sequential churn reuses one slot");
        assert_eq!(counter.active_handles(), 0);
        let mut probe = counter.register();
        assert_eq!(probe.get(), 20);
    }

    #[test]
    fn wf_counter_checkpointed_stays_exact_and_bounded() {
        let counter = WfCounter::new_checkpointed(600, 16);
        let mut h = counter.register();
        for _ in 0..400 {
            h.fetch_add(1);
        }
        assert_eq!(h.get(), 400);
        // Truncation ran: a fresh registration adopts a checkpoint
        // instead of replaying 400 positions from the origin.
        let mut late = counter.register();
        assert_eq!(late.get(), 400);
    }

    #[test]
    fn wf_queue_survives_client_turnover() {
        let queue = WfQueue::new_dynamic(8);
        let mut producer = queue.register();
        producer.enq(1);
        producer.enq(2);
        producer.retire();
        let mut consumer = queue.register();
        assert_eq!(consumer.deq(), Some(1));
        assert_eq!(consumer.deq(), Some(2));
        assert_eq!(consumer.deq(), None);
    }

    #[test]
    fn wf_register_reads_latest_write() {
        let mut handles = WfRegisterHandle::create(2, 8, 0);
        let mut h1 = handles.pop().unwrap();
        let mut h0 = handles.pop().unwrap();
        h0.write(42);
        assert_eq!(h1.read(), 42);
        h1.write(7);
        assert_eq!(h0.read(), 7);
    }
}
