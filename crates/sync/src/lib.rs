//! # waitfree-sync
//!
//! The practical runtime: the paper's constructions on real hardware
//! atomics, with real threads.
//!
//! The paper closes (§5) noting that "little is known about practical
//! techniques" for wait-free synchronization; this crate is the practical
//! half of the reproduction:
//!
//! * [`consensus`] — hardware consensus objects: one-shot n-process
//!   consensus from `compare_exchange` (Theorem 7 on silicon), plus the
//!   two-process fetch-and-add and swap variants of Theorem 4;
//! * [`universal`] — a wait-free universal object: any
//!   [`ObjectSpec`](waitfree_model::ObjectSpec) shared among n threads via
//!   a segmented log of pointer-CAS consensus cells with announce-array
//!   helping (the practical shape of §4's construction, optimised for the
//!   hot path — `Arc`'d entries, single-CAS decides, lazy log growth);
//! * [`universal_cell`] — the original [`consensus::ConsensusCell`]-based
//!   rendering of the same algorithm, kept as the fidelity baseline and
//!   the *before* leg of the `bench_universal` comparison;
//! * [`lockfree`] — specialized lock-free baselines (Treiber stack,
//!   Michael–Scott queue) on raw `AtomicPtr` CAS with drop-deferred
//!   reclamation;
//! * [`faa_queue`] — the Herlihy–Wing FAA/swap queue (the paper's \[10\]),
//!   whose missing wait-free `peek` is Corollary 13's subject;
//! * [`locked`] — lock-based baselines (`std::sync::Mutex`) for the
//!   benchmark comparisons;
//! * [`wrappers`] — typed wait-free objects (queue, stack, counter,
//!   register) instantiating the universal construction.
//!
//! # Fault injection (feature `failpoints`)
//!
//! The hot paths of [`universal`], [`consensus`], [`faa_queue`] and
//! [`lockfree`] carry named [`waitfree_faults::failpoint!`] sites at their
//! linearization-relevant steps. With the `failpoints` feature disabled
//! (the default) every site compiles to an empty inline function; enabled,
//! tests can inject crashes, stalls and delays per site and per thread —
//! see `waitfree-faults` and the workspace's `tests/fault_tolerance.rs`.
//!
//! # Deterministic schedules (feature `sched`)
//!
//! Every atomic in this crate goes through the `waitfree_sched::atomic`
//! facade. With the `sched` feature disabled (the default) the facade is
//! a pure re-export of `std::sync::atomic` — this crate compiles to the
//! same code it did before the facade existed. Enabled, each atomic op
//! becomes a scheduling point of `waitfree-sched`'s cooperative
//! deterministic scheduler, so the *same* source that runs on hardware
//! can be driven through chosen interleavings and its histories checked
//! for linearizability — see the workspace's
//! `tests/sched_linearizability.rs`.

#![warn(missing_docs)]

pub mod consensus;
pub mod faa_queue;
pub mod lockfree;
pub mod locked;
pub mod universal;
pub mod universal_cell;
pub mod wrappers;
