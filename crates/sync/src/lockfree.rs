//! Specialized lock-free baselines: Treiber's stack and the
//! Michael–Scott queue, with `crossbeam-epoch` for safe memory
//! reclamation — the "crossbeam tricks" a practical lock-free object
//! needs once nodes are heap-allocated.
//!
//! These are *lock-free*, not wait-free: a thread can starve while others
//! make progress. They serve as the throughput baselines the universal
//! construction is benchmarked against (benches `universal_throughput`).

use std::sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Owned, Shared};

/// Treiber's lock-free stack.
///
/// # Example
///
/// ```
/// use waitfree_sync::lockfree::TreiberStack;
/// let s = TreiberStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
#[derive(Debug, Default)]
pub struct TreiberStack<T> {
    head: Atomic<Node<T>>,
}

#[derive(Debug)]
struct Node<T> {
    value: T,
    next: Atomic<Node<T>>,
}

impl<T> TreiberStack<T> {
    /// An empty stack.
    #[must_use]
    pub fn new() -> Self {
        TreiberStack { head: Atomic::null() }
    }

    /// Push a value (lock-free).
    pub fn push(&self, value: T) {
        let mut node = Owned::new(Node {
            value,
            next: Atomic::null(),
        });
        let guard = epoch::pin();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            node.next.store(head, Ordering::Relaxed);
            match self.head.compare_exchange(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
                &guard,
            ) {
                Ok(_) => return,
                Err(e) => node = e.new,
            }
        }
    }

    /// Pop the most recently pushed value (lock-free).
    pub fn pop(&self) -> Option<T>
    where
        T: Clone,
    {
        let guard = epoch::pin();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            let node = unsafe { head.as_ref() }?;
            let next = node.next.load(Ordering::Acquire, &guard);
            if self
                .head
                .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, &guard)
                .is_ok()
            {
                let value = node.value.clone();
                unsafe { guard.defer_destroy(head) };
                return Some(value);
            }
        }
    }

    /// Whether the stack is currently empty (a racy snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        self.head.load(Ordering::Acquire, &guard).is_null()
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        // Exclusive access: walk and free.
        unsafe {
            let guard = epoch::unprotected();
            let mut cur = self.head.load(Ordering::Relaxed, guard);
            while let Some(node) = cur.as_ref() {
                let next = node.next.load(Ordering::Relaxed, guard);
                drop(cur.into_owned());
                cur = next;
            }
        }
    }
}

/// The Michael–Scott lock-free FIFO queue.
///
/// # Example
///
/// ```
/// use waitfree_sync::lockfree::MsQueue;
/// let q = MsQueue::new();
/// q.enq(1);
/// q.enq(2);
/// assert_eq!(q.deq(), Some(1));
/// assert_eq!(q.deq(), Some(2));
/// assert_eq!(q.deq(), None);
/// ```
#[derive(Debug)]
pub struct MsQueue<T> {
    head: Atomic<QNode<T>>,
    tail: Atomic<QNode<T>>,
}

#[derive(Debug)]
struct QNode<T> {
    value: Option<T>,
    next: Atomic<QNode<T>>,
}

impl<T> Default for MsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MsQueue<T> {
    /// An empty queue (with the usual dummy node).
    #[must_use]
    pub fn new() -> Self {
        let dummy = Owned::new(QNode {
            value: None,
            next: Atomic::null(),
        })
        .into_shared(unsafe { epoch::unprotected() });
        MsQueue {
            head: Atomic::from(dummy),
            tail: Atomic::from(dummy),
        }
    }

    /// Enqueue a value (lock-free).
    pub fn enq(&self, value: T) {
        let node = Owned::new(QNode {
            value: Some(value),
            next: Atomic::null(),
        });
        let guard = epoch::pin();
        let node = node.into_shared(&guard);
        loop {
            let tail = self.tail.load(Ordering::Acquire, &guard);
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Ordering::Acquire, &guard);
            if !next.is_null() {
                // Tail lagging: help swing it.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
                continue;
            }
            if tail_ref
                .next
                .compare_exchange(
                    Shared::null(),
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                )
                .is_ok()
            {
                let _ = self.tail.compare_exchange(
                    tail,
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
                return;
            }
        }
    }

    /// Dequeue the oldest value (lock-free).
    pub fn deq(&self) -> Option<T>
    where
        T: Clone,
    {
        let guard = epoch::pin();
        loop {
            let head = self.head.load(Ordering::Acquire, &guard);
            let head_ref = unsafe { head.deref() };
            let next = head_ref.next.load(Ordering::Acquire, &guard);
            let next_ref = unsafe { next.as_ref() }?;
            let tail = self.tail.load(Ordering::Acquire, &guard);
            if head == tail {
                // Tail lagging behind a non-empty queue: help.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                    &guard,
                );
                continue;
            }
            if self
                .head
                .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed, &guard)
                .is_ok()
            {
                let value = next_ref.value.clone();
                unsafe { guard.defer_destroy(head) };
                return value;
            }
        }
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        unsafe {
            let guard = epoch::unprotected();
            let mut cur = self.head.load(Ordering::Relaxed, guard);
            while let Some(node) = cur.as_ref() {
                let next = node.next.load(Ordering::Relaxed, guard);
                drop(cur.into_owned());
                cur = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn stack_lifo_single_thread() {
        let s = TreiberStack::new();
        assert!(s.is_empty());
        for v in 0..10 {
            s.push(v);
        }
        for v in (0..10).rev() {
            assert_eq!(s.pop(), Some(v));
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn stack_concurrent_push_pop_conserves_items() {
        let s = Arc::new(TreiberStack::new());
        let threads = 4;
        let per = 1000;
        let joins: Vec<_> = (0..threads)
            .map(|t| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    let mut popped = Vec::new();
                    for i in 0..per {
                        s.push((t * per + i) as i64);
                        if let Some(v) = s.pop() {
                            popped.push(v);
                        }
                    }
                    popped
                })
            })
            .collect();
        let mut all: Vec<i64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        while let Some(v) = s.pop() {
            all.push(v);
        }
        all.sort_unstable();
        let expect: Vec<i64> = (0..(threads * per) as i64).collect();
        assert_eq!(all, expect, "every pushed item popped exactly once");
    }

    #[test]
    fn queue_fifo_single_thread() {
        let q = MsQueue::new();
        for v in 0..10 {
            q.enq(v);
        }
        for v in 0..10 {
            assert_eq!(q.deq(), Some(v));
        }
        assert_eq!(q.deq(), None);
    }

    #[test]
    fn queue_concurrent_producers_consumers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = Arc::new(MsQueue::new());
        let producers = 3;
        let per = 1000;
        let total = producers * per;
        let consumed = Arc::new(AtomicUsize::new(0));
        let p_joins: Vec<_> = (0..producers)
            .map(|t| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..per {
                        q.enq((t * per + i) as i64);
                    }
                })
            })
            .collect();
        let consumers = 3;
        let c_joins: Vec<_> = (0..consumers)
            .map(|_| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while consumed.load(Ordering::SeqCst) < total {
                        if let Some(v) = q.deq() {
                            consumed.fetch_add(1, Ordering::SeqCst);
                            got.push(v);
                        } else {
                            thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();
        for j in p_joins {
            j.join().unwrap();
        }
        let mut all: Vec<i64> = c_joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        while let Some(v) = q.deq() {
            all.push(v);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "every item consumed exactly once");
    }

    #[test]
    fn queue_per_producer_order_is_preserved() {
        let q = Arc::new(MsQueue::new());
        let per = 2000;
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..per {
                    q.enq(i as i64);
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut last = -1;
                let mut count = 0;
                while count < per {
                    if let Some(v) = q.deq() {
                        assert!(v > last, "FIFO violated: {v} after {last}");
                        last = v;
                        count += 1;
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
    }
}
