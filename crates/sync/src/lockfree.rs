//! Specialized lock-free baselines: Treiber's stack and the
//! Michael–Scott queue, on raw `AtomicPtr` compare-and-swap with
//! *deferred reclamation* — removed nodes are parked on an internal
//! free-list (linked through a dedicated `free_next` pointer, never the
//! algorithmic `next`) and reclaimed when the structure is dropped.
//! Because node addresses are never reused during the structure's
//! lifetime there is no ABA and every stale traversal stays safe; the
//! trade-off is that memory grows with the number of removals, which is
//! the honest price of avoiding an epoch/hazard scheme with zero
//! external dependencies.
//!
//! These are *lock-free*, not wait-free: a thread can starve while others
//! make progress. They serve as the throughput baselines the universal
//! construction is benchmarked against (benches `universal_throughput`).
//!
//! # Failpoint sites (feature `failpoints`)
//!
//! * `lockfree::stack::push_cas`, `lockfree::stack::pop_cas` — before the
//!   head compare-and-swap;
//! * `lockfree::queue::enq_cas`, `lockfree::queue::deq_cas` — before the
//!   link/head compare-and-swap.
//!
//! A thread crashed at a pre-CAS site has published nothing: the
//! structure stays consistent, other threads never block on it (that is
//! lock-freedom), and at most the crashed thread's in-flight node is
//! leaked until drop.

use std::ptr;
use waitfree_sched::atomic::{AtomicPtr, Ordering};

use waitfree_faults::failpoint;

struct Node<T> {
    value: T,
    next: AtomicPtr<Node<T>>,
    /// Free-list linkage, written only by the unique remover of this
    /// node. Kept separate from `next` so stale readers of `next` always
    /// see the algorithmic successor.
    free_next: AtomicPtr<Node<T>>,
}

impl<T> Node<T> {
    fn alloc(value: T) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            value,
            next: AtomicPtr::new(ptr::null_mut()),
            free_next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// Push `node` onto the free-list rooted at `retired`, via `free_next`.
fn retire<T>(retired: &AtomicPtr<Node<T>>, node: *mut Node<T>) {
    // progress: lock-free — a failed CAS means another retirer
    // advanced the free-list head (classic Treiber retry).
    loop {
        // ordering: Acquire [pairs: lockfree.retire] — pairs with the
        // Release CAS below, so the free-list nodes behind `old` are
        // fully linked before we chain onto them.
        let old = retired.load(Ordering::Acquire);
        // Safety: `node` was just removed by this thread (the unique CAS
        // winner) and is not yet on the free-list, so `free_next` is ours.
        // ordering: Relaxed [no-edge] — `free_next` is unpublished
        // until the Release CAS below, which carries the edge.
        unsafe { (*node).free_next.store(old, Ordering::Relaxed) };
        // ordering: Release on success [site: lockfree.retire] —
        // publishes the node's `free_next` link with the list head;
        // Relaxed on failure — the observed value is discarded, the
        // retry re-loads with Acquire.
        if retired
            .compare_exchange(old, node, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
    }
}

/// Free every node on the `free_next`-linked list rooted at `head`.
fn drain_free_list<T>(head: &AtomicPtr<Node<T>>) {
    // ordering: Acquire [pairs: lockfree.retire] — pairs with the
    // Release retire CAS; by drop time the caller's `&mut` access
    // already orders all retirers before us, the acquire just keeps
    // the pairing uniform.
    let mut cur = head.swap(ptr::null_mut(), Ordering::Acquire);
    // progress: bounded — walks the retired list once; drop's `&mut`
    // excludes concurrent pushes.
    while !cur.is_null() {
        // Safety: drop has exclusive access; each retired node is on the
        // free-list exactly once.
        let node = unsafe { Box::from_raw(cur) };
        // ordering: Relaxed [no-edge] — exclusive access at drop;
        // every link was published by a Release CAS that happens-before
        // the caller's `&mut`.
        cur = node.free_next.load(Ordering::Relaxed);
    }
}

/// Free every node on the `next`-linked live chain rooted at `head`.
fn drain_live_chain<T>(head: &AtomicPtr<Node<T>>) {
    // ordering: Acquire [pairs: lockfree.stack_push,
    // lockfree.stack_pop, lockfree.deq] — as in `drain_free_list`:
    // uniform pairing with the Release publishes of whichever head this
    // chain is rooted at (stack push/pop, queue dequeue), though drop's
    // `&mut` already orders them.
    let mut cur = head.swap(ptr::null_mut(), Ordering::Acquire);
    // progress: bounded — walks the live chain once under drop's
    // exclusive access.
    while !cur.is_null() {
        // Safety: drop has exclusive access; live nodes are reachable
        // only through the chain.
        let node = unsafe { Box::from_raw(cur) };
        // ordering: Relaxed [no-edge] — exclusive access at drop (see
        // `drain_free_list`).
        cur = node.next.load(Ordering::Relaxed);
    }
}

/// Treiber's lock-free stack.
///
/// # Example
///
/// ```
/// use waitfree_sync::lockfree::TreiberStack;
/// let s = TreiberStack::new();
/// s.push(1);
/// s.push(2);
/// assert_eq!(s.pop(), Some(2));
/// assert_eq!(s.pop(), Some(1));
/// assert_eq!(s.pop(), None);
/// ```
pub struct TreiberStack<T> {
    head: AtomicPtr<Node<T>>,
    retired: AtomicPtr<Node<T>>,
}

// Safety: values are moved across threads through push/pop; no shared
// reference to a value ever crosses a thread boundary.
unsafe impl<T: Send> Send for TreiberStack<T> {}
unsafe impl<T: Send> Sync for TreiberStack<T> {}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for TreiberStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreiberStack").finish_non_exhaustive()
    }
}

impl<T> TreiberStack<T> {
    /// An empty stack.
    #[must_use]
    pub fn new() -> Self {
        TreiberStack {
            head: AtomicPtr::new(ptr::null_mut()),
            retired: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Push a value (lock-free).
    pub fn push(&self, value: T) {
        let node = Node::alloc(value);
        // progress: lock-free — a failed CAS means another push or pop
        // moved the head (classic Treiber retry).
        loop {
            // ordering: Acquire [pairs: lockfree.stack_push,
            // lockfree.stack_pop] — pairs with the Release publish CAS
            // (push or pop, whichever wrote `head` last), so the node
            // behind `head` (and everything below it) is fully linked
            // before we point at it.
            let head = self.head.load(Ordering::Acquire);
            // Safety: `node` is ours until the CAS below publishes it.
            // ordering: Relaxed [no-edge] — `next` is unpublished until
            // the Release CAS below, which carries the edge.
            unsafe { (*node).next.store(head, Ordering::Relaxed) };
            failpoint!("lockfree::stack::push_cas");
            // ordering: Release on success [site: lockfree.stack_push] —
            // publishes the new node's value and `next` link; Relaxed on
            // failure — the observed value is discarded, the retry
            // re-loads with Acquire.
            if self
                .head
                .compare_exchange(head, node, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
        }
    }

    /// Pop the most recently pushed value (lock-free).
    pub fn pop(&self) -> Option<T>
    where
        T: Clone,
    {
        // progress: lock-free — a failed CAS means another thread's push
        // or pop succeeded; the system as a whole advanced.
        loop {
            // ordering: Acquire [pairs: lockfree.stack_push,
            // lockfree.stack_pop] — pairs with the head writer's Release
            // CAS, so the node's value and `next` are visible before we
            // read them below.
            let head = self.head.load(Ordering::Acquire);
            if head.is_null() {
                return None;
            }
            // Safety: nodes are never freed while the stack is alive, so
            // a loaded head pointer always dereferences to a live node
            // (possibly already removed — then the CAS below fails).
            // ordering: Acquire [no-edge] — defensive: `next` is only
            // ever written by push's Relaxed store, whose visibility
            // rides the head CAS edge acquired above, so no
            // synchronizes-with edge lands on this load (the dynamic
            // pass enforces the claim). The acquire keeps the successor's
            // contents visible if the CAS succeeds and `next` becomes
            // the head.
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            failpoint!("lockfree::stack::pop_cas");
            // ordering: Release on success [site: lockfree.stack_pop] —
            // hands later poppers the edge to everything this thread
            // saw; Relaxed on failure — the observed value is discarded,
            // the retry re-loads.
            if self
                .head
                .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                // Safety: we are the unique remover of `head`.
                let value = unsafe { (*head).value.clone() };
                retire(&self.retired, head);
                return Some(value);
            }
        }
    }

    /// Whether the stack is currently empty (a racy snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        // ordering: Acquire [pairs: lockfree.stack_push,
        // lockfree.stack_pop] — a racy snapshot; acquire keeps a
        // non-null answer consistent with the node it implies exists.
        self.head.load(Ordering::Acquire).is_null()
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        drain_live_chain(&self.head);
        drain_free_list(&self.retired);
    }
}

/// The Michael–Scott lock-free FIFO queue.
///
/// # Example
///
/// ```
/// use waitfree_sync::lockfree::MsQueue;
/// let q = MsQueue::new();
/// q.enq(1);
/// q.enq(2);
/// assert_eq!(q.deq(), Some(1));
/// assert_eq!(q.deq(), Some(2));
/// assert_eq!(q.deq(), None);
/// ```
pub struct MsQueue<T> {
    head: AtomicPtr<Node<Option<T>>>,
    tail: AtomicPtr<Node<Option<T>>>,
    retired: AtomicPtr<Node<Option<T>>>,
}

// Safety: as for TreiberStack.
unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T> Default for MsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for MsQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MsQueue").finish_non_exhaustive()
    }
}

impl<T> MsQueue<T> {
    /// An empty queue (with the usual dummy node).
    #[must_use]
    pub fn new() -> Self {
        let dummy = Node::alloc(None);
        MsQueue {
            head: AtomicPtr::new(dummy),
            tail: AtomicPtr::new(dummy),
            retired: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Enqueue a value (lock-free).
    pub fn enq(&self, value: T) {
        let node = Node::alloc(Some(value));
        // progress: lock-free — every retry follows another thread's
        // successful link CAS or tail swing (the Michael–Scott argument).
        loop {
            // ordering: Acquire [pairs: lockfree.tail_swing_enq,
            // lockfree.tail_post_link, lockfree.tail_swing_deq] — pairs
            // with the Release tail swings, so the node behind `tail` is
            // fully linked before we touch its `next`.
            let tail = self.tail.load(Ordering::Acquire);
            // Safety: tail always points at a node that has not been
            // reclaimed (only ex-heads are retired, and the tail never
            // trails the head past the dummy); its `next` is the
            // algorithmic successor even for a lagging tail.
            // ordering: Acquire [pairs: lockfree.enq] — pairs with the
            // Release link CAS, so a non-null successor is a fully
            // initialized node.
            let next = unsafe { (*tail).next.load(Ordering::Acquire) };
            if !next.is_null() {
                // Tail lagging: help swing it.
                // ordering: Release on success
                // [site: lockfree.tail_swing_enq] — republishes the node
                // behind the new tail for the next enqueuer's Acquire;
                // Relaxed on failure — someone else swung it, retry.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                );
                continue;
            }
            failpoint!("lockfree::queue::enq_cas");
            // Safety: as above; linking is the linearization point.
            // ordering: Release on success [site: lockfree.enq] —
            // publishes the new node's value with the link (the
            // linearization point); Relaxed on failure — the observed
            // value is discarded, the retry re-loads with Acquire.
            if unsafe {
                (*tail).next.compare_exchange(
                    ptr::null_mut(),
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                )
            }
            .is_ok()
            {
                // ordering: Release on success
                // [site: lockfree.tail_post_link] — as in the
                // lagging-tail swing above; Relaxed on failure — a
                // helper already swung the tail past us.
                let _ = self.tail.compare_exchange(
                    tail,
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                );
                return;
            }
        }
    }

    /// Dequeue the oldest value (lock-free).
    pub fn deq(&self) -> Option<T>
    where
        T: Clone,
    {
        // progress: lock-free — every retry follows another dequeuer's
        // successful head swing or a tail-lag help.
        loop {
            // ordering: Acquire [pairs: lockfree.deq] — pairs with the
            // Release head CAS of the previous dequeuer, so the dummy
            // behind `head` is visible.
            let head = self.head.load(Ordering::Acquire);
            // Safety: nodes live until drop; stale heads dereference
            // safely and fail the CAS below.
            // ordering: Acquire [pairs: lockfree.enq] — pairs with the
            // enqueuer's Release link CAS, so the successor's value is
            // visible before we clone it below.
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            if next.is_null() {
                return None;
            }
            // ordering: Acquire [pairs: lockfree.tail_swing_enq,
            // lockfree.tail_post_link, lockfree.tail_swing_deq] —
            // uniform with the enqueuer's tail read.
            let tail = self.tail.load(Ordering::Acquire);
            if head == tail {
                // Tail lagging behind a non-empty queue: help.
                // ordering: Release on success
                // [site: lockfree.tail_swing_deq] / Relaxed on failure —
                // as in `enq`'s lagging-tail swing.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::Release,
                    Ordering::Relaxed,
                );
                continue;
            }
            failpoint!("lockfree::queue::deq_cas");
            // ordering: Release on success [site: lockfree.deq] — hands
            // later dequeuers the edge to everything this thread saw;
            // Relaxed on failure — the observed value is discarded, the
            // retry re-loads.
            if self
                .head
                .compare_exchange(head, next, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                // Safety: `next` is the new dummy and stays live; we are
                // the unique remover of the old dummy `head`.
                let value = unsafe { (*next).value.clone() };
                retire(&self.retired, head);
                return value;
            }
        }
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        drain_live_chain(&self.head);
        drain_free_list(&self.retired);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use waitfree_sched::thread;

    #[test]
    fn stack_lifo_single_thread() {
        let s = TreiberStack::new();
        assert!(s.is_empty());
        for v in 0..10 {
            s.push(v);
        }
        for v in (0..10).rev() {
            assert_eq!(s.pop(), Some(v));
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn stack_concurrent_push_pop_conserves_items() {
        let s = Arc::new(TreiberStack::new());
        let threads = 4;
        let per = 1000;
        let joins: Vec<_> = (0..threads)
            .map(|t| {
                let s = Arc::clone(&s);
                thread::spawn(move || {
                    let mut popped = Vec::new();
                    for i in 0..per {
                        s.push((t * per + i) as i64);
                        if let Some(v) = s.pop() {
                            popped.push(v);
                        }
                    }
                    popped
                })
            })
            .collect();
        let mut all: Vec<i64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        while let Some(v) = s.pop() {
            all.push(v);
        }
        all.sort_unstable();
        let expect: Vec<i64> = (0..(threads * per) as i64).collect();
        assert_eq!(all, expect, "every pushed item popped exactly once");
    }

    #[test]
    fn queue_fifo_single_thread() {
        let q = MsQueue::new();
        for v in 0..10 {
            q.enq(v);
        }
        for v in 0..10 {
            assert_eq!(q.deq(), Some(v));
        }
        assert_eq!(q.deq(), None);
    }

    #[test]
    fn queue_concurrent_producers_consumers() {
        use waitfree_sched::atomic::{AtomicUsize, Ordering};
        let q = Arc::new(MsQueue::new());
        let producers = 3;
        let per = 1000;
        let total = producers * per;
        let consumed = Arc::new(AtomicUsize::new(0));
        let p_joins: Vec<_> = (0..producers)
            .map(|t| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..per {
                        q.enq((t * per + i) as i64);
                    }
                })
            })
            .collect();
        let consumers = 3;
        let c_joins: Vec<_> = (0..consumers)
            .map(|_| {
                let q = Arc::clone(&q);
                let consumed = Arc::clone(&consumed);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while consumed.load(Ordering::SeqCst) < total {
                        if let Some(v) = q.deq() {
                            consumed.fetch_add(1, Ordering::SeqCst);
                            got.push(v);
                        } else {
                            thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();
        for j in p_joins {
            j.join().unwrap();
        }
        let mut all: Vec<i64> = c_joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        while let Some(v) = q.deq() {
            all.push(v);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "every item consumed exactly once");
    }

    #[test]
    fn queue_per_producer_order_is_preserved() {
        let q = Arc::new(MsQueue::new());
        let per = 2000;
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..per {
                    q.enq(i as i64);
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut last = -1;
                let mut count = 0;
                while count < per {
                    if let Some(v) = q.deq() {
                        assert!(v > last, "FIFO violated: {v} after {last}");
                        last = v;
                        count += 1;
                    }
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
    }

    /// Small enough for `cargo miri test`: exercises push/pop/enq/deq
    /// churn plus the free-list reclamation under the real memory model
    /// (miri's Tree Borrows catches pointer-provenance slips the type
    /// system cannot). CI's analyze job runs every `miri_smoke_*` test.
    #[test]
    fn miri_smoke_stack_and_queue_churn() {
        let s = Arc::new(TreiberStack::new());
        let s2 = Arc::clone(&s);
        let j = thread::spawn(move || {
            for v in 0..8 {
                s2.push(v);
            }
        });
        let mut popped = 0;
        while popped < 4 {
            if s.pop().is_some() {
                popped += 1;
            }
        }
        j.join().unwrap();
        drop(s);

        let q = Arc::new(MsQueue::new());
        let q2 = Arc::clone(&q);
        let j = thread::spawn(move || {
            for v in 0..8 {
                q2.enq(v);
            }
        });
        let mut got = 0;
        while got < 4 {
            if q.deq().is_some() {
                got += 1;
            }
        }
        j.join().unwrap();
        drop(q);
    }

    #[test]
    fn drop_reclaims_live_and_retired_nodes() {
        // Exercised under the normal test allocator; mostly a
        // miri/sanitizer anchor: push/pop churn then drop.
        let s = TreiberStack::new();
        for v in 0..100 {
            s.push(v);
        }
        for _ in 0..60 {
            let _ = s.pop();
        }
        drop(s);
        let q = MsQueue::new();
        for v in 0..100 {
            q.enq(v);
        }
        for _ in 0..60 {
            let _ = q.deq();
        }
        drop(q);
    }
}
