//! Hardware consensus objects.
//!
//! Theorem 7's protocol compiled to silicon: one `compare_exchange` is an
//! n-process one-shot consensus. The two-process fetch-and-add and swap
//! objects are Theorem 4's protocol on `fetch_add`/`swap`. Orderings are
//! uniformly `SeqCst`: these objects exist to be obviously faithful to the
//! paper, not to shave cycles.
//!
//! Failpoint sites (feature `failpoints`): `consensus::announce` before a
//! [`ConsensusCell`] proposer publishes its slot, `consensus::cas` before
//! the winner-index compare-and-swap. A thread crashed at either site
//! never blocks the other proposers: consensus here is decided by a
//! single hardware primitive, not by waiting.

use waitfree_sched::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use waitfree_faults::failpoint;

/// Sentinel for "undecided" in [`UsizeConsensus`].
const UNDECIDED: usize = usize::MAX;

/// One-shot n-process consensus over `usize` values (which must not be
/// `usize::MAX`). The first `decide` wins; every call returns the winner.
///
/// # Example
///
/// ```
/// use waitfree_sync::consensus::UsizeConsensus;
/// let c = UsizeConsensus::new();
/// assert_eq!(c.decide(7), 7);
/// assert_eq!(c.decide(9), 7);
/// assert_eq!(c.winner(), Some(7));
/// ```
#[derive(Debug, Default)]
pub struct UsizeConsensus {
    cell: AtomicUsize,
}

impl UsizeConsensus {
    /// An undecided consensus object.
    #[must_use]
    pub fn new() -> Self {
        UsizeConsensus {
            cell: AtomicUsize::new(UNDECIDED),
        }
    }

    /// Propose `v`; returns the winning proposal.
    ///
    /// # Panics
    ///
    /// Panics if `v == usize::MAX` (the sentinel).
    pub fn decide(&self, v: usize) -> usize {
        assert_ne!(v, UNDECIDED, "usize::MAX is reserved");
        failpoint!("consensus::cas");
        match self
            .cell
            .compare_exchange(UNDECIDED, v, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => v,
            Err(winner) => winner,
        }
    }

    /// The winner, if decided.
    #[must_use]
    pub fn winner(&self) -> Option<usize> {
        match self.cell.load(Ordering::SeqCst) {
            UNDECIDED => None,
            w => Some(w),
        }
    }
}

/// One-shot n-process consensus over arbitrary (cloneable) values:
/// proposers announce their value in a per-process slot, then race a
/// [`UsizeConsensus`] on the slot index. Wait-free: one slot write, one
/// CAS, one slot read.
///
/// # Example
///
/// ```
/// use waitfree_sync::consensus::ConsensusCell;
/// let c: ConsensusCell<String> = ConsensusCell::new(2);
/// assert_eq!(c.decide(1, "beta".into()), "beta");
/// assert_eq!(c.decide(0, "alpha".into()), "beta");
/// ```
#[derive(Debug)]
pub struct ConsensusCell<T> {
    winner: UsizeConsensus,
    slots: Box<[OnceLock<T>]>,
}

impl<T: Clone> ConsensusCell<T> {
    /// An undecided cell for `n` proposers.
    #[must_use]
    pub fn new(n: usize) -> Self {
        ConsensusCell {
            winner: UsizeConsensus::new(),
            slots: (0..n).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Propose `value` as process `pid`; returns the winning value.
    ///
    /// Calling `decide` again with the same `pid` is allowed and
    /// idempotent in the slot: `get_or_init` silently keeps the *first*
    /// value that `pid` announced, even if a later call passes a
    /// different one (exercised by the `repeat_decides_return_winner`
    /// test). Either way the returned value is the cell-wide winner.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn decide(&self, pid: usize, value: T) -> T {
        // Announce before racing: the winner's slot is guaranteed
        // populated before anyone can read the winner index.
        failpoint!("consensus::announce");
        self.slots[pid].get_or_init(|| value);
        let w = self.winner.decide(pid);
        self.slots[w]
            .get()
            .expect("winner announced before deciding")
            .clone()
    }

    /// The decided value, if any.
    #[must_use]
    pub fn value(&self) -> Option<&T> {
        self.winner.winner().map(|w| {
            self.slots[w]
                .get()
                .expect("winner announced before deciding")
        })
    }
}

/// Theorem 4 on `fetch_add`: one-shot *two*-process consensus. Each
/// process announces its value and then increments the counter; whoever
/// saw zero was linearized first and wins.
///
/// # Example
///
/// ```
/// use waitfree_sync::consensus::FaaConsensus2;
/// let c = FaaConsensus2::new();
/// assert_eq!(c.decide(0, 100), 100);
/// assert_eq!(c.decide(1, 200), 100);
/// ```
#[derive(Debug, Default)]
pub struct FaaConsensus2 {
    counter: AtomicUsize,
    prefs: [AtomicI64; 2],
}

impl FaaConsensus2 {
    /// An undecided object.
    #[must_use]
    pub fn new() -> Self {
        FaaConsensus2 {
            counter: AtomicUsize::new(0),
            prefs: [AtomicI64::new(0), AtomicI64::new(0)],
        }
    }

    /// Propose `v` as process `pid ∈ {0, 1}`; returns the winning value.
    ///
    /// # Panics
    ///
    /// Panics if `pid > 1`.
    pub fn decide(&self, pid: usize, v: i64) -> i64 {
        assert!(pid <= 1, "FaaConsensus2 is a two-process object");
        self.prefs[pid].store(v, Ordering::SeqCst);
        if self.counter.fetch_add(1, Ordering::SeqCst) == 0 {
            v
        } else {
            self.prefs[1 - pid].load(Ordering::SeqCst)
        }
    }
}

/// Theorem 4 on `swap` (test-and-set flavor): one-shot two-process
/// consensus from an atomic boolean swap.
#[derive(Debug, Default)]
pub struct TasConsensus2 {
    claimed: AtomicBool,
    prefs: [AtomicI64; 2],
}

impl TasConsensus2 {
    /// An undecided object.
    #[must_use]
    pub fn new() -> Self {
        TasConsensus2::default()
    }

    /// Propose `v` as process `pid ∈ {0, 1}`; returns the winning value.
    ///
    /// # Panics
    ///
    /// Panics if `pid > 1`.
    pub fn decide(&self, pid: usize, v: i64) -> i64 {
        assert!(pid <= 1, "TasConsensus2 is a two-process object");
        self.prefs[pid].store(v, Ordering::SeqCst);
        if !self.claimed.swap(true, Ordering::SeqCst) {
            v
        } else {
            self.prefs[1 - pid].load(Ordering::SeqCst)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use waitfree_sched::thread;

    #[test]
    fn usize_consensus_agreement_under_threads() {
        for _ in 0..200 {
            let c = Arc::new(UsizeConsensus::new());
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || c.decide(i + 1))
                })
                .collect();
            let results: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
            assert!((1..=4).contains(&results[0]), "validity");
        }
    }

    #[test]
    fn consensus_cell_agreement_under_threads() {
        for _ in 0..200 {
            let c: Arc<ConsensusCell<Vec<u8>>> = Arc::new(ConsensusCell::new(3));
            let handles: Vec<_> = (0..3)
                .map(|i| {
                    let c = Arc::clone(&c);
                    thread::spawn(move || c.decide(i, vec![i as u8; 3]))
                })
                .collect();
            let results: Vec<Vec<u8>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(results.windows(2).all(|w| w[0] == w[1]), "{results:?}");
        }
    }

    #[test]
    fn faa_consensus_agreement_under_threads() {
        for _ in 0..500 {
            let c = Arc::new(FaaConsensus2::new());
            let a = {
                let c = Arc::clone(&c);
                thread::spawn(move || c.decide(0, 10))
            };
            let b = {
                let c = Arc::clone(&c);
                thread::spawn(move || c.decide(1, 20))
            };
            let (ra, rb) = (a.join().unwrap(), b.join().unwrap());
            assert_eq!(ra, rb);
            assert!(ra == 10 || ra == 20);
        }
    }

    #[test]
    fn tas_consensus_agreement_under_threads() {
        for _ in 0..500 {
            let c = Arc::new(TasConsensus2::new());
            let a = {
                let c = Arc::clone(&c);
                thread::spawn(move || c.decide(0, -5))
            };
            let b = {
                let c = Arc::clone(&c);
                thread::spawn(move || c.decide(1, 5))
            };
            let (ra, rb) = (a.join().unwrap(), b.join().unwrap());
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn repeat_decides_return_winner() {
        let c = UsizeConsensus::new();
        assert_eq!(c.decide(3), 3);
        for v in [1, 2, 9] {
            assert_eq!(c.decide(v), 3);
        }
        let cell: ConsensusCell<i32> = ConsensusCell::new(2);
        assert_eq!(cell.decide(0, 5), 5);
        assert_eq!(cell.decide(0, 5), 5, "same proposer again is fine");
        assert_eq!(cell.value(), Some(&5));
    }
}
