//! A wait-free universal object on hardware atomics — the optimised
//! pointer-CAS rendering, with batch combining, dynamic membership, and
//! checkpointed log truncation.
//!
//! The practical rendering of §4's universality result: a shared log in
//! which each position is decided by a *single* `AtomicPtr`
//! compare-exchange (Theorem 7 compiled to one hardware primitive), plus
//! an announce registry with a helping discipline that bounds every
//! operation — the difference between *lock-free* (someone wins) and
//! *wait-free* (everyone finishes) is exactly the helping.
//!
//! This module replaces the original 3-atomic-op
//! [`ConsensusCell`](crate::consensus::ConsensusCell) hot path, which is
//! preserved verbatim in [`crate::universal_cell`] as the fidelity
//! baseline for the explorer/model crates and for the before/after
//! benchmark (`bench_universal`). The structural changes that make this
//! path fast:
//!
//! * **Pointer consensus over arena segments.** A log position is one
//!   `AtomicPtr<LogEntry>`: null means undecided, and the first
//!   successful CAS from null wins. Proposals are plain heap `Box`es
//!   owned by the winning slot — there is *no per-entry reference
//!   count*. Entry lifetime is governed wholesale, per segment, by the
//!   checkpoint/frontier scheme below, so the decide/replay/collect hot
//!   path never touches reclamation bookkeeping. (Earlier revisions
//!   used `Arc<Entry>` and paid two atomic refcount ops per hand-off.)
//!   Helpers read another slot's announced entry through a per-handle
//!   *hazard pointer* with a single validating re-load — wait-free: a
//!   failed validation means the owner moved on, so there is nothing
//!   left to help there.
//! * **Segmented, lazily grown log.** Instead of an eagerly allocated
//!   `2·n·max_ops + 16` arena of n-slot cells (O(n²·max_ops) memory
//!   before the first op), the log is a linked list of fixed-size
//!   segments. A thread that walks off the end allocates the next
//!   segment and installs it with a CAS on the link; the loser of that
//!   race frees its duplicate and follows the winner — growth is itself
//!   wait-free (one CAS attempt, then proceed). [`WfUniversal::new`]
//!   builds an *unbounded* log; [`UniversalError::LogFull`] remains as
//!   an explicit opt-in cap via [`WfUniversal::with_capacity`] for the
//!   fault tests.
//! * **Checkpointed truncation** (this PR's layer; the paper's
//!   strongly-wait-free variant, §4.1 end — see the abstract model in
//!   `waitfree-core`'s `universal::log`). With
//!   [`WfUniversal::new_checkpointed`] (or the dynamic variant), a
//!   handle whose replay frontier has advanced `every` positions past
//!   the latest checkpoint proposes a [`LogEntry::Checkpoint`] carrying
//!   its replica state: one ordinary consensus decide, wait-free — the
//!   loser of the checkpoint CAS just frees its image and moves on,
//!   and replayers treat a checkpoint as an empty batch (their replica
//!   already equals the image when they reach it). Each handle
//!   publishes a *replay frontier* in its registry slot; whole segments
//!   strictly behind `min(latest checkpoint, min over active handles'
//!   frontiers)` are detached from the chain and freed once no
//!   walker's segment hazard covers them. Retired, dropped, and
//!   crashed handles publish `usize::MAX` (never pinning memory), and
//!   a late registrant bootstraps its replica from the oldest retained
//!   checkpoint — at least one is retained by construction, since the
//!   reclaim bound never passes the newest one.
//!   Steady-state memory is O(frontier spread), not O(total ops).
//! * **Batch combining** (default; see DESIGN.md §9). Before deciding
//!   position `k`, a thread scans the announce registry and collects
//!   *every* currently-pending announced operation into one
//!   [`LogEntry::Batch`], so a single winning CAS threads up to `n`
//!   operations and the losers find their op already decided instead of
//!   retrying. Under contention this drops decides per completed
//!   operation from ~1 toward 1/n (amortized O(1) RMWs on the contended
//!   slot), while the worst case keeps the per-op helping bound — the
//!   scan starts at position `k`'s preferred thread, so the batch is
//!   always a superset of the per-op candidate. [`WfUniversal::new_per_op`]
//!   preserves the PR-2 one-op-per-decide candidate selection for
//!   benchmarks and differential tests.
//! * **Dynamic membership** (PR 6's layer). The paper fixes the
//!   process set `n` at creation time; a production service does not.
//!   Following the infinite-arrival construction of
//!   Bonin–Mostéfaoui–Perrin (PAPERS.md), the static announce array is
//!   replaced by a *registry*: a segmented, lazily grown array of
//!   handle slots, each claimed by one CAS. [`WfUniversal::register`]
//!   is wait-free — every failed claim CAS implies a *different*
//!   concurrent registrant's success, so the scan's step count is
//!   bounded by the number of concurrently arriving clients.
//!   [`WfHandle::retire`] marks a slot departed; a quiesced retired
//!   slot is reclaimed (lazily, by the next registrant to scan past
//!   it), so registry memory is bounded by the *peak number of
//!   concurrently active handles*, never by total arrivals. A client
//!   that crashes without retiring degrades gracefully: its at-most-one
//!   pending op stays announced and helpable forever, and it costs
//!   exactly one registry slot — never a wedged helping loop, because
//!   helpers skip a slot with nothing pending in two loads.
//!
//! How an operation executes (unchanged from Figure 4-5's algorithm):
//!
//! 1. **Announce** the operation in the caller's announce cell (one
//!    `AtomicPtr` per slot holding the latest entry; the displaced
//!    predecessor goes to an owner-local limbo list, freed once no
//!    helper hazard covers it).
//! 2. **Thread** it onto the log: repeatedly take the first undecided
//!    position `k` and run consensus on a candidate — in combining mode
//!    the batch of all pending announced ops (scanned starting from
//!    position `k`'s *preferred slot* `k mod hi`, where `hi` is the
//!    registered-slot high-water), in per-op mode the preferred slot's
//!    pending entry or the caller's own. Once every position
//!    periodically prefers each slot, an announced operation is
//!    threaded within `hi` positions: the wait-free bound, restated
//!    over peak active handles instead of a static `n`.
//! 3. **Replay** the log from the handle's cached state up to the caller's
//!    entry to compute the response (§4.1's `eval`/`apply`).
//!
//! Reads take none of those steps. §4.1 only needs consensus to order
//! *mutations*; [`WfHandle::read`] answers from the handle's own replica
//! after catching it up to an observed decided frontier — the
//! Acquire-load of the `hint` word — without announcing, allocating, or
//! CASing anything. The read is linearized at that frontier load: the
//! completion-side `publish_hint` below guarantees the hint is at least
//! one past the position of every *completed* invocation, so a read that
//! starts after an `invoke` returned observes that invocation's effect.
//! Bounded work (the replay gap is fixed at the frontier load), hence
//! wait-free, and zero RMWs on the shared log.
//!
//! Helping can thread the same entry into several positions (helpers and
//! the owner may each win with a batch containing it); replay
//! deduplicates by per-thread sequence number, the standard fix. The
//! first occurrence of `(t, s)` in log order is always in per-thread
//! sequence order: a batch can only contain `(t, s)` if its collect scan
//! observed `done[t] == s`, which happens-after the decide that threaded
//! `(t, s-1)` — and the decided prefix is contiguous, so that decide
//! sits at a lower position.
//!
//! # Memory orderings
//!
//! The decide CAS stays `SeqCst` on success — it is the linearization
//! point and the paper's consensus primitive. Every relaxation off that
//! spine carries an adjacent `// ordering:` audit comment naming the
//! happens-before edge it relies on (the `wf-lint` binary in
//! `waitfree-analyze` enforces the comment; the happens-before pass in
//! `waitfree_sched::hb` checks the claimed edges against recorded
//! schedules); the summary:
//!
//! * segment `next` links: `Release` install / `Acquire` follow, so a
//!   segment's initialized header and null slots are visible before the
//!   segment is reachable;
//! * slot loads (replay, frontier scan): `Acquire`, pairing with the
//!   release half of the winner's `SeqCst` CAS, so the `LogEntry`
//!   pointed to is fully visible;
//! * the `hint` word: `Release` publish / `Acquire` read — it is a
//!   lower bound on the first undecided position, but a
//!   thread that starts threading at the hint skips the prefix below it
//!   without ever touching those slots, so the replay loop's
//!   decided-prefix invariant must be inherited from the publisher: the
//!   acquire load carries the publisher's happens-before edge to every
//!   decide below the published value. Staleness still only costs
//!   extra (already-decided) iterations — except on the log-free read
//!   path, where the hint *is* the observed frontier, so `try_invoke`
//!   additionally publishes `hint ≥ cursor` when an invocation
//!   completes: a completed op's position is always below the hint,
//!   which is what makes the Acquire frontier load a sound
//!   linearization point for [`WfHandle::read`] (see DESIGN.md §14).
//!   The threading start is
//!   additionally clamped to the handle's own replay cursor — a safety
//!   requirement, not a heuristic: positions at or above the cursor are
//!   at or above the handle's published frontier, which the reclaim
//!   bound never passes, so a threading walk can never enter a freed
//!   segment;
//! * the `segments` diagnostic counter: `AcqRel` bump / `Acquire` read,
//!   so a reported count of `n` implies the `n` installs it counts are
//!   visible to the reader;
//! * registry segment `next` links: `Release` install / `Acquire`
//!   follow, the same idiom (and the same audit obligations) as the
//!   log's segment chain;
//! * `slots_hi`, the registered-slot high-water: `AcqRel` `fetch_max`
//!   on claim / `Acquire` read, so a scanner that reads `hi` can reach
//!   every slot below it through the registry chain;
//! * slot `state` (free / active / retired): `SeqCst` — claim and
//!   retirement are rare membership events, kept on the strongest
//!   ordering so slot hand-over inherits the departing owner's
//!   announce writes;
//! * `announced`/`done` (per registry slot): `SeqCst` — they form
//!   the announce/help handshake the helping bound is proved against,
//!   and they are off the per-iteration fast path. The combining
//!   collect scan reads both through `pending`'s `SeqCst` loads, one
//!   pair per slot: seeing `announced > done` must imply the announce
//!   cell is populated (the announcer's cell store is a `SeqCst` store
//!   sequenced before its `SeqCst` store to `announced`), and a batch
//!   member `(t, s)` must imply `(t, s-1)` was already threaded (the
//!   `SeqCst` load of `done` sits after the decider's `SeqCst`
//!   `fetch_max` in the single total order). Sequence numbers continue
//!   across slot reuse — a re-registered slot's first op takes
//!   `seq = announced` — so the `(tid, seq)` replay dedup stays sound
//!   over churn;
//! * **every word of the checkpoint/reclaim protocol is `SeqCst`**, by
//!   design: the announce cell and the per-slot `entry_hazard`, the
//!   per-slot `frontier` and `seg_hazard`, and the shared `oldest`,
//!   `cp_pos`, `reclaimed_upto`, and `reclaim_lock`. Reclamation
//!   correctness is proved as chains through the single `SeqCst` total
//!   order (hazard-publish-then-revalidate vs. replace-then-scan;
//!   frontier-publish-then-hazard-clear vs. hazard-check-then-fresh
//!   -bound; detach high-water before unlink vs. hop-then-validate —
//!   see DESIGN.md §12 for the audit), and none of these words is on
//!   the per-decide fast path, so there is nothing to relax.
//!
//! # Failpoint sites (feature `failpoints`)
//!
//! | site | placed |
//! |------|--------|
//! | `universal::register`   | on entry to `register`, before any slot is claimed |
//! | `universal::retire`     | after the slot is marked retired (frontier already unpinned), before reclamation |
//! | `universal::announce`   | before the announce-cell write |
//! | `universal::announced`  | after the announce is published, before threading |
//! | `universal::collect`    | before the announce-registry scan that builds a combined batch (combining mode only) |
//! | `universal::cas`        | in the threading loop, before each consensus decide |
//! | `universal::decided`    | after a decide, before the position advances |
//! | `universal::replay`     | in the replay loop, per applied operation |
//! | `universal::read`       | in `read`/`try_read`, after the frontier load, before the catch-up replay |
//! | `universal::checkpoint` | after the checkpoint cadence check, before the image is built and proposed |
//! | `universal::reclaim`    | inside `try_reclaim`, after the reclaim lock is taken, before anything is detached |
//!
//! The shared sites carry the same names as the baseline's
//! ([`crate::universal_cell`]), so one adversary plan stresses either
//! path (`universal::collect` fires only on the combining path;
//! `universal::register`/`universal::retire`/`universal::checkpoint`/
//! `universal::reclaim` only on this one). A thread crashed at
//! `universal::announce` has published nothing; one crashed at any
//! later site has an announced operation that helpers may still
//! thread, and a collect scan mutates nothing shared (its hazard
//! pointer is cleared by the next owner action or handle drop). Verify
//! such histories with `PendingPolicy::MayTakeEffect`. A client
//! crashed at `universal::register` has claimed nothing; one crashed
//! at `universal::retire` leaves its slot marked retired, quiescent,
//! and — because the frontier is unpinned *before* the failpoint —
//! never pinning a segment. A crash at `universal::checkpoint` loses
//! at most one checkpoint proposal (the cadence check re-fires on the
//! next invoke); a crash at `universal::reclaim` unwinds through the
//! RAII lock guard with nothing detached, so the next reclaimer
//! proceeds unhindered. A reader crashed at `universal::read` has
//! announced nothing, decided nothing, and grown nothing — the log and
//! every other handle's counters are exactly as if the read never
//! started (`tests/fault_tolerance.rs` asserts the exact-count
//! postconditions).

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::ptr;
use std::sync::Arc;
use waitfree_sched::atomic::{AtomicPtr, AtomicUsize, Ordering};

use waitfree_faults::failpoint;
use waitfree_model::{ObjectSpec, Pid};

/// Log positions per segment. 64 keeps a segment at one or two cache
/// pages of pointers and makes the growth tests cheap to trigger.
pub const SEGMENT_SIZE: usize = 64;

/// Handle slots per registry segment. Small, so the bounded-by-peak
/// tests can observe reuse without thousands of arrivals.
pub const REGISTRY_SEGMENT: usize = 8;

/// Displaced announce entries an owner accumulates before sweeping its
/// limbo list (freeing every entry no helper hazard covers). Small: the
/// list holds at most this many plus the per-sweep survivors, and a
/// survivor is pinned by at most one helper's hazard at a time.
const ENTRY_LIMBO_SWEEP: usize = 8;

/// Registry-slot states. A slot is claimed FREE → ACTIVE by one
/// `register` CAS, marked ACTIVE → RETIRED by `retire`, and recycled
/// RETIRED → FREE (by the retiring owner, or lazily by a later
/// registrant) once nothing is pending on it. A crashed client's slot
/// simply stays ACTIVE (or RETIRED with a pending op): helpers skip it
/// in two loads, and it costs one slot, never a wedged loop.
const SLOT_FREE: usize = 0;
const SLOT_ACTIVE: usize = 1;
const SLOT_RETIRED: usize = 2;

/// Why a universal-object operation could not complete. These are the
/// resource-exhaustion edges of the bounded renderings of §4 — not
/// concurrency failures, which the construction tolerates by design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UniversalError {
    /// The log reached its opt-in position cap
    /// ([`WfUniversal::with_capacity`]) with no undecided position left.
    /// The operation was already announced and *may still take effect*
    /// through helping; the object as a whole cannot accept further
    /// operations. Never returned by objects built with
    /// [`WfUniversal::new`], whose log grows without bound.
    LogFull {
        /// First position past the cap.
        position: usize,
        /// The configured position cap.
        capacity: usize,
    },
    /// This handle used all `max_ops` announce slots; the operation was
    /// not announced and has no effect.
    BudgetExhausted {
        /// The invoking thread.
        tid: usize,
        /// Its per-thread operation budget.
        max_ops: usize,
    },
    /// This handle was retired ([`WfHandle::retire`]); the operation
    /// was not announced and has no effect. Register a fresh handle to
    /// keep operating on the object.
    Retired {
        /// The registry slot the handle occupied.
        tid: usize,
    },
}

impl fmt::Display for UniversalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniversalError::LogFull { position, capacity } => {
                write!(f, "log arena exhausted at position {position} (capacity {capacity})")
            }
            UniversalError::BudgetExhausted { tid, max_ops } => {
                write!(f, "thread {tid} exceeded its budget of {max_ops} operations")
            }
            UniversalError::Retired { tid } => {
                write!(f, "handle on registry slot {tid} is retired")
            }
        }
    }
}

impl std::error::Error for UniversalError {}

/// One announced operation. Constructed once per operation; helpers and
/// batch membership copy it by `Clone` (a plain payload clone — there
/// is no shared-ownership bookkeeping on the hot path).
#[derive(Clone, Debug)]
pub struct Entry<Op> {
    /// The invoking thread.
    pub tid: usize,
    /// The invoker's operation counter.
    pub seq: usize,
    /// The operation.
    pub op: Op,
}

/// A checkpointed replica image: the abstract state with every decided
/// position below the checkpoint applied, plus the per-slot applied
/// watermarks a bootstrapping replica needs to keep the `(tid, seq)`
/// replay dedup sound across the truncated prefix.
#[derive(Clone, Debug)]
pub struct CpImage<S: ObjectSpec> {
    /// The replica state with the whole log prefix applied.
    pub state: S,
    /// Per-slot next-sequence watermarks at the checkpoint position.
    pub applied: Vec<usize>,
}

/// One decided log position: a single operation, a batch of operations
/// threaded together by one winning consensus decide, or a checkpointed
/// replica image (the truncation variant's "snapshot as an op").
///
/// Batch members are in announce-scan order (starting at the position's
/// preferred thread), which is their linearization order; replay applies
/// them in member order and response lookup keys on `(tid, seq)`.
/// [`WfHandle::decided_log`] flattens batches so the Wing–Gong checker
/// and the cross-implementation equivalence tests keep per-op
/// granularity. A checkpoint contributes no members: replayers that
/// reach it already hold a replica equal to its image, so they skip it,
/// while a bootstrapping registrant *starts* from it.
#[derive(Debug)]
pub enum LogEntry<S: ObjectSpec> {
    /// One operation. The per-op path always produces this; the
    /// combining path produces it when the collect scan finds a single
    /// pending operation.
    Solo(Entry<S::Op>),
    /// Two or more operations combined by one collect scan, in
    /// announce-scan order. At most one member per thread (the scan
    /// reads each thread's oldest pending op once).
    Batch(Box<[Entry<S::Op>]>),
    /// A checkpointed replica image decided into the log by a handle
    /// whose replay frontier reached the checkpoint cadence. Boxed:
    /// the common Solo/Batch arms must not pay for the image's size.
    Checkpoint(Box<CpImage<S>>),
}

impl<S: ObjectSpec> LogEntry<S> {
    /// The decided operations in linearization order (a `Solo` is a
    /// one-member batch; a `Checkpoint` carries none).
    #[must_use]
    pub fn members(&self) -> &[Entry<S::Op>] {
        match self {
            LogEntry::Solo(e) => std::slice::from_ref(e),
            LogEntry::Batch(m) => m,
            LogEntry::Checkpoint(_) => &[],
        }
    }
}

/// One registry slot: the dynamic-membership replacement for a fixed
/// thread index. A slot carries the announce/help handshake counters,
/// a single announce cell (latest entry wins; the displaced entry is
/// owned and eventually freed by the displacing owner), the helper-side
/// hazard pointers, and the replay frontier that governs segment
/// reclamation. Slots are recycled across registrations — the sequence
/// counter continues, the state machine resets.
struct HandleSlot<Op> {
    /// `SLOT_FREE` / `SLOT_ACTIVE` / `SLOT_RETIRED`.
    state: AtomicUsize,
    /// Operations announced on this slot across all of its owners.
    announced: AtomicUsize,
    /// Operations of this slot threaded onto the log.
    done: AtomicUsize,
    /// The latest announced entry (owned by the slot; replaced by the
    /// owner on each announce, with the predecessor handed to the
    /// owner's limbo list). Null until the slot's first announce.
    cell: AtomicPtr<Entry<Op>>,
    /// Hazard pointer published by this slot's *owner* while it reads
    /// another slot's announce cell (`pending`): the displacing owner's
    /// limbo sweep keeps any entry a hazard covers alive.
    entry_hazard: AtomicPtr<Entry<Op>>,
    /// Hazard on a log segment (stored as an address so the slot stays
    /// generic over `Op` alone), published while this slot's owner
    /// walks the chain from `oldest` (registration bootstrap and the
    /// decided-log diagnostics): the limbo sweep keeps a hazarded
    /// segment alive. Zero when unpinned.
    seg_hazard: AtomicUsize,
    /// This handle's replay frontier: every position below it has been
    /// replayed into the handle's replica, so the handle will never
    /// read a log slot below it again. `usize::MAX` while unpublished,
    /// retired, or dropped — an inactive handle never pins a segment.
    frontier: AtomicUsize,
}

impl<Op> HandleSlot<Op> {
    fn new() -> Self {
        HandleSlot {
            state: AtomicUsize::new(SLOT_FREE),
            announced: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            cell: AtomicPtr::new(ptr::null_mut()),
            entry_hazard: AtomicPtr::new(ptr::null_mut()),
            seg_hazard: AtomicUsize::new(0),
            frontier: AtomicUsize::new(usize::MAX),
        }
    }
}

impl<Op> Drop for HandleSlot<Op> {
    fn drop(&mut self) {
        let p = *self.cell.get_mut();
        if !p.is_null() {
            // SAFETY: the cell owns its current entry (displaced
            // predecessors were handed to their displacer); slots drop
            // exactly once, with the registry, so this frees it once.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// One fixed-size block of the handle registry, covering slot indices
/// `base .. base + REGISTRY_SEGMENT`. Grown with the same one-CAS
/// wait-free idiom as the log's segments.
struct RegSegment<Op> {
    base: usize,
    slots: Box<[HandleSlot<Op>]>,
    next: AtomicPtr<RegSegment<Op>>,
}

impl<Op> RegSegment<Op> {
    fn new(base: usize) -> Box<Self> {
        Box::new(RegSegment {
            base,
            slots: (0..REGISTRY_SEGMENT).map(|_| HandleSlot::new()).collect(),
            next: AtomicPtr::new(ptr::null_mut()),
        })
    }
}

impl<Op> Drop for RegSegment<Op> {
    fn drop(&mut self) {
        // Free the rest of the chain iteratively; each segment's slots
        // (and their announce cells) drop with their Boxes.
        let mut next = std::mem::replace(self.next.get_mut(), ptr::null_mut());
        // progress: bounded — one iteration per registry segment;
        // exclusive access at drop.
        while !next.is_null() {
            // SAFETY: `next` came from `Box::into_raw` in `reg_slot_grow`
            // and is detached before the Box drops, so each segment is
            // freed exactly once.
            let mut seg = unsafe { Box::from_raw(next) };
            next = std::mem::replace(seg.next.get_mut(), ptr::null_mut());
        }
    }
}

/// One fixed-size block of the segmented log. `base` is the global index
/// of `slots[0]`; a null slot is an undecided position. Segments are
/// reachable only through the `oldest` root and `next` links installed
/// by CAS; they are freed by checkpointed reclamation
/// (`Shared::try_reclaim`) or, for whatever remains, when the owning
/// [`Shared`] drops. A decided slot owns the `Box<LogEntry>` behind it.
struct Segment<S: ObjectSpec> {
    base: usize,
    slots: Box<[AtomicPtr<LogEntry<S>>]>,
    next: AtomicPtr<Segment<S>>,
    /// Segments logically own the boxed `LogEntry` behind each decided
    /// slot (dropped in `Drop`); the marker keeps auto-traits honest.
    _own: PhantomData<Box<LogEntry<S>>>,
}

impl<S: ObjectSpec> Segment<S> {
    fn new(base: usize) -> Box<Self> {
        Box::new(Segment {
            base,
            slots: (0..SEGMENT_SIZE).map(|_| AtomicPtr::new(ptr::null_mut())).collect(),
            next: AtomicPtr::new(ptr::null_mut()),
            _own: PhantomData,
        })
    }

    /// One past the last position this segment covers.
    fn end(&self) -> usize {
        self.base + SEGMENT_SIZE
    }
}

impl<S: ObjectSpec> Drop for Segment<S> {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let p = *slot.get_mut();
            if !p.is_null() {
                // SAFETY: a non-null slot owns the Box transferred by
                // the winning decide CAS; each segment is dropped
                // exactly once (by reclamation or by `Shared::drop`),
                // so the entry is freed exactly once.
                drop(unsafe { Box::from_raw(p) });
            }
        }
        // Deliberately NOT freeing the `next` chain here: a reclaimed
        // (limbo) segment's link still points into the *live* chain, so
        // chain-freeing would double-free. `Shared::drop` walks and
        // frees the live chain and the limbo list iteratively.
    }
}

/// RAII release of `Shared::reclaim_lock`: storing 0 in `Drop` keeps
/// the try-lock crash-safe — a `failpoint!` crash unwinding out of
/// `try_reclaim` releases the lock on the way out, so a crashed
/// reclaimer never wedges reclamation for everyone else.
struct ReclaimGuard<'a>(&'a AtomicUsize);

impl Drop for ReclaimGuard<'_> {
    fn drop(&mut self) {
        self.0.store(0, Ordering::SeqCst);
    }
}

struct Shared<S: ObjectSpec> {
    /// Per-*registration* operation budget: each `register` grants a
    /// fresh `max_ops` announce sequence numbers on the claimed slot.
    max_ops: usize,
    /// Opt-in position cap; `None` lets the log grow without bound.
    cap: Option<usize>,
    /// Combining mode: scan the announce registry and propose all
    /// pending ops as one batch per decide (the default hot path).
    /// `false` keeps the PR-2 one-op-per-decide candidate selection.
    combine: bool,
    /// Checkpoint cadence: decide a [`LogEntry::Checkpoint`] once a
    /// handle's replay frontier is `every` positions past the latest
    /// one. `None` disables truncation entirely (the reclaim bound
    /// stays 0 and `oldest` never moves — exactly the pre-checkpoint
    /// behaviour).
    checkpoint_every: Option<usize>,
    /// First registry segment (slot indices 0..REGISTRY_SEGMENT). Later
    /// segments hang off its `next` chain and are owned by it.
    reg_head: Box<RegSegment<S::Op>>,
    /// One past the highest slot index ever claimed — the `hi` that
    /// bounds the helping scan and the restated O(peak active) bound.
    /// Slot reuse keeps this at peak concurrent registrations, not
    /// total arrivals.
    slots_hi: AtomicUsize,
    /// Currently registered handles (diagnostics; a crash mid-retirement
    /// or a dropped-without-retire handle stays counted).
    active: AtomicUsize,
    /// High-water mark of `active` (diagnostics).
    peak_active: AtomicUsize,
    /// Total `register` calls ever (diagnostics).
    arrivals: AtomicUsize,
    /// Root of the live log chain: the oldest segment not yet detached
    /// by reclamation. With checkpointing off this never moves and is
    /// always the base-0 segment.
    oldest: AtomicPtr<Segment<S>>,
    /// Number of segments ever installed (diagnostics; duplicates that
    /// lose the install race are freed and not counted; reclaimed
    /// segments stay counted — see `reclaimed`).
    segments: AtomicUsize,
    /// Number of segments detached *and freed* by reclamation.
    reclaimed: AtomicUsize,
    /// Number of checkpoint entries decided into the log.
    checkpoints: AtomicUsize,
    /// Position of the latest decided checkpoint; 0 means "none yet"
    /// (checkpoints are only ever proposed at positions ≥ 1, so the
    /// sentinel is unambiguous).
    cp_pos: AtomicUsize,
    /// High-water of detached positions: the maximum `end()` of any
    /// segment ever unlinked from the chain, bumped *before* the
    /// unlink is observable. A walker that hopped a `next` link
    /// validates against this to detect that its target may already be
    /// detached (and possibly freed) — without dereferencing it.
    reclaimed_upto: AtomicUsize,
    /// Try-lock (0 free / 1 held) serializing `try_reclaim`. Taken
    /// with one CAS and never waited on: reclamation is a side duty,
    /// and a loser knows the winner is doing the work.
    reclaim_lock: AtomicUsize,
    /// Detached segments awaiting hazard clearance before they can be
    /// freed. Touched only under `reclaim_lock` (and in `Drop`, with
    /// exclusive access).
    limbo: UnsafeCell<Vec<*mut Segment<S>>>,
    /// Heuristic lower bound on the first undecided position.
    hint: AtomicUsize,
}

impl<S: ObjectSpec> fmt::Debug for Shared<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("max_ops", &self.max_ops)
            .field("cap", &self.cap)
            .field("combine", &self.combine)
            .field("checkpoint_every", &self.checkpoint_every)
            // ordering: Acquire [pairs: universal.slots_hi] —
            // diagnostics read cross-thread state; Acquire keeps the
            // printed values consistent with the structures they
            // describe (uniform rule for observers).
            .field("slots_hi", &self.slots_hi.load(Ordering::Acquire))
            .field("active", &self.active.load(Ordering::SeqCst))
            // ordering: Acquire [pairs: universal.seg_count] — same
            // observer rule as `slots_hi`.
            .field("segments", &self.segments.load(Ordering::Acquire))
            .field("reclaimed", &self.reclaimed.load(Ordering::SeqCst))
            .field("checkpoints", &self.checkpoints.load(Ordering::SeqCst))
            .field("cp_pos", &self.cp_pos.load(Ordering::SeqCst))
            // ordering: Acquire [pairs: universal.hint_pub] — same
            // observer rule as `slots_hi`.
            .field("hint", &self.hint.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl<S: ObjectSpec> Drop for Shared<S> {
    fn drop(&mut self) {
        // Free the live chain iteratively (a long log must not recurse
        // once per segment), then whatever reclamation had detached but
        // not yet freed.
        let mut seg = *self.oldest.get_mut();
        // progress: bounded — one iteration per live log segment;
        // exclusive access at drop.
        while !seg.is_null() {
            // SAFETY: `Drop` has exclusive access; every live segment
            // came from `Box::into_raw` and is freed exactly once here
            // (limbo segments are unreachable from `oldest`).
            let mut b = unsafe { Box::from_raw(seg) };
            seg = *b.next.get_mut();
        }
        for &p in self.limbo.get_mut().iter() {
            // SAFETY: limbo holds segments already detached from the
            // chain (never reachable from `oldest` again), each pushed
            // exactly once; with exclusive access they are freed here.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

impl<S: ObjectSpec> Shared<S> {
    /// One past the highest slot index ever claimed.
    fn registered(&self) -> usize {
        // ordering: Acquire [pairs: universal.slots_hi] — pairs with
        // the AcqRel fetch_max in `register`'s claim, so a reader of `hi` can reach every slot
        // below `hi` through the registry chain (the claimant walked it
        // with Acquire before bumping).
        self.slots_hi.load(Ordering::Acquire)
    }

    /// The registry slot at index `t`, which must already be reachable
    /// (`t` below a value read from `slots_hi`, or below a claim this
    /// thread performed).
    fn reg_slot(&self, t: usize) -> &HandleSlot<S::Op> {
        // SAFETY (all derefs below): registry segment pointers originate
        // from `self.reg_head` or from `next` links installed with
        // Release and read with Acquire; segments are never freed while
        // `self` is alive.
        let mut seg: *const RegSegment<S::Op> = &*self.reg_head;
        // progress: bounded — one hop per installed registry segment; the
        // caller guarantees slot `t`'s segment is already installed.
        loop {
            let s = unsafe { &*seg };
            if t < s.base + REGISTRY_SEGMENT {
                return &s.slots[t - s.base];
            }
            // ordering: Acquire [pairs: universal.reg_install] — pairs
            // with the Release install in `reg_slot_grow`, so the
            // segment's slots are initialized before the link is
            // observable.
            let next = s.next.load(Ordering::Acquire);
            assert!(!next.is_null(), "slot {t} beyond the installed registry");
            seg = next;
        }
    }

    /// The registry slot at index `t`, growing the registry as needed
    /// (the `register` path). Growth is wait-free: allocate the missing
    /// segment, one install CAS, losers free their copy and follow.
    fn reg_slot_grow(&self, t: usize) -> &HandleSlot<S::Op> {
        // SAFETY: see `reg_slot`.
        let mut seg: *const RegSegment<S::Op> = &*self.reg_head;
        // progress: wait-free — every iteration advances one segment (a
        // lost install CAS means the winner's link is there to follow),
        // and slot `t` is a bounded number of segments from the head.
        loop {
            let s = unsafe { &*seg };
            if t < s.base + REGISTRY_SEGMENT {
                return &s.slots[t - s.base];
            }
            // ordering: Acquire [pairs: universal.reg_install] — pairs
            // with the Release install below.
            let next = s.next.load(Ordering::Acquire);
            if !next.is_null() {
                seg = next;
                continue;
            }
            let fresh = Box::into_raw(RegSegment::new(s.base + REGISTRY_SEGMENT));
            // ordering: Release on success [site: universal.reg_install;
            // pairs: universal.reg_install] — publishes the fully
            // built segment (slots, announce cells) with the link;
            // Acquire on failure to safely follow the winner.
            match s.next.compare_exchange(
                ptr::null_mut(),
                fresh,
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => seg = fresh,
                Err(winner) => {
                    // SAFETY: the CAS failed, so `fresh` was never
                    // published; we still own it exclusively.
                    drop(unsafe { Box::from_raw(fresh) });
                    seg = winner;
                }
            }
        }
    }

    /// Visit slots `0..hi` in index order, one linear walk of the
    /// registry chain (the reclaim bound, hazard scans, and limbo
    /// sweeps all use this).
    fn for_each_slot(&self, hi: usize, mut f: impl FnMut(usize, &HandleSlot<S::Op>)) {
        // SAFETY: see `reg_slot`.
        let mut seg: *const RegSegment<S::Op> = &*self.reg_head;
        let mut t = 0usize;
        // progress: bounded — advances `t` one slot per iteration up to
        // `hi`, hopping segments the registry has already installed.
        while t < hi {
            let s = unsafe { &*seg };
            if t >= s.base + REGISTRY_SEGMENT {
                // ordering: Acquire [pairs: universal.reg_install] —
                // pairs with the Release segment install in
                // `reg_slot_grow`.
                let next = s.next.load(Ordering::Acquire);
                if next.is_null() {
                    return; // `hi` outran this thread's view of the chain
                }
                seg = next;
                continue;
            }
            f(t, &s.slots[t - s.base]);
            t += 1;
        }
    }

    /// The oldest announced-but-unthreaded entry on `slot`, if any,
    /// cloned out under `hazard` (the *caller's* entry-hazard slot). A
    /// free, retired-quiescent, or idle slot costs exactly the first
    /// two loads: that is how helpers "stop scanning" departed handles.
    ///
    /// Wait-free hazard protocol, no retry loop: publish the pointer,
    /// re-load the cell once, and *skip* on mismatch — a mismatch means
    /// the owner replaced its announce (its previous op was threaded),
    /// so there is nothing left to help here. ABA on a recycled
    /// allocation address is benign: validation succeeding means the
    /// pointer is the cell's *current* entry (alive, owned by the
    /// slot), and the `seq == done` check rejects any entry that is not
    /// the oldest pending one.
    fn pending(
        &self,
        slot: &HandleSlot<S::Op>,
        hazard: &AtomicPtr<Entry<S::Op>>,
    ) -> Option<Entry<S::Op>> {
        // SeqCst on both counters: the announce/help handshake. Seeing
        // `announced > done` must imply the announce cell is populated,
        // which the announcing owner guarantees by storing the cell
        // before its SeqCst store to `announced`.
        let d = slot.done.load(Ordering::SeqCst);
        let a = slot.announced.load(Ordering::SeqCst);
        if d >= a {
            return None;
        }
        let p = slot.cell.load(Ordering::SeqCst);
        if p.is_null() {
            return None;
        }
        hazard.store(p, Ordering::SeqCst);
        if slot.cell.load(Ordering::SeqCst) != p {
            // The owner displaced the entry between our load and the
            // hazard publish; its limbo sweep may not have seen our
            // hazard, so `p` may already be freed. Do not touch it.
            hazard.store(ptr::null_mut(), Ordering::SeqCst);
            return None;
        }
        // SAFETY: the validating re-load makes the deref sound in the
        // SeqCst total order: if the owner's displacing store preceded
        // our re-load we would have seen the new pointer, so the store
        // follows our hazard publish — and the owner's limbo sweep
        // (which follows its store) then sees our hazard and keeps `p`
        // alive until we clear it below.
        let e = unsafe { &*p };
        let out = if e.seq == d { Some(e.clone()) } else { None };
        hazard.store(ptr::null_mut(), Ordering::SeqCst);
        out
    }

    /// [`Shared::pending`] by slot index (the per-op candidate path).
    fn pending_at(
        &self,
        t: usize,
        hazard: &AtomicPtr<Entry<S::Op>>,
    ) -> Option<Entry<S::Op>> {
        self.pending(self.reg_slot(t), hazard)
    }

    /// Gather the pending entries of slots `from..to` (one linear walk
    /// of the registry chain) into `members`. The caller's own slot is
    /// read without the hazard dance — the caller owns its cell.
    fn pending_range(
        &self,
        from: usize,
        to: usize,
        own: &Entry<S::Op>,
        hazard: &AtomicPtr<Entry<S::Op>>,
        members: &mut Vec<Entry<S::Op>>,
    ) {
        if from >= to {
            return;
        }
        // SAFETY: see `reg_slot`.
        let mut seg: *const RegSegment<S::Op> = &*self.reg_head;
        let mut t = from;
        // progress: bounded — advances `t` one slot per iteration over
        // the `from..to` window.
        while t < to {
            let s = unsafe { &*seg };
            if t >= s.base + REGISTRY_SEGMENT {
                // ordering: Acquire [pairs: universal.reg_install] —
                // pairs with the Release segment install in
                // `reg_slot_grow`.
                let next = s.next.load(Ordering::Acquire);
                if next.is_null() {
                    return; // `to` outran this thread's view; nothing there to help
                }
                seg = next;
                continue;
            }
            let slot = &s.slots[t - s.base];
            if t == own.tid {
                // Own slot: the caller owns the cell, no hazard needed;
                // and the entry is by definition `own` while undone.
                if slot.done.load(Ordering::SeqCst) <= own.seq {
                    members.push(own.clone());
                }
            } else if let Some(e) = self.pending(slot, hazard) {
                members.push(e);
            }
            t += 1;
        }
    }

    /// Whether any registered slot's entry hazard currently covers `p`
    /// (a displaced announce entry may only be freed when none does).
    fn entry_pinned(&self, p: *mut Entry<S::Op>) -> bool {
        let mut pinned = false;
        self.for_each_slot(self.registered(), |_, slot| {
            if slot.entry_hazard.load(Ordering::SeqCst) == p {
                pinned = true;
            }
        });
        pinned
    }

    /// Whether any registered slot's segment hazard currently covers
    /// `x` (a detached segment may only be freed when none does).
    fn seg_pinned(&self, x: *mut Segment<S>) -> bool {
        let mut pinned = false;
        self.for_each_slot(self.registered(), |_, slot| {
            if slot.seg_hazard.load(Ordering::SeqCst) == x as usize {
                pinned = true;
            }
        });
        pinned
    }

    /// The position below which no live reader will ever look again:
    /// the minimum of the latest checkpoint position and every
    /// registered slot's published replay frontier. Inactive slots
    /// publish `usize::MAX`, which the min ignores; starting at
    /// `cp_pos` both bounds the result by the newest checkpoint (so a
    /// bootstrapping registrant always finds one in the retained
    /// chain) and makes "no checkpoint yet" reclaim nothing.
    fn reclaim_bound(&self) -> usize {
        let mut b = self.cp_pos.load(Ordering::SeqCst);
        self.for_each_slot(self.registered(), |_, slot| {
            b = b.min(slot.frontier.load(Ordering::SeqCst));
        });
        b
    }

    /// Pin the current chain root in `slot`'s segment hazard and return
    /// it. The store-then-revalidate loop retries only when a
    /// concurrent reclaimer detached the root between our load and the
    /// hazard publish — distinct progress elsewhere, the same
    /// accounting as the registry claim scan. On return, the root
    /// cannot be freed until the hazard is cleared: any detach of it
    /// follows our revalidating load in the SeqCst total order, so the
    /// detacher's sweep sees our hazard.
    fn pin_oldest(&self, slot: &HandleSlot<S::Op>) -> *const Segment<S> {
        // progress: lock-free — a retry means a reclaimer advanced
        // `oldest` between our load and revalidation; detaches are
        // bounded by decided checkpoints.
        loop {
            let o = self.oldest.load(Ordering::SeqCst);
            slot.seg_hazard.store(o as usize, Ordering::SeqCst);
            if self.oldest.load(Ordering::SeqCst) == o {
                return o;
            }
        }
    }

    /// Detach and free every log segment wholly behind the reclaim
    /// bound. One CAS try-lock attempt — a loser returns immediately
    /// (the winner is doing the work), keeping this wait-free. Runs
    /// after each decided checkpoint, on retire, and on handle drop;
    /// also directly via [`WfUniversal::reclaim`].
    ///
    /// Two phases under the lock:
    ///
    /// 1. **Detach**: unlink chain-root segments with `end() ≤ bound`,
    ///    recording `reclaimed_upto` *before* each unlink so walkers
    ///    that hopped past can detect it, and never unlinking the last
    ///    installed segment.
    /// 2. **Sweep**: free limbo segments no segment hazard covers —
    ///    checking the hazard *first* and recomputing the bound fresh
    ///    *second*. The order is load-bearing: a bootstrapping
    ///    registrant publishes its frontier before clearing its
    ///    hazard, so passing the hazard check guarantees the fresh
    ///    bound already reflects that registrant's frontier.
    fn try_reclaim(&self) {
        if self.checkpoint_every.is_none() {
            return;
        }
        if self
            .reclaim_lock
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        let _guard = ReclaimGuard(&self.reclaim_lock);
        failpoint!("universal::reclaim");
        // SAFETY: `limbo` is only touched under `reclaim_lock` (held
        // here, released by the guard even on unwind) or with exclusive
        // access in `Drop`, so this is the only live reference.
        let limbo = unsafe { &mut *self.limbo.get() };
        // progress: bounded — each iteration detaches the chain root;
        // stops at the reclaim bound or the last installed segment.
        loop {
            let b = self.reclaim_bound();
            let x = self.oldest.load(Ordering::SeqCst);
            // SAFETY: the chain root is only detached under this lock,
            // and detached segments are freed only by the sweep below /
            // `Drop`; `x` is therefore alive here.
            let xr = unsafe { &*x };
            if xr.end() > b {
                break;
            }
            let next = xr.next.load(Ordering::SeqCst);
            if next.is_null() {
                break; // never detach the last installed segment
            }
            // Record the detach high-water BEFORE the unlink is
            // observable: a walker that follows `x`'s link and then
            // sees `reclaimed_upto ≤ x.end()` knows its hop target was
            // still chained when it validated.
            self.reclaimed_upto.fetch_max(xr.end(), Ordering::SeqCst);
            self.oldest.store(next, Ordering::SeqCst);
            limbo.push(x);
        }
        let mut i = 0;
        // progress: bounded — one hazard-and-free check per limbo entry;
        // `i` advances past every entry kept.
        while i < limbo.len() {
            let x = limbo[i];
            if self.seg_pinned(x) {
                i += 1;
                continue;
            }
            // Hazard check passed — NOW recompute the bound, so any
            // walker that just finished bootstrapping (frontier stored,
            // hazard cleared, in that order) is accounted for.
            let b = self.reclaim_bound();
            // SAFETY: `x` is detached and only this (locked) sweep or
            // `Drop` frees limbo entries; alive here.
            if unsafe { &*x }.end() > b {
                i += 1;
                continue;
            }
            limbo.swap_remove(i);
            // SAFETY: `x` is unreachable from `oldest` (detached), no
            // hazard covered it after the detach, and every published
            // frontier is at or past its end — no reader can reach it
            // again, so this free is the only and final one.
            drop(unsafe { Box::from_raw(x) });
            self.reclaimed.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// The segment containing position `k`, walking forward from `seg`
    /// (which must satisfy `seg.base <= k` and be protected from
    /// reclamation — every caller passes a cached pointer whose
    /// segment's `end()` exceeds the handle's published frontier, which
    /// the reclaim bound never passes) and growing the log as needed.
    ///
    /// Growth is wait-free: a thread allocates the missing segment and
    /// makes exactly one install attempt; on failure it frees its copy
    /// and follows the winner.
    fn seg_for(&self, mut seg: *const Segment<S>, k: usize) -> *const Segment<S> {
        // SAFETY (all derefs below): the starting segment is alive (see
        // above), and everything reached through `next` links covers
        // higher positions — also above the caller's frontier, so also
        // outside the reclaim bound while the caller holds its cache.
        // progress: wait-free — every iteration advances one segment (a
        // lost install CAS means the winner's link is there to follow),
        // and the target position is a bounded number of segments ahead.
        loop {
            let s = unsafe { &*seg };
            debug_assert!(s.base <= k);
            if k < s.base + SEGMENT_SIZE {
                return seg;
            }
            // ordering: Acquire [pairs: universal.seg_install] — pairs
            // with the Release install below, so the new segment's
            // header and nulled slots are initialized before we can
            // observe the link.
            let next = s.next.load(Ordering::Acquire);
            if !next.is_null() {
                seg = next;
                continue;
            }
            let fresh = Box::into_raw(Segment::new(s.base + SEGMENT_SIZE));
            // ordering: Release on success [site: universal.seg_install;
            // pairs: universal.seg_install] — publishes the fully
            // built segment together with the link; Acquire on
            // failure to safely follow the winner's segment.
            match s.next.compare_exchange(
                ptr::null_mut(),
                fresh,
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // ordering: AcqRel [site: universal.seg_count;
                    // pairs: universal.seg_count] — the diagnostic
                    // counter chains installer clocks, so an Acquire
                    // reader of the count also inherits every earlier
                    // install (keeps the counter meaningful off-thread;
                    // off the hot path).
                    self.segments.fetch_add(1, Ordering::AcqRel);
                    seg = fresh;
                }
                Err(winner) => {
                    // SAFETY: the CAS failed, so `fresh` was never
                    // published; we still own it exclusively.
                    drop(unsafe { Box::from_raw(fresh) });
                    seg = winner;
                }
            }
        }
    }

    /// The slot of global position `k` inside `seg` (which must contain
    /// `k`).
    fn slot(&self, seg: *const Segment<S>, k: usize) -> &AtomicPtr<LogEntry<S>> {
        // SAFETY: see `seg_for` — the caller's cached segment is
        // protected by its published frontier.
        let s = unsafe { &*seg };
        debug_assert!(s.base <= k && k < s.base + SEGMENT_SIZE);
        &s.slots[k - s.base]
    }

    /// Run pointer consensus on `slot`: propose `candidate`, return the
    /// winner plus whether our proposal won. The single CAS is the
    /// decide of Theorem 7; on success the slot takes ownership of the
    /// candidate box. On failure the candidate comes back to the caller
    /// (so an own-op Solo box is re-proposed, not re-allocated, at the
    /// next position).
    fn decide(
        &self,
        slot: &AtomicPtr<LogEntry<S>>,
        candidate: Box<LogEntry<S>>,
    ) -> (*const LogEntry<S>, bool, Option<Box<LogEntry<S>>>) {
        let proposed = Box::into_raw(candidate);
        // ordering: SeqCst success [site: universal.decide;
        // pairs: universal.decide, universal.cp_install] — the
        // linearization point, one of
        // the two SeqCst sites this crate keeps deliberately (the
        // other is the announce/done handshake): every decide must
        // take effect in one total order all threads agree on, which
        // release/acquire alone does not give. Kept at the strongest
        // ordering exactly as the cell path's winner CAS was; Acquire
        // failure — pairs with the winner's (SeqCst ⊇ Release) store
        // so the winning LogEntry's members are visible before we
        // read them.
        match slot.compare_exchange(
            ptr::null_mut(),
            proposed,
            Ordering::SeqCst,
            Ordering::Acquire,
        ) {
            Ok(_) => (proposed.cast_const(), true, None),
            Err(winner) => {
                // SAFETY: the CAS failed, so `proposed` was never
                // published; we still own it exclusively.
                let back = unsafe { Box::from_raw(proposed) };
                (winner.cast_const(), false, Some(back))
            }
        }
    }
}

// SAFETY: `Shared` is a bag of atomics plus raw segment/entry pointers
// that are only mutated via atomic CAS/store protocols and freed exactly
// once (reclaim sweep under `reclaim_lock`, or `Drop`); the `limbo`
// `UnsafeCell` is only touched while holding `reclaim_lock` (one holder
// by CAS) or with `&mut self` in `Drop`. Thread-safety therefore reduces
// to the payload's: `S: Send + Sync` (checkpoint images live in the log)
// and `Op: Send + Sync` make the shared structure safe to hand across
// threads.
unsafe impl<S: ObjectSpec + Send + Sync> Send for Shared<S> where S::Op: Send + Sync {}
unsafe impl<S: ObjectSpec + Send + Sync> Sync for Shared<S> where S::Op: Send + Sync {}

/// A wait-free universal object wrapping a sequential specification `S`.
///
/// The object is a cloneable front-end over the shared state; clients
/// join and leave dynamically. Create with [`WfUniversal::new_dynamic`]
/// (batch combining, the default hot path),
/// [`WfUniversal::new_dynamic_per_op`], or
/// [`WfUniversal::new_dynamic_checkpointed`] (bounded memory), then
/// call [`WfUniversal::register`] to obtain a [`WfHandle`] per client
/// and [`WfHandle::retire`] when a client departs. The fixed-membership
/// constructors ([`WfUniversal::new`] and friends) remain as one-shot
/// conveniences that register `n` handles up front. See
/// [`crate::wrappers`] for typed instantiations, and
/// [`crate::universal_cell`] for the unoptimised reference rendering.
///
/// # Example
///
/// ```
/// use waitfree_model::Pid;
/// use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
/// use waitfree_sync::universal::WfUniversal;
///
/// // Fixed membership: n handles up front.
/// let mut handles = WfUniversal::new(Counter::new(0), 2, 16);
/// let mut h0 = handles.remove(0);
/// assert_eq!(h0.invoke(CounterOp::FetchAndAdd(5)), CounterResp::Value(0));
/// assert_eq!(h0.invoke(CounterOp::Get), CounterResp::Value(5));
///
/// // Dynamic membership: clients arrive, operate, and depart.
/// let obj = WfUniversal::new_dynamic(Counter::new(0), 16);
/// let mut a = obj.register();
/// assert_eq!(a.invoke(CounterOp::FetchAndAdd(1)), CounterResp::Value(0));
/// a.retire();
/// let mut b = obj.register(); // reuses a's registry slot
/// assert_eq!(b.invoke(CounterOp::Get), CounterResp::Value(1));
/// assert_eq!(obj.registry_slots(), 1);
/// ```
pub struct WfUniversal<S: ObjectSpec> {
    shared: Arc<Shared<S>>,
    /// The initial abstract state, cloned into each registered handle's
    /// local replica (every replica replays the same log from it — or,
    /// on the checkpointed path, from a retained checkpoint image).
    initial: S,
}

impl<S: ObjectSpec> Clone for WfUniversal<S> {
    fn clone(&self) -> Self {
        WfUniversal { shared: Arc::clone(&self.shared), initial: self.initial.clone() }
    }
}

impl<S: ObjectSpec> fmt::Debug for WfUniversal<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WfUniversal").field("shared", &self.shared).finish_non_exhaustive()
    }
}

impl<S: ObjectSpec> WfUniversal<S> {
    /// Build the object for `n` threads, each performing at most
    /// `max_ops` operations, returning one handle per thread. Decides
    /// use batch combining (see the module docs and DESIGN.md §9).
    ///
    /// The log starts as a single [`SEGMENT_SIZE`] segment and grows
    /// lazily: memory is O(positions actually decided), not
    /// O(n²·max_ops) up front, and [`UniversalError::LogFull`] is never
    /// returned. Without checkpointing the log is never truncated; use
    /// [`WfUniversal::new_checkpointed`] for bounded steady-state
    /// memory.
    // The fixed-membership constructors are factories: they drop the
    // front-end and hand out only the per-thread handles.
    #[allow(clippy::new_ret_no_self)]
    #[must_use]
    pub fn new(initial: S, n: usize, max_ops: usize) -> Vec<WfHandle<S>> {
        Self::build(initial, n, max_ops, None, true, None)
    }

    /// [`WfUniversal::new`] with the combining layer disabled: every
    /// decide threads exactly one operation (the preferred thread's
    /// pending entry, else the caller's own). The before/after leg for
    /// `bench_universal` and the differential tests.
    #[must_use]
    pub fn new_per_op(initial: S, n: usize, max_ops: usize) -> Vec<WfHandle<S>> {
        Self::build(initial, n, max_ops, None, false, None)
    }

    /// [`WfUniversal::new`] with checkpointed log truncation: every
    /// `every` replayed positions a handle decides a
    /// [`LogEntry::Checkpoint`] into the log, and segments wholly
    /// behind `min(latest checkpoint, active handles' replay
    /// frontiers)` are detached and freed. Steady-state memory is
    /// O(frontier spread); see the module docs.
    #[must_use]
    pub fn new_checkpointed(
        initial: S,
        n: usize,
        max_ops: usize,
        every: usize,
    ) -> Vec<WfHandle<S>> {
        Self::build(initial, n, max_ops, None, true, Some(every))
    }

    /// [`WfUniversal::new_checkpointed`] with combining disabled.
    #[must_use]
    pub fn new_checkpointed_per_op(
        initial: S,
        n: usize,
        max_ops: usize,
        every: usize,
    ) -> Vec<WfHandle<S>> {
        Self::build(initial, n, max_ops, None, false, Some(every))
    }

    /// [`WfUniversal::new`] with an explicit position cap, for tests
    /// that need to observe [`UniversalError::LogFull`]. The log still
    /// grows segment by segment; only the cap is enforced eagerly.
    #[must_use]
    pub fn with_capacity(
        initial: S,
        n: usize,
        max_ops: usize,
        capacity: usize,
    ) -> Vec<WfHandle<S>> {
        Self::build(initial, n, max_ops, Some(capacity), true, None)
    }

    /// [`WfUniversal::with_capacity`] with combining disabled — a
    /// position cap over the per-op decide path.
    #[must_use]
    pub fn with_capacity_per_op(
        initial: S,
        n: usize,
        max_ops: usize,
        capacity: usize,
    ) -> Vec<WfHandle<S>> {
        Self::build(initial, n, max_ops, Some(capacity), false, None)
    }

    /// Build a dynamic-membership object: no fixed process set. Each
    /// [`WfUniversal::register`] call claims (or recycles) a registry
    /// slot and grants a fresh `max_ops` operation budget. Decides use
    /// batch combining.
    #[must_use]
    pub fn new_dynamic(initial: S, max_ops: usize) -> Self {
        Self::make(initial, max_ops, None, true, None)
    }

    /// [`WfUniversal::new_dynamic`] with the combining layer disabled.
    #[must_use]
    pub fn new_dynamic_per_op(initial: S, max_ops: usize) -> Self {
        Self::make(initial, max_ops, None, false, None)
    }

    /// [`WfUniversal::new_dynamic`] with checkpointed log truncation
    /// (see [`WfUniversal::new_checkpointed`]): the long-running-service
    /// configuration — unbounded arrivals, bounded memory.
    #[must_use]
    pub fn new_dynamic_checkpointed(initial: S, max_ops: usize, every: usize) -> Self {
        Self::make(initial, max_ops, None, true, Some(every))
    }

    /// [`WfUniversal::new_dynamic`] with an explicit log-position cap,
    /// for tests that need [`UniversalError::LogFull`] under churn.
    #[must_use]
    pub fn with_capacity_dynamic(initial: S, max_ops: usize, capacity: usize) -> Self {
        Self::make(initial, max_ops, Some(capacity), true, None)
    }

    fn make(
        initial: S,
        max_ops: usize,
        cap: Option<usize>,
        combine: bool,
        checkpoint_every: Option<usize>,
    ) -> Self {
        if let Some(every) = checkpoint_every {
            assert!(every >= 1, "checkpoint cadence must be at least 1");
        }
        WfUniversal {
            shared: Arc::new(Shared {
                max_ops,
                cap,
                combine,
                checkpoint_every,
                reg_head: RegSegment::new(0),
                slots_hi: AtomicUsize::new(0),
                active: AtomicUsize::new(0),
                peak_active: AtomicUsize::new(0),
                arrivals: AtomicUsize::new(0),
                oldest: AtomicPtr::new(Box::into_raw(Segment::new(0))),
                segments: AtomicUsize::new(1),
                reclaimed: AtomicUsize::new(0),
                checkpoints: AtomicUsize::new(0),
                cp_pos: AtomicUsize::new(0),
                reclaimed_upto: AtomicUsize::new(0),
                reclaim_lock: AtomicUsize::new(0),
                limbo: UnsafeCell::new(Vec::new()),
                hint: AtomicUsize::new(0),
            }),
            initial,
        }
    }

    fn build(
        initial: S,
        n: usize,
        max_ops: usize,
        cap: Option<usize>,
        combine: bool,
        checkpoint_every: Option<usize>,
    ) -> Vec<WfHandle<S>> {
        let obj = Self::make(initial, max_ops, cap, combine, checkpoint_every);
        // Sequential registration claims slots 0..n in order, so the
        // fixed-membership API keeps its tid == index contract.
        (0..n).map(|_| obj.register()).collect()
    }

    /// Join the object: claim a registry slot and return a fresh handle
    /// with a full `max_ops` budget.
    ///
    /// Wait-free in the infinite-arrival sense: the claim scan loses a
    /// CAS (or skips a just-taken slot) only when a *different*
    /// concurrent `register` succeeded, so its step count is bounded by
    /// the number of concurrently arriving clients plus the registry
    /// high-water — never by total arrivals. Retired-and-quiesced slots
    /// encountered on the way are reclaimed and reused (that is what
    /// keeps registry memory bounded by peak active handles).
    ///
    /// On a checkpointed object the new handle bootstraps its replica
    /// from the *oldest* checkpoint in the retained log — the first
    /// one the walk from the retained root finds — instead of
    /// replaying from position 0 (which may be truncated away); it
    /// then replays the remaining retained suffix, so adopting an
    /// older checkpoint costs extra replay, never correctness. The
    /// walk pins segments with the slot's hazard and publishes the
    /// adopted frontier before unpinning, so reclamation can never
    /// free a segment out from under it.
    #[must_use]
    pub fn register(&self) -> WfHandle<S> {
        failpoint!("universal::register");
        let shared = &self.shared;
        let mut t = 0usize;
        // progress: wait-free — a claim CAS can fail only to another
        // registrant's success, and `t` then advances, so iterations are
        // bounded by slots claimed ahead of us plus the chain length.
        let slot: &HandleSlot<S::Op> = loop {
            let slot = shared.reg_slot_grow(t);
            let claimable = match slot.state.load(Ordering::SeqCst) {
                SLOT_FREE => true,
                SLOT_RETIRED => {
                    // Lazy reclamation: a departed slot with nothing
                    // pending goes back in the free pool. (A retired
                    // slot with a pending op — its owner crashed
                    // mid-operation or hit LogFull — stays helpable and
                    // unclaimed until the op is threaded.)
                    let d = slot.done.load(Ordering::SeqCst);
                    let a = slot.announced.load(Ordering::SeqCst);
                    d >= a
                        && slot
                            .state
                            .compare_exchange(
                                SLOT_RETIRED,
                                SLOT_FREE,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            )
                            .is_ok()
                }
                _ => false,
            };
            if claimable
                && slot
                    .state
                    .compare_exchange(SLOT_FREE, SLOT_ACTIVE, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                break slot;
            }
            // Every miss above means some concurrent register() claimed
            // this slot (or a racer reclaimed-and-claimed it): distinct
            // progress elsewhere, the wait-free accounting.
            t += 1;
        };
        // ordering: AcqRel [site: universal.slots_hi;
        // pairs: universal.slots_hi] — publishes the claim's slot
        // index so any reader of `slots_hi` can reach slot `t` through
        // the registry chain this thread just walked with Acquire.
        shared.slots_hi.fetch_max(t + 1, Ordering::AcqRel);
        let now = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        shared.peak_active.fetch_max(now, Ordering::SeqCst);
        shared.arrivals.fetch_add(1, Ordering::SeqCst);
        // Sequence numbers continue where the previous owner stopped
        // (FREE implies announced == done), keeping per-slot seqs
        // monotone across reuse for the replay dedup.
        let base = slot.announced.load(Ordering::SeqCst);
        // Belt and braces: a previous owner's crash could have left a
        // stale hazard published; we own the slot now.
        slot.entry_hazard.store(ptr::null_mut(), Ordering::SeqCst);

        // Bootstrap the replica. Without checkpointing, reclamation
        // never runs: replay starts at position 0 in the immortal
        // base-0 segment, exactly the pre-checkpoint behaviour.
        let anchor: *const Segment<S>;
        let mut state = self.initial.clone();
        let mut applied: Vec<usize> = Vec::new();
        let mut cursor = 0usize;
        if shared.checkpoint_every.is_none() {
            slot.frontier.store(0, Ordering::SeqCst);
            anchor = shared.oldest.load(Ordering::SeqCst);
        } else {
            // Checkpointed: walk the retained log from the pinned root
            // and adopt the first checkpoint found (a valid image of
            // the whole truncated prefix). If the walk hits the
            // undecided frontier (or the chain end) without one, the
            // log was never truncated — provided no checkpoint exists
            // at all, which the cp_pos re-check certifies *after* our
            // frontier-0 store: in the SeqCst total order our store
            // precedes our cp_pos read, which (reading 0) precedes any
            // checkpoint decide's fetch_max, which precedes any
            // reclaimer's cp_pos read, which precedes its frontier
            // scan — so every reclaimer that could detach the root
            // sees our 0 frontier first and keeps it.
            // progress: lock-free — a restart means a reclaimer detached a
            // segment under this walk; detaches are bounded by decided
            // checkpoints.
            anchor = 'adopt: loop {
                let root = shared.pin_oldest(slot);
                let mut seg = root;
                // progress: bounded — one hop per installed segment between
                // `root` and the first decided checkpoint (truncation keeps one).
                loop {
                    // SAFETY: `root` is hazard-pinned; every later
                    // segment reached below is hop-validated against
                    // `reclaimed_upto` before being dereferenced.
                    let s = unsafe { &*seg };
                    let mut undecided = false;
                    for (i, ls) in s.slots.iter().enumerate() {
                        let raw = ls.load(Ordering::SeqCst);
                        if raw.is_null() {
                            undecided = true;
                            break;
                        }
                        // SAFETY: a non-null slot owns its decided
                        // entry; the segment holding it is pinned (or
                        // hop-validated) so the entry is alive.
                        if let LogEntry::Checkpoint(img) = unsafe { &*raw } {
                            let q = s.base + i;
                            state = img.state.clone();
                            applied = img.applied.clone();
                            cursor = q + 1;
                            slot.frontier.store(q, Ordering::SeqCst);
                            break 'adopt seg;
                        }
                    }
                    if undecided {
                        slot.frontier.store(0, Ordering::SeqCst);
                        if shared.cp_pos.load(Ordering::SeqCst) == 0 {
                            // No checkpoint has ever been decided, so
                            // nothing was ever truncated: the root is
                            // the base-0 segment and replay-from-0 is
                            // sound (and now pinned by our frontier).
                            break 'adopt root;
                        }
                        // A checkpoint appeared mid-walk (we scanned
                        // its position while still null). Rewalk: the
                        // decided prefix is contiguous and the newest
                        // checkpoint's segment is retained, so the
                        // next pass finds one. Each rewalk implies a
                        // concurrent checkpoint decide — progress
                        // elsewhere, the usual accounting.
                        slot.frontier.store(usize::MAX, Ordering::SeqCst);
                        continue 'adopt;
                    }
                    let next = s.next.load(Ordering::SeqCst);
                    if next.is_null() {
                        // Chain end without a checkpoint: same
                        // certification as the undecided case.
                        slot.frontier.store(0, Ordering::SeqCst);
                        if shared.cp_pos.load(Ordering::SeqCst) == 0 {
                            break 'adopt root;
                        }
                        slot.frontier.store(usize::MAX, Ordering::SeqCst);
                        continue 'adopt;
                    }
                    // Hop: move the hazard to the next segment, then
                    // prove it was still chained (not detached) when we
                    // look — without dereferencing it. The chain
                    // invariant gives next.base == s.end(); if any
                    // segment with end() > s.end()'s predecessor — i.e.
                    // reclaimed_upto > s.end() — was detached, `next`
                    // itself may be gone: restart. Otherwise any later
                    // detach of `next` follows our hazard publish in
                    // the SeqCst order and its sweep sees the hazard.
                    // `s.end()` is read *before* the hazard moves to
                    // `next`: the store unpins `s`, and a concurrent
                    // sweep may free it in the same instant.
                    let s_end = s.end();
                    slot.seg_hazard.store(next as usize, Ordering::SeqCst);
                    if shared.reclaimed_upto.load(Ordering::SeqCst) > s_end {
                        continue 'adopt;
                    }
                    seg = next;
                }
            };
            // Unpin only after the adopted frontier is published: the
            // sweep checks hazards before recomputing the bound, so
            // clearing here can never let the anchor be freed.
            slot.seg_hazard.store(0, Ordering::SeqCst);
        }
        WfHandle {
            shared: Arc::clone(shared),
            tid: t,
            slot: slot as *const HandleSlot<S::Op>,
            state,
            applied,
            cursor,
            replay_seg: anchor,
            thread_seg: anchor,
            entry_limbo: Vec::new(),
            next_seq: base,
            budget_end: base + shared.max_ops,
            retired: false,
            last_threading_steps: 0,
            max_threading_steps: 0,
            decides: 0,
            cas_failures: 0,
            invokes: 0,
            last_pos: None,
        }
    }

    /// Currently registered handles. A handle dropped without
    /// [`WfHandle::retire`] (a crashed client) stays counted — it still
    /// occupies its slot.
    #[must_use]
    pub fn active_handles(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// High-water mark of [`Self::active_handles`].
    #[must_use]
    pub fn peak_active(&self) -> usize {
        self.shared.peak_active.load(Ordering::SeqCst)
    }

    /// Total [`Self::register`] calls over the object's life.
    #[must_use]
    pub fn total_arrivals(&self) -> usize {
        self.shared.arrivals.load(Ordering::SeqCst)
    }

    /// One past the highest registry slot index ever claimed — the
    /// registry's memory footprint witness (allocated registry segments
    /// are `ceil(registry_slots / REGISTRY_SEGMENT)`). Slot reuse keeps
    /// this bounded by peak *concurrently active* handles (plus
    /// transient claim races), never by [`Self::total_arrivals`].
    #[must_use]
    pub fn registry_slots(&self) -> usize {
        self.shared.registered()
    }

    /// Log segments ever installed (each [`SEGMENT_SIZE`] positions),
    /// including ones since reclaimed. Starts at 1.
    #[must_use]
    pub fn installed_segments(&self) -> usize {
        // ordering: Acquire [pairs: universal.seg_count] — pairs with
        // the AcqRel fetch_add in `seg_for`, so a count of `n` implies
        // the `n`th install is visible to this reader.
        self.shared.segments.load(Ordering::Acquire)
    }

    /// Log segments detached and freed by checkpointed reclamation.
    /// Always 0 without checkpointing.
    #[must_use]
    pub fn reclaimed_segments(&self) -> usize {
        self.shared.reclaimed.load(Ordering::SeqCst)
    }

    /// Log segments currently allocated: installed minus reclaimed
    /// (detached-but-hazard-pinned limbo segments count as live — they
    /// still hold memory). The bounded-memory witness: under sustained
    /// checkpointed traffic this flattens out at O(frontier spread /
    /// [`SEGMENT_SIZE`]) while `installed_segments` keeps climbing.
    #[must_use]
    pub fn live_segments(&self) -> usize {
        self.installed_segments() - self.reclaimed_segments()
    }

    /// Checkpoint entries decided into the log so far.
    #[must_use]
    pub fn checkpoints(&self) -> usize {
        self.shared.checkpoints.load(Ordering::SeqCst)
    }

    /// Run a reclamation pass now (detach + sweep), as invokes do after
    /// deciding a checkpoint. Useful for tests and for forcing the
    /// final sweep after handles retire; a no-op without checkpointing
    /// or when another thread holds the reclaim lock.
    pub fn reclaim(&self) {
        self.shared.try_reclaim();
    }
}

/// One client's handle onto a [`WfUniversal`] object. Not `Clone`: the
/// registry-slot identity is baked in. Obtained from
/// [`WfUniversal::register`] (or the fixed-membership constructors);
/// returned to the pool with [`WfHandle::retire`]. Dropping a handle
/// *without* retiring models a crashed client: its slot stays claimed
/// (one slot leaked, nothing else) and any pending op stays helpable —
/// but the drop still unpins the handle's frontier and hazards, so a
/// crashed client never holds back segment reclamation.
#[derive(Debug)]
pub struct WfHandle<S: ObjectSpec> {
    shared: Arc<Shared<S>>,
    tid: usize,
    /// The claimed registry slot (cached; always `shared.reg_slot(tid)`).
    slot: *const HandleSlot<S::Op>,
    /// Cached replica, replayed up to `cursor`.
    state: S,
    /// Per-slot watermark of applied sequence numbers (deduplication),
    /// grown on demand as higher slot indices appear in the log.
    applied: Vec<usize>,
    /// First log position not yet replayed.
    cursor: usize,
    /// Segment containing `cursor` (invariant: `base <= cursor`); both
    /// only move forward, so the cache never has to back up. Never
    /// reclaimed while cached: its `end()` exceeds the published
    /// frontier, which the reclaim bound cannot pass.
    replay_seg: *const Segment<S>,
    /// Segment cache for the threading loop, whose position is likewise
    /// monotone (it starts at `max(hint, cursor)` — the clamp keeps it
    /// at or above the published frontier, hence unreclaimable).
    thread_seg: *const Segment<S>,
    /// Announce entries this handle displaced from its cell and not yet
    /// freed (a helper's hazard may still cover the latest few). Swept
    /// opportunistically every [`ENTRY_LIMBO_SWEEP`] displacements and
    /// on drop; bounded by the sweep cadence plus one survivor per
    /// concurrently stalled helper.
    entry_limbo: Vec<*mut Entry<S::Op>>,
    next_seq: usize,
    /// One past the last sequence number this registration's `max_ops`
    /// budget covers (`base + max_ops`, where `base` was the slot's
    /// `announced` at claim time).
    budget_end: usize,
    /// Set by [`WfHandle::retire`]; all later invokes return
    /// [`UniversalError::Retired`].
    retired: bool,
    /// Threading-loop iterations (consensus decides) of the last invoke.
    last_threading_steps: usize,
    /// Maximum threading-loop iterations over any single invoke.
    max_threading_steps: usize,
    /// Total consensus decides (CAS attempts) across this handle's life.
    decides: usize,
    /// Decides whose CAS lost to a concurrent winner.
    cas_failures: usize,
    /// Completed `invoke`/`try_invoke` calls (Ok only).
    invokes: usize,
    /// Log position whose decide applied this handle's most recent op
    /// (`None` before the first completed invoke).
    last_pos: Option<usize>,
}

// SAFETY: the raw segment/slot pointers cached here always point into
// chains owned by `shared`, which the handle keeps alive via its
// `Arc<Shared<S>>` (and, for log segments, pins against reclamation via
// its published frontier); `entry_limbo` holds entries this handle
// exclusively owns. The handle is therefore exactly as thread-safe as
// its owned state (`S`) plus the shared structure (see `Shared`'s
// impls).
unsafe impl<S: ObjectSpec + Send + Sync> Send for WfHandle<S> where S::Op: Send + Sync {}

impl<S: ObjectSpec> WfHandle<S> {
    /// This handle's registry slot index (its thread identity in log
    /// entries and `Pid`s).
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The registered-slot high-water: one past the highest slot index
    /// ever claimed — the `n` of the restated O(peak active handles)
    /// helping bound. Fixed-membership objects report their `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.shared.registered()
    }

    /// Leave the object: all later invokes on this handle return
    /// [`UniversalError::Retired`], and the registry slot becomes
    /// reclaimable — immediately if nothing is pending on it, otherwise
    /// lazily once helpers thread the pending op (the slot is freed by
    /// the next `register` scan that finds it quiesced). The handle's
    /// replay frontier is unpinned *first*, so a retiring (or crashing-
    /// mid-retire) client never holds back segment reclamation.
    /// Idempotent.
    pub fn retire(&mut self) {
        if self.retired {
            return;
        }
        self.retired = true;
        // SAFETY: `slot` points into the registry chain owned by
        // `shared`, alive for the life of this handle.
        let slot = unsafe { &*self.slot };
        // Unpin before anything else — including before the failpoint —
        // so even a crash mid-retire stops pinning segments. Hazards
        // are already clear in normal operation (pending/walks clear
        // them on every exit path); clearing again covers a handle
        // reused after a caught crash. Must precede the RETIRED store:
        // once the slot is reclaimable a new owner may claim it, and
        // these words are then the new owner's.
        slot.frontier.store(usize::MAX, Ordering::SeqCst);
        slot.seg_hazard.store(0, Ordering::SeqCst);
        slot.entry_hazard.store(ptr::null_mut(), Ordering::SeqCst);
        slot.state.store(SLOT_RETIRED, Ordering::SeqCst);
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
        failpoint!("universal::retire");
        // Quiesced already? Free the slot ourselves; otherwise leave it
        // RETIRED for lazy reclamation. A crash right above (at the
        // failpoint) skips this and costs nothing but the laziness.
        let d = slot.done.load(Ordering::SeqCst);
        let a = slot.announced.load(Ordering::SeqCst);
        if d >= a {
            let _ = slot.state.compare_exchange(
                SLOT_RETIRED,
                SLOT_FREE,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        // Our frontier may have been the reclaim bound; collect what it
        // was pinning.
        self.shared.try_reclaim();
    }

    /// Whether [`Self::retire`] was called on this handle.
    #[must_use]
    pub fn is_retired(&self) -> bool {
        self.retired
    }

    /// Whether decides combine all pending announced ops into one batch
    /// ([`WfUniversal::new`]) or thread one op each
    /// ([`WfUniversal::new_per_op`]).
    #[must_use]
    pub fn combining(&self) -> bool {
        self.shared.combine
    }

    /// Consensus decides the last completed `invoke` spent threading its
    /// operation. Wait-freedom (§4.1) bounds this by O(n) *regardless of
    /// other threads' speed or crashes* — the fault-tolerance tests
    /// assert it.
    #[must_use]
    pub fn last_threading_steps(&self) -> usize {
        self.last_threading_steps
    }

    /// Worst [`Self::last_threading_steps`] across this handle's life.
    #[must_use]
    pub fn max_threading_steps(&self) -> usize {
        self.max_threading_steps
    }

    /// Total consensus decides (CAS attempts) across this handle's life
    /// — the numerator of the amortized decides-per-op metric the
    /// combining layer lowers. With batching, `decides() / invokes()`
    /// drops toward 1/n under contention; per-op it is ≥ 1.
    #[must_use]
    pub fn decides(&self) -> usize {
        self.decides
    }

    /// How many of [`Self::decides`] lost their CAS to a concurrent
    /// winner. Losing is cheap (the loser adopts the winner), but every
    /// loss is a wasted RMW on the contended slot; the benchmark reports
    /// this per completed op for the per-op vs batched comparison.
    #[must_use]
    pub fn cas_failures(&self) -> usize {
        self.cas_failures
    }

    /// Completed (`Ok`) invocations through this handle — the
    /// denominator of the per-op counter metrics.
    #[must_use]
    pub fn invokes(&self) -> usize {
        self.invokes
    }

    /// Log position whose decide carried this handle's most recent
    /// completed op (`None` before the first successful invoke). Under
    /// batch combining this is the position of the *batch* containing
    /// the op. Layered protocols use it to relate their own entries to
    /// log order — e.g. `waitfree-store` reports the per-shard
    /// positions its snapshot markers were decided at.
    #[must_use]
    pub fn last_decided_position(&self) -> Option<usize> {
        self.last_pos
    }

    /// Number of log segments installed so far (each [`SEGMENT_SIZE`]
    /// positions), including any since reclaimed. Starts at 1;
    /// diagnostics for the growth tests. See
    /// [`WfUniversal::live_segments`] for the currently-allocated
    /// count.
    #[must_use]
    pub fn segments(&self) -> usize {
        // ordering: Acquire [pairs: universal.seg_count] — pairs with
        // the AcqRel fetch_add in `seg_for`, so a count of `n` implies
        // the `n`th install (and everything before it) is visible to
        // this reader.
        self.shared.segments.load(Ordering::Acquire)
    }

    /// Log segments currently allocated (see
    /// [`WfUniversal::live_segments`]).
    #[must_use]
    pub fn live_segments(&self) -> usize {
        self.segments() - self.shared.reclaimed.load(Ordering::SeqCst)
    }

    /// Log segments detached and freed by checkpointed reclamation.
    #[must_use]
    pub fn reclaimed_segments(&self) -> usize {
        self.shared.reclaimed.load(Ordering::SeqCst)
    }

    /// Checkpoint entries decided into the log so far.
    #[must_use]
    pub fn checkpoints(&self) -> usize {
        self.shared.checkpoints.load(Ordering::SeqCst)
    }

    /// Free displaced announce entries no helper hazard covers. The
    /// hazard scan is sound against stalled helpers: a helper publishes
    /// its hazard and then re-validates the cell — if the re-validation
    /// preceded this scan it already gave up on the entry; if not, the
    /// scan sees the hazard and keeps it.
    fn sweep_entry_limbo(&mut self) {
        let shared = &self.shared;
        self.entry_limbo.retain(|&p| {
            if shared.entry_pinned(p) {
                true
            } else {
                // SAFETY: this handle exclusively owns its displaced
                // entries; no hazard covers `p` (checked after the
                // displacement was published), so no helper can still
                // acquire it — see the method docs.
                drop(unsafe { Box::from_raw(p) });
                false
            }
        });
    }

    /// Combining mode's candidate for position `k`: scan the announce
    /// registry once, starting at `k`'s preferred slot, and gather
    /// every pending announced operation into one batch. The scan is
    /// `hi` `pending` reads (SeqCst loads plus the hazard protocol,
    /// no RMWs, nothing left published), so a thread that crashes
    /// mid-collect has perturbed nothing: every entry it gathered
    /// stays announced and helpable.
    ///
    /// Starting at the preferred slot makes the batch a superset of
    /// the per-op candidate, so the per-position helping guarantee the
    /// O(peak active) bound is proved against carries over unchanged.
    ///
    /// Returns the candidate and whether it is the caller's own
    /// pre-built Solo (which `thread_entry` recovers on a lost CAS and
    /// re-proposes instead of re-allocating).
    fn collect_candidate(
        &self,
        k: usize,
        hi: usize,
        own: &Entry<S::Op>,
        own_solo: &mut Option<Box<LogEntry<S>>>,
    ) -> (Box<LogEntry<S>>, bool) {
        failpoint!("universal::collect");
        // SAFETY: `slot` points into the registry chain owned by
        // `shared`, alive for the life of this handle.
        let slot = unsafe { &*self.slot };
        let preferred = k % hi;
        let mut members: Vec<Entry<S::Op>> = Vec::new();
        self.shared.pending_range(preferred, hi, own, &slot.entry_hazard, &mut members);
        self.shared.pending_range(0, preferred, own, &slot.entry_hazard, &mut members);
        match members.len() {
            // Our own op got helped between the loop's `done` check and
            // the scan; propose our (possibly stale) entry anyway, as
            // the per-op path does — replay deduplicates.
            0 => {
                let solo = own_solo
                    .take()
                    .unwrap_or_else(|| Box::new(LogEntry::Solo(own.clone())));
                (solo, true)
            }
            // The common uncontended case: only our own op is pending.
            // Reuse the pre-built Solo so a solo run allocates one box
            // per decide attempt at most, never per scan.
            1 if members[0].tid == own.tid && members[0].seq == own.seq => {
                let solo = own_solo
                    .take()
                    .unwrap_or_else(|| Box::new(LogEntry::Solo(own.clone())));
                (solo, true)
            }
            1 => (
                Box::new(LogEntry::Solo(members.pop().expect("len checked"))),
                false,
            ),
            _ => (Box::new(LogEntry::Batch(members.into_boxed_slice())), false),
        }
    }

    /// Thread `own` onto the log: the consensus loop of `try_invoke`,
    /// factored out so a handle recovering from a caught crash (its
    /// previous op announced but not yet threaded) can finish that op
    /// before announcing a new one.
    fn thread_entry(&mut self, own: &Entry<S::Op>) -> Result<(), UniversalError> {
        // SAFETY: `slot` points into the registry chain owned by
        // `shared`, alive for the life of this handle.
        let slot = unsafe { &*self.slot };
        let mut own_solo: Option<Box<LogEntry<S>>> = None;
        let mut steps = 0usize;
        // ordering: Acquire [pairs: universal.hint_pub] — pairs with
        // the Release `fetch_max` in `publish_hint`.
        // Starting at `k` skips the prefix [0, k) without ever touching
        // those slots, so the decided-prefix invariant that the replay
        // loop asserts (and `refresh` relies on) is inherited here: the
        // acquire carries the publisher's happens-before edge to every
        // decide below `k`. A stale value only costs extra (cheap,
        // already-decided) iterations; segment reachability is
        // re-established by the acquire walk in `seg_for`. The clamp to
        // `cursor` is a *safety* requirement on the checkpointed path:
        // positions ≥ cursor are ≥ this handle's published frontier,
        // which the reclaim bound never passes, so `thread_seg` can
        // never be (or walk into) a reclaimed segment.
        #[cfg(not(feature = "mutant-unpaired-acquire"))]
        let mut k = self.shared.hint.load(Ordering::Acquire).max(self.cursor);
        // ordering: Acquire [pairs: universal.hint_stale] — DELIBERATELY
        // WRONG. The `mutant-unpaired-acquire` feature mis-labels this
        // acquire's pair with a label no release site declares, so the
        // contract gates can prove they catch a dangling pair two ways:
        // statically (`extract_contract` with mutants reports an
        // unresolved pair) and dynamically (the happens-before pass
        // flags the observed `hint_pub` edge as undeclared). The
        // executed code is identical to the shipped statement above —
        // only the declared contract lies. Never enable outside those
        // tests.
        #[cfg(feature = "mutant-unpaired-acquire")]
        let mut k = self.shared.hint.load(Ordering::Acquire).max(self.cursor);
        // progress: wait-free — the §4 helping bound: every iteration
        // threads or helps thread position `k`, and our announced op is
        // decided within `n` positions of the entry hint.
        while slot.done.load(Ordering::SeqCst) <= own.seq {
            if let Some(cap) = self.shared.cap {
                if k >= cap {
                    self.publish_hint(k);
                    return Err(UniversalError::LogFull { position: k, capacity: cap });
                }
            }
            // The slot high-water is re-read each iteration so freshly
            // registered slots join the preferred-rotation (and the
            // collect scan) as soon as their claim is visible.
            let hi = self.shared.registered();
            self.thread_seg = self.shared.seg_for(self.thread_seg, k);
            let log_slot = self.shared.slot(self.thread_seg, k);
            let (candidate, is_own) = if self.shared.combine {
                self.collect_candidate(k, hi, own, &mut own_solo)
            } else if k % hi == own.tid {
                // Preferred slot is our own: propose our entry (the
                // pending read would only hand back a clone of it).
                let solo = own_solo
                    .take()
                    .unwrap_or_else(|| Box::new(LogEntry::Solo(own.clone())));
                (solo, true)
            } else {
                match self.shared.pending_at(k % hi, &slot.entry_hazard) {
                    Some(e) => (Box::new(LogEntry::Solo(e)), false),
                    None => {
                        let solo = own_solo
                            .take()
                            .unwrap_or_else(|| Box::new(LogEntry::Solo(own.clone())));
                        (solo, true)
                    }
                }
            };
            failpoint!("universal::cas");
            let (winner, won, returned) = self.shared.decide(log_slot, candidate);
            self.decides += 1;
            if !won {
                self.cas_failures += 1;
                if is_own {
                    // Reuse our Solo box at the next position instead
                    // of re-allocating it.
                    own_solo = returned;
                }
            }
            // Advance every member's `done` watermark, not just one
            // winner's: losers adopt the whole winning batch, so all its
            // members become visible as threaded before anyone rescans.
            // SAFETY: `winner` is the decided entry the slot owns; the
            // slot's segment is at position ≥ cursor ≥ our published
            // frontier, hence alive.
            for m in unsafe { &*winner }.members() {
                // ordering: SeqCst — half of the announce/done
                // handshake, the second of the two protocol points this
                // crate deliberately keeps at SeqCst (with the decide
                // CAS): a collector's `announced` scan and an
                // announcer's `done` check look at opposite sides of
                // the same race, and only the single total order rules
                // out the both-miss interleaving that would strand an
                // announced op unhelped — the §4 helping bound rests on
                // it.
                self.shared.reg_slot(m.tid).done.fetch_max(m.seq + 1, Ordering::SeqCst);
            }
            failpoint!("universal::decided");
            steps += 1;
            k += 1;
            if steps.is_multiple_of(hi) {
                self.publish_hint(k);
            }
        }
        self.publish_hint(k);
        self.last_threading_steps = steps;
        self.max_threading_steps = self.max_threading_steps.max(steps);
        Ok(())
    }

    /// Execute `op` wait-free, returning its response.
    ///
    /// # Panics
    ///
    /// Panics if the handle is retired, exceeds its `max_ops` budget,
    /// or a [`WfUniversal::with_capacity`] log cap is hit — the message
    /// is the [`UniversalError`] display. Use [`Self::try_invoke`] to
    /// handle exhaustion as a value.
    pub fn invoke(&mut self, op: S::Op) -> S::Resp {
        match self.try_invoke_ref(&op) {
            Ok(resp) => resp,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::invoke`] over a borrowed operation — see
    /// [`Self::try_invoke_ref`] for why callers that retry (the store's
    /// helped-multi loops) want this form.
    ///
    /// # Panics
    ///
    /// As [`Self::invoke`].
    pub fn invoke_ref(&mut self, op: &S::Op) -> S::Resp {
        match self.try_invoke_ref(op) {
            Ok(resp) => resp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Execute `op` wait-free, or report resource exhaustion (or a
    /// departed handle) as a typed error instead of panicking.
    ///
    /// On [`UniversalError::Retired`] and
    /// [`UniversalError::BudgetExhausted`] nothing was announced and
    /// the call had no effect (repeat calls keep failing the same way).
    /// On [`UniversalError::LogFull`] the operation *was* announced and
    /// may still be threaded by a helper; treat the object as done —
    /// further calls on this handle keep returning
    /// [`UniversalError::LogFull`] without announcing anything more.
    ///
    /// # Errors
    ///
    /// [`UniversalError::Retired`] after [`WfHandle::retire`];
    /// [`UniversalError::BudgetExhausted`] after `max_ops` invocations on
    /// this handle; [`UniversalError::LogFull`] when a
    /// [`WfUniversal::with_capacity`] cap leaves no undecided position
    /// (never for [`WfUniversal::new`] objects).
    pub fn try_invoke(&mut self, op: S::Op) -> Result<S::Resp, UniversalError> {
        self.try_invoke_ref(&op)
    }

    /// [`Self::try_invoke`] over a borrowed operation. The op is cloned
    /// exactly once — directly into the announce entry — so a caller
    /// that may retry the same operation (e.g. the store's get/put
    /// loops, which help a blocking multi-op and re-invoke) pays one
    /// clone per *attempt* instead of one to move the op in plus one to
    /// announce it.
    ///
    /// # Errors
    ///
    /// As [`Self::try_invoke`].
    pub fn try_invoke_ref(&mut self, op: &S::Op) -> Result<S::Resp, UniversalError> {
        if self.retired {
            return Err(UniversalError::Retired { tid: self.tid });
        }
        let seq = self.next_seq;
        if seq >= self.budget_end {
            return Err(UniversalError::BudgetExhausted {
                tid: self.tid,
                max_ops: self.shared.max_ops,
            });
        }
        // SAFETY: `slot` points into the registry chain owned by
        // `shared`, which this handle keeps alive.
        let slot = unsafe { &*self.slot };
        // At-most-one-pending invariant: the announce cell holds only
        // the *latest* entry, so a new announce must not overwrite a
        // predecessor helpers could still need. Normally the previous
        // op completed (done caught up) before we get here; the gap
        // cases are a capped log that hit LogFull (the op stays
        // pending) and a handle reused after a *caught* crash
        // mid-invoke. Both finish the orphaned op first: on a
        // genuinely full log the threading attempt fails again at the
        // real stuck position — in O(1), since the prior attempt
        // published the hint at the cap — without announcing more,
        // while a caught crash on a capped log with room simply
        // recovers, as the uncapped path always did.
        let d = slot.done.load(Ordering::SeqCst);
        let a = slot.announced.load(Ordering::SeqCst);
        if a > d {
            let p = slot.cell.load(Ordering::SeqCst);
            // SAFETY: owner-side read — only this handle replaces its
            // cell's entry, so the current content is alive.
            let orphan = unsafe { (*p).clone() };
            self.thread_entry(&orphan)?;
        }
        self.next_seq += 1;

        // 1. Announce. One allocation per operation; the displaced
        //    predecessor goes to the owner's limbo list (a helper's
        //    hazard may still cover it), swept opportunistically.
        failpoint!("universal::announce");
        let fresh = Box::into_raw(Box::new(Entry { tid: self.tid, seq, op: op.clone() }));
        // SAFETY: `fresh` was allocated above and only the owner ever
        // displaces its announce cell — which cannot happen before this
        // invocation returns — so the borrow stays valid throughout.
        // Helpers read the cell but never free the current entry.
        let own: &Entry<S::Op> = unsafe { &*fresh };
        let prev = slot.cell.load(Ordering::SeqCst);
        slot.cell.store(fresh, Ordering::SeqCst);
        if !prev.is_null() {
            self.entry_limbo.push(prev);
            if self.entry_limbo.len() >= ENTRY_LIMBO_SWEEP {
                self.sweep_entry_limbo();
            }
        }
        // ordering: SeqCst — the other half of the announce/done
        // handshake (see `done.fetch_max` in the threading loop): the
        // announce must be ordered into the same total order the
        // collectors scan, or a collector could miss this op while its
        // announcer concurrently concludes it still needs help.
        slot.announced.store(seq + 1, Ordering::SeqCst);
        failpoint!("universal::announced");

        // 2. Thread onto the log.
        self.thread_entry(own)?;

        // 3. Replay until our own entry is applied. A batch is applied
        //    member by member in decide order; we finish the position
        //    containing our op before returning (its later members were
        //    linearized by the same decide, so applying them is plain
        //    local catch-up), keeping `cursor` a whole-position index.
        //    Checkpoint entries contribute no members: our replica
        //    already equals their image when we reach them.
        // progress: bounded — applies one decided position per
        // iteration; stops at this operation's own entry, which the
        // threading loop above guaranteed is decided.
        loop {
            self.replay_seg = self.shared.seg_for(self.replay_seg, self.cursor);
            // ordering: Acquire [pairs: universal.decide,
            // universal.cp_install] — pairs with the winning decide
            // CAS and with the checkpoint-image install (both
            // SeqCst ⊇ Release), so the LogEntry behind a non-null
            // slot is fully initialized before we dereference it.
            let raw = self.shared.slot(self.replay_seg, self.cursor).load(Ordering::Acquire);
            assert!(
                !raw.is_null(),
                "own entry is threaded at or before the first undecided position"
            );
            // SAFETY: a non-null slot owns its decided entry, and this
            // segment cannot be reclaimed (its end() exceeds our
            // published frontier); the borrow ends inside this
            // iteration.
            let le = unsafe { &*raw };
            self.cursor += 1;
            let mut resp = None;
            for m in le.members() {
                if m.tid >= self.applied.len() {
                    self.applied.resize(m.tid + 1, 0);
                }
                if m.seq != self.applied[m.tid] {
                    continue; // duplicate from helping
                }
                failpoint!("universal::replay");
                let r = self.state.apply(Pid(m.tid), &m.op);
                self.applied[m.tid] += 1;
                if m.tid == self.tid && m.seq == seq {
                    resp = Some(r);
                }
            }
            if let Some(r) = resp {
                // `cursor` was already advanced past the position whose
                // decide carried our op.
                self.last_pos = Some(self.cursor - 1);
                self.invokes += 1;
                // 4. Completion-side hint publication: `thread_entry`'s
                //    own publish can lag our decided position when a
                //    helper threaded the op (its loop exits as soon as
                //    `done` passes `seq`), so re-publish at the replay
                //    cursor. This makes the hint ≥ one past every
                //    *completed* op's position — the invariant the
                //    log-free read path linearizes against: a `read`
                //    that starts after this return Acquire-loads a
                //    frontier covering this op. Off the contended decide
                //    path; one fetch_max per completed invoke.
                self.publish_hint(self.cursor);
                // 5. Checkpoint duty + frontier publication: decide a
                //    checkpoint if the cadence came due, advertise how
                //    far our replica has replayed, and let reclamation
                //    collect what fell behind every frontier.
                self.maybe_checkpoint();
                self.publish_frontier();
                return Ok(r);
            }
        }
    }

    /// Decide a [`LogEntry::Checkpoint`] at the handle's replay cursor
    /// if the configured cadence came due. Wait-free: one CAS attempt —
    /// on loss the position was decided by a concurrent op (or another
    /// checkpoint) and the image is simply freed; the cadence check
    /// re-fires on a later invoke. The proposer is fully replayed up to
    /// `cursor`, so its replica *is* the prefix image, and the image
    /// carries the `applied` watermarks so adopters dedup correctly.
    fn maybe_checkpoint(&mut self) {
        let Some(every) = self.shared.checkpoint_every else {
            return;
        };
        let k = self.cursor;
        if k < self.shared.cp_pos.load(Ordering::SeqCst) + every {
            return;
        }
        if self.shared.cap.is_some_and(|c| k >= c) {
            return; // a capped log never truncates past its LogFull edge
        }
        failpoint!("universal::checkpoint");
        let image: Box<LogEntry<S>> = Box::new(LogEntry::Checkpoint(Box::new(CpImage {
            state: self.state.clone(),
            applied: self.applied.clone(),
        })));
        self.replay_seg = self.shared.seg_for(self.replay_seg, k);
        let log_slot = self.shared.slot(self.replay_seg, k);
        let raw = Box::into_raw(image);
        // ordering: SeqCst [site: universal.cp_install] — installing a
        // checkpoint image races ordinary decides for the same slot and
        // must land in the same total order, so it uses the decide
        // CAS's strength; replayers' Acquire slot loads pair with it to
        // see the boxed image's contents. (The dynamic cross-check
        // found this site: it was the one slot publication the audit
        // comments never declared.)
        match log_slot.compare_exchange(ptr::null_mut(), raw, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                // Our own checkpoint applies nothing: skip it.
                self.cursor = k + 1;
                self.shared.cp_pos.fetch_max(k, Ordering::SeqCst);
                self.shared.checkpoints.fetch_add(1, Ordering::SeqCst);
                self.publish_hint(k + 1);
                self.shared.try_reclaim();
            }
            Err(_) => {
                // Lost to a concurrent decide at this position; replay
                // will adopt it and a later invoke retries the cadence.
                // SAFETY: the CAS failed, so `raw` was never published;
                // we still own it exclusively.
                drop(unsafe { Box::from_raw(raw) });
            }
        }
    }

    /// Publish the handle's replay frontier and re-anchor the cached
    /// segment pointers at it, restoring the invariant every cached
    /// segment depends on: `end() > published frontier`, so the reclaim
    /// bound (≤ every published frontier) can never free a segment a
    /// handle still points at.
    fn publish_frontier(&mut self) {
        if self.retired {
            return;
        }
        self.replay_seg = self.shared.seg_for(self.replay_seg, self.cursor);
        self.thread_seg = self.replay_seg;
        // SAFETY: `slot` points into the registry chain owned by
        // `shared`, alive for the life of this handle.
        let slot = unsafe { &*self.slot };
        slot.frontier.store(self.cursor, Ordering::SeqCst);
    }

    /// Advance the shared frontier hint to at least `k`.
    fn publish_hint(&self, k: usize) {
        // ordering: Release [site: universal.hint_pub] — a reader
        // that acquire-loads this value
        // starts threading at it and skips the decided prefix below
        // without observing those decides itself; the release store
        // hands over this thread's happens-before edge to every decide
        // below `k` (observed directly via its own SeqCst decide RMWs,
        // or inherited from the hint it started from). When the
        // `fetch_max` is a no-op the current value was itself
        // Release-published by a thread with the same property, so the
        // edge readers need still exists. Off the per-decide fast path,
        // so the cost is negligible.
        #[cfg(not(feature = "mutant-relaxed-hint"))]
        self.shared.hint.fetch_max(k, Ordering::Release);
        // ordering: Relaxed [no-edge] — DELIBERATELY WRONG. The `mutant-relaxed-hint`
        // feature reintroduces the PR-2 bug (hint published without a
        // release edge) so the happens-before checker's regression test
        // can prove it flags this class mechanically. Never enable
        // outside that test.
        #[cfg(feature = "mutant-relaxed-hint")]
        self.shared.hint.fetch_max(k, Ordering::Relaxed);
    }

    /// Replay any outstanding log entries and return a copy of the
    /// current abstract state (a linearizable read of the whole
    /// object). On the checkpointed path this also performs the same
    /// checkpoint/frontier duty as an invoke. On a *retired* handle the
    /// replay is unpinned (the frontier stays `usize::MAX`), so it is a
    /// quiescent diagnostic there — as the decided-log walks already
    /// are.
    pub fn refresh(&mut self) -> S {
        if self.retired {
            // `retire()` unpinned our frontier, so any amount of later
            // activity by other handles may have reclaimed the segment
            // the cached `replay_seg` points at — never touch it again.
            // Under the quiescence contract (no invoke in flight) the
            // chain is stable for the duration of this call: re-anchor
            // at the retained root, exactly as `walk_decided` does.
            let root = self.shared.oldest.load(Ordering::SeqCst).cast_const();
            // SAFETY: quiescence — the chain root is stable and no
            // segment is freed while this diagnostic runs.
            let base = unsafe { &*root }.base;
            self.replay_seg = root;
            self.thread_seg = root;
            if self.cursor < base {
                // Truncation passed our cursor while we were retired.
                // Truncation implies a decided checkpoint at `cp_pos`
                // with the whole prefix up to it decided and its
                // segment retained (the reclaim bound never passes
                // `cp_pos`), so scanning from the root finds a
                // checkpoint before any null slot: adopt it, exactly
                // as a late registrant bootstraps. The image's
                // `applied` watermarks keep the dedup exact across the
                // jump.
                let mut seg = root;
                // progress: bounded — one hop per installed segment; truncation
                // retains a decided checkpoint, so the jump lands within the
                // chain.
                'adopt: loop {
                    // SAFETY: quiescence, as above.
                    let s = unsafe { &*seg };
                    for (i, ls) in s.slots.iter().enumerate() {
                        let raw = ls.load(Ordering::SeqCst);
                        assert!(
                            !raw.is_null(),
                            "truncation implies a retained decided checkpoint"
                        );
                        // SAFETY: a non-null slot owns its decided
                        // entry; segment alive as above.
                        if let LogEntry::Checkpoint(img) = unsafe { &*raw } {
                            self.state = img.state.clone();
                            self.applied = img.applied.clone();
                            self.cursor = s.base + i + 1;
                            self.replay_seg = seg;
                            self.thread_seg = seg;
                            break 'adopt;
                        }
                    }
                    let next = s.next.load(Ordering::SeqCst);
                    assert!(
                        !next.is_null(),
                        "truncation implies a retained decided checkpoint"
                    );
                    seg = next;
                }
            }
        }
        // progress: bounded — applies one decided position per
        // iteration; stops at the first undecided slot.
        loop {
            self.replay_seg = self.shared.seg_for(self.replay_seg, self.cursor);
            // ordering: Acquire [pairs: universal.decide,
            // universal.cp_install] — same slot-publication edges as
            // the replay loop.
            let raw = self.shared.slot(self.replay_seg, self.cursor).load(Ordering::Acquire);
            if raw.is_null() {
                break;
            }
            // SAFETY: as in `try_invoke`'s replay — the slot owns the
            // entry and the segment is pinned by our frontier (or by
            // quiescence on a retired handle).
            let le = unsafe { &*raw };
            self.cursor += 1;
            self.apply_members(le);
        }
        if !self.retired {
            // All positions below `cursor` are decided (we replayed
            // them), so the hint invariant is preserved; publishing
            // keeps later log-free reads from re-walking this prefix.
            self.publish_hint(self.cursor);
            self.maybe_checkpoint();
            self.publish_frontier();
        }
        self.state.clone()
    }

    /// Apply every not-yet-applied member of a decided entry to this
    /// handle's replica, advancing the per-thread dedup watermarks.
    /// Checkpoint entries contribute no members. Shared by the pure
    /// catch-up replays (`refresh`, `try_read`); `try_invoke`'s replay
    /// loop keeps its own copy because it additionally watches for the
    /// caller's own response and fires the `universal::replay`
    /// failpoint per applied op.
    fn apply_members(&mut self, le: &LogEntry<S>) {
        for m in le.members() {
            if m.tid >= self.applied.len() {
                self.applied.resize(m.tid + 1, 0);
            }
            if m.seq != self.applied[m.tid] {
                continue; // duplicate from helping
            }
            self.state.apply(Pid(m.tid), &m.op);
            self.applied[m.tid] += 1;
        }
    }

    /// Linearizable **log-free** read: evaluate `f` against this
    /// handle's replica caught up to the decided frontier observed on
    /// entry, without announcing, allocating, or CASing anything.
    ///
    /// §4.1 needs consensus only to order *mutations*; a read is
    /// answered from any replica that has replayed past an observed
    /// frontier, linearized at the moment the frontier was read:
    ///
    /// 1. Acquire-load the `hint` word (clamped to the handle's own
    ///    replay cursor) — **the linearization point**. `try_invoke`'s
    ///    completion-side `publish_hint` guarantees the hint is past
    ///    every *completed* invocation's position, so the read observes
    ///    every operation that returned before it began; ops decided
    ///    after the load are concurrent with the read and legitimately
    ///    invisible. See DESIGN.md §14 for the full argument.
    /// 2. Replay the replica up to exactly that frontier. The gap is
    ///    fixed at step 1, so the work is bounded — wait-free without
    ///    any helping.
    /// 3. Evaluate `f` against the replica.
    ///
    /// The only shared-memory effect is re-publishing this handle's
    /// replay frontier (a plain store to its own registry slot, which
    /// lets segment reclamation advance); the log itself sees zero
    /// appends and zero RMWs — `invokes`/`decides`/
    /// `last_decided_position` are untouched, which the no-trace tests
    /// assert. Unlike [`Self::refresh`], `read` never proposes a
    /// checkpoint (that duty stays on mutators) and never clones the
    /// state: `f` borrows the replica in place.
    ///
    /// # Panics
    ///
    /// Panics if the handle is retired; use [`Self::try_read`] to
    /// handle that as a value.
    pub fn read<R>(&mut self, f: impl FnOnce(&S) -> R) -> R {
        match self.try_read(f) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Self::read`], reporting a retired handle as a typed error
    /// instead of panicking. A retired handle's frontier is unpinned
    /// (`usize::MAX`), so its cached segments may be reclaimed at any
    /// time — the quiescent diagnostics (`refresh`, the decided-log
    /// walks) re-anchor under the quiescence contract, but a
    /// linearizable read offers no such contract, so it refuses.
    ///
    /// # Errors
    ///
    /// [`UniversalError::Retired`] after [`WfHandle::retire`]; nothing
    /// was read and the call had no effect.
    pub fn try_read<R>(&mut self, f: impl FnOnce(&S) -> R) -> Result<R, UniversalError> {
        if self.retired {
            return Err(UniversalError::Retired { tid: self.tid });
        }
        // ordering: Acquire [pairs: universal.hint_pub] — the
        // linearization point. Pairs with the Release `fetch_max` in
        // `publish_hint`: the load inherits the
        // publisher's happens-before edge to every decide below the
        // value, so the slots replayed below never read null. Clamped
        // to `cursor`: the hint is global and monotone, but this
        // handle may already have replayed past a stale value.
        let frontier = self.shared.hint.load(Ordering::Acquire).max(self.cursor);
        failpoint!("universal::read");
        // progress: bounded — `cursor` advances one position per
        // iteration up to the frontier read on entry.
        while self.cursor < frontier {
            self.replay_seg = self.shared.seg_for(self.replay_seg, self.cursor);
            // ordering: Acquire [pairs: universal.decide,
            // universal.cp_install] — same slot-publication edges as
            // the replay loop.
            let raw = self.shared.slot(self.replay_seg, self.cursor).load(Ordering::Acquire);
            assert!(
                !raw.is_null(),
                "hint is a lower bound on the first undecided position"
            );
            // SAFETY: a non-null slot owns its decided entry, and the
            // segment cannot be reclaimed: its end() exceeds this
            // handle's published frontier (≤ cursor), which the
            // reclaim bound never passes.
            let le = unsafe { &*raw };
            self.cursor += 1;
            self.apply_members(le);
        }
        self.publish_frontier();
        Ok(f(&self.state))
    }

    /// Total log positions this handle has replayed (diagnostics). A
    /// combined batch counts as one position however many ops it
    /// carries; on the checkpointed path an adopting registrant starts
    /// already past the checkpoint position.
    #[must_use]
    pub fn replayed(&self) -> usize {
        self.cursor
    }

    /// The decided *retained* prefix of the log as `(tid, seq)` pairs,
    /// from the oldest retained segment to the first undecided slot,
    /// with batches flattened in decide order — so the Wing–Gong
    /// checker and the cross-implementation equivalence tests keep
    /// per-op granularity regardless of how ops were grouped into
    /// positions (the cell path emits the same shape). Checkpoint
    /// entries contribute nothing. Without checkpointing "retained"
    /// is the whole log, exactly as before. Read-only diagnostic;
    /// quiescently consistent: call it only when no invoke is in
    /// flight (or under the deterministic scheduler).
    #[must_use]
    pub fn decided_log(&self) -> Vec<(usize, usize)> {
        self.walk_decided(|out, le| {
            for m in le.members() {
                out.push((m.tid, m.seq));
            }
        })
    }

    /// The decided retained prefix grouped by log position: one inner
    /// vector of `(tid, seq)` pairs per decide, checkpoint positions
    /// skipped. Per-op and cell logs have only singleton groups;
    /// `decided_batches().len()` vs `decided_log().len()` measures how
    /// much combining happened.
    #[must_use]
    pub fn decided_batches(&self) -> Vec<Vec<(usize, usize)>> {
        self.walk_decided(|out, le| {
            if !matches!(le, LogEntry::Checkpoint(_)) {
                out.push(le.members().iter().map(|m| (m.tid, m.seq)).collect());
            }
        })
    }

    /// Walk decided slots from the oldest retained segment to the first
    /// null, feeding each `LogEntry` to `push`. The walk pins segments
    /// with this slot's hazard (restarting from scratch if a hop races
    /// a detach), except on a retired handle — whose slot may already
    /// belong to a new owner — where it relies on the documented
    /// quiescence contract instead.
    fn walk_decided<T>(&self, mut push: impl FnMut(&mut Vec<T>, &LogEntry<S>)) -> Vec<T> {
        // SAFETY: `slot` points into the registry chain owned by
        // `shared`, alive for the life of this handle.
        let slot = unsafe { &*self.slot };
        let pin = !self.retired;
        let mut out = Vec::new();
        // progress: lock-free — a restart means a reclaimer detached a
        // segment under this walk; detaches are bounded by decided
        // checkpoints.
        'walk: loop {
            out.clear();
            let mut seg = if pin {
                shared_pin(&self.shared, slot)
            } else {
                self.shared.oldest.load(Ordering::SeqCst).cast_const()
            };
            // progress: bounded — one hop per installed segment from the
            // pinned (or quiescent) root to the observed frontier.
            loop {
                // SAFETY: pinned by the slot's segment hazard (hops are
                // validated against `reclaimed_upto` before the target
                // is dereferenced), or covered by the quiescence
                // contract on a retired handle.
                let s = unsafe { &*seg };
                for ls in s.slots.iter() {
                    // ordering: Acquire [pairs: universal.decide,
                    // universal.cp_install] — same slot-publication
                    // edges as the replay loop.
                    let raw = ls.load(Ordering::Acquire);
                    if raw.is_null() {
                        if pin {
                            slot.seg_hazard.store(0, Ordering::SeqCst);
                        }
                        return out;
                    }
                    // SAFETY: the slot owns its decided entry; segment
                    // alive as above.
                    push(&mut out, unsafe { &*raw });
                }
                // ordering: Acquire [pairs: universal.seg_install] —
                // pairs with the Release segment install in `seg_for`
                // before we walk into the next segment.
                let next = s.next.load(Ordering::Acquire);
                if next.is_null() {
                    if pin {
                        slot.seg_hazard.store(0, Ordering::SeqCst);
                    }
                    return out;
                }
                if pin {
                    // Hop: same publish-then-validate protocol as the
                    // registration bootstrap walk — including reading
                    // `s.end()` while the hazard still covers `s` (the
                    // store unpins it).
                    let s_end = s.end();
                    slot.seg_hazard.store(next as usize, Ordering::SeqCst);
                    if self.shared.reclaimed_upto.load(Ordering::SeqCst) > s_end {
                        continue 'walk;
                    }
                }
                seg = next;
            }
        }
    }
}

/// Free function so `walk_decided` can pin without borrowing `self`
/// mutably (it takes `&self`): identical to `Shared::pin_oldest`.
fn shared_pin<S: ObjectSpec>(
    shared: &Shared<S>,
    slot: &HandleSlot<S::Op>,
) -> *const Segment<S> {
    shared.pin_oldest(slot)
}

impl<S: ObjectSpec> Drop for WfHandle<S> {
    fn drop(&mut self) {
        // A dropped-without-retire handle models a crashed client: its
        // slot stays claimed (ACTIVE) and its pending op stays
        // helpable. It must still stop pinning memory. After `retire`
        // the slot may already belong to a new owner, and retire
        // already unpinned everything — leave the slot alone then.
        if !self.retired {
            // SAFETY: `slot` points into the registry chain owned by
            // `shared`, still alive (we hold the Arc).
            let slot = unsafe { &*self.slot };
            slot.frontier.store(usize::MAX, Ordering::SeqCst);
            slot.seg_hazard.store(0, Ordering::SeqCst);
            slot.entry_hazard.store(ptr::null_mut(), Ordering::SeqCst);
        }
        // Free displaced announce entries; one still pinned by a
        // concurrently stalled helper's hazard is leaked (bounded: at
        // most one per such helper) rather than freed under it.
        self.sweep_entry_limbo();
        self.shared.try_reclaim();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
    use waitfree_sched::thread;
    use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};

    #[test]
    fn single_thread_matches_spec() {
        let mut handles = WfUniversal::new(FifoQueue::new(), 1, 16);
        let mut h = handles.remove(0);
        assert_eq!(h.invoke(QueueOp::Enq(1)), QueueResp::Ack);
        assert_eq!(h.invoke(QueueOp::Enq(2)), QueueResp::Ack);
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Item(1));
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Item(2));
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Empty);
    }

    /// Small enough for `cargo miri test`: two threads, a handful of
    /// ops, crossing the announce/help path and one log segment. CI's
    /// analyze job runs every `miri_smoke_*` test under miri to check
    /// the unsafe log/segment code against the real memory model.
    #[test]
    fn miri_smoke_two_thread_counter() {
        let mut handles = WfUniversal::new(Counter::new(0), 2, 8);
        let mut b = handles.pop().unwrap();
        let mut a = handles.pop().unwrap();
        let jb = thread::spawn(move || {
            for _ in 0..3 {
                b.invoke(CounterOp::Add(1));
            }
            b
        });
        for _ in 0..3 {
            a.invoke(CounterOp::Add(1));
        }
        let _b = jb.join().unwrap();
        match a.invoke(CounterOp::Get) {
            CounterResp::Value(v) => assert_eq!(v, 6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let threads = 4;
        let per = 500;
        let handles = WfUniversal::new(Counter::new(0), threads, per + 1);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    for _ in 0..per {
                        h.invoke(CounterOp::Add(1));
                    }
                    h
                })
            })
            .collect();
        let mut finished: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let mut last = finished.pop().unwrap();
        match last.invoke(CounterOp::Get) {
            CounterResp::Value(v) => assert_eq!(v, (threads * per) as i64),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fetch_and_add_responses_are_unique_under_contention() {
        // Linearizability witness: every FetchAndAdd(1) must see a
        // distinct old value.
        let threads = 4;
        let per = 300;
        let handles = WfUniversal::new(Counter::new(0), threads, per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    (0..per)
                        .map(|_| match h.invoke(CounterOp::FetchAndAdd(1)) {
                            CounterResp::Value(v) => v,
                            other => panic!("unexpected {other:?}"),
                        })
                        .collect::<Vec<i64>>()
                })
            })
            .collect();
        let mut all: Vec<i64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<i64> = (0..(threads * per) as i64).collect();
        assert_eq!(all, expect, "each ticket taken exactly once");
    }

    #[test]
    fn queue_items_dequeued_exactly_once() {
        let threads = 4;
        let per = 200;
        let handles = WfUniversal::new(FifoQueue::new(), threads, 2 * per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                let tid = h.tid() as i64;
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..per {
                        h.invoke(QueueOp::Enq(tid * 1_000_000 + i as i64));
                        if let QueueResp::Item(v) = h.invoke(QueueOp::Deq) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "no item dequeued twice");
        assert!(total <= threads * per);
    }

    #[test]
    fn refresh_converges_across_handles() {
        let mut handles = WfUniversal::new(Counter::new(0), 2, 8);
        let mut h1 = handles.pop().unwrap();
        let mut h0 = handles.pop().unwrap();
        h0.invoke(CounterOp::Add(3));
        h0.invoke(CounterOp::Add(4));
        assert_eq!(h1.refresh(), h0.refresh(), "replicas converge");
    }

    #[test]
    fn read_observes_every_completed_invoke() {
        let mut handles = WfUniversal::new(Counter::new(0), 2, 16);
        let mut h1 = handles.pop().unwrap();
        let mut h0 = handles.pop().unwrap();
        h0.invoke(CounterOp::Add(3));
        h0.invoke(CounterOp::Add(4));
        // The other handle's read: the completed invokes published the
        // hint past their positions, so the frontier covers them.
        assert_eq!(h1.read(Counter::value), 7);
        h1.invoke(CounterOp::Add(5));
        assert_eq!(h0.read(Counter::value), 12);
        // A read after our own invoke trivially sees it (cursor clamp).
        assert_eq!(h1.read(Counter::value), 12);
    }

    #[test]
    fn read_leaves_no_trace_in_the_log() {
        let mut handles = WfUniversal::new(Counter::new(0), 2, 64);
        let mut h1 = handles.pop().unwrap();
        let mut h0 = handles.pop().unwrap();
        for _ in 0..5 {
            h0.invoke(CounterOp::Add(1));
        }
        let (inv, dec, pos) = (h1.invokes(), h1.decides(), h1.last_decided_position());
        let log_before = h0.decided_log();
        for _ in 0..100 {
            assert_eq!(h1.read(Counter::value), 5);
        }
        // Zero log appends, zero shared-log RMWs: every invoke/decide
        // diagnostic is exactly where it was, and the decided log is
        // byte-for-byte the same.
        assert_eq!(h1.invokes(), inv, "read must not count as an invoke");
        assert_eq!(h1.decides(), dec, "read must not attempt a decide");
        assert_eq!(h1.last_decided_position(), pos);
        assert_eq!(h0.decided_log(), log_before, "read must not grow the log");
        // The next mutation lands at the same position it would have
        // without the reads.
        h0.invoke(CounterOp::Add(1));
        assert_eq!(h0.last_decided_position(), Some(log_before.len()));
    }

    #[test]
    fn read_on_a_retired_handle_is_a_typed_error() {
        let mut handles = WfUniversal::new(Counter::new(7), 1, 8);
        let mut h = handles.remove(0);
        h.invoke(CounterOp::Add(1));
        h.retire();
        match h.try_read(Counter::value) {
            Err(UniversalError::Retired { .. }) => {}
            other => panic!("expected Retired, got {other:?}"),
        }
    }

    #[test]
    fn read_stays_exact_across_checkpoint_truncation() {
        // Checkpoint every 8 positions on a 2-handle log: drive enough
        // ops that whole segments are reclaimed, reading throughout.
        let mut handles = WfUniversal::new_checkpointed(Counter::new(0), 2, 512, 8);
        let mut h1 = handles.pop().unwrap();
        let mut h0 = handles.pop().unwrap();
        for i in 0..300i64 {
            h0.invoke(CounterOp::Add(1));
            assert_eq!(h1.read(Counter::value), i + 1);
        }
        assert!(h0.reclaimed_segments() > 0, "truncation actually ran");
    }

    #[test]
    fn concurrent_reads_are_monotone_and_bounded() {
        let threads = 4;
        let per = 300;
        let handles = WfUniversal::new(Counter::new(0), threads, per + 1);
        let joins: Vec<_> = handles
            .into_iter()
            .enumerate()
            .map(|(i, mut h)| {
                thread::spawn(move || {
                    if i == 0 {
                        // Pure reader: values must be monotone (each read
                        // linearizes at its frontier load, and frontiers
                        // only advance) and within [0, writers*per].
                        let mut last = 0;
                        for _ in 0..per {
                            let v = h.read(Counter::value);
                            assert!(v >= last, "reads ran backwards: {v} < {last}");
                            assert!(v <= ((threads - 1) * per) as i64);
                            last = v;
                        }
                        assert_eq!(h.invokes(), 0);
                        assert_eq!(h.decides(), 0);
                    } else {
                        for _ in 0..per {
                            h.invoke(CounterOp::Add(1));
                        }
                    }
                    h
                })
            })
            .collect();
        let mut done: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let total = ((threads - 1) * per) as i64;
        for h in &mut done {
            assert_eq!(h.read(Counter::value), total);
        }
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn op_budget_is_enforced() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 1);
        let mut h = handles.remove(0);
        h.invoke(CounterOp::Add(1));
        h.invoke(CounterOp::Add(1));
    }

    #[test]
    fn log_full_is_a_typed_error_not_a_panic() {
        // A deliberately tiny cap: the third operation has no undecided
        // position left.
        let mut handles = WfUniversal::with_capacity(Counter::new(0), 1, 8, 2);
        let mut h = handles.remove(0);
        assert!(h.try_invoke(CounterOp::Add(1)).is_ok());
        assert!(h.try_invoke(CounterOp::Add(1)).is_ok());
        match h.try_invoke(CounterOp::Add(1)) {
            Err(UniversalError::LogFull { position, capacity }) => {
                assert_eq!(position, 2);
                assert_eq!(capacity, 2);
            }
            other => panic!("expected LogFull, got {other:?}"),
        }
    }

    #[test]
    fn log_full_stays_logfull_without_reannouncing() {
        // Once an op hits LogFull it stays announced; repeat attempts
        // must keep failing the same way *without* announcing more (the
        // at-most-one-pending invariant would otherwise break).
        let mut handles = WfUniversal::with_capacity(Counter::new(0), 1, 8, 2);
        let mut h = handles.remove(0);
        assert!(h.try_invoke(CounterOp::Add(1)).is_ok());
        assert!(h.try_invoke(CounterOp::Add(1)).is_ok());
        for _ in 0..3 {
            assert_eq!(
                h.try_invoke(CounterOp::Add(1)),
                Err(UniversalError::LogFull { position: 2, capacity: 2 })
            );
        }
    }

    #[test]
    fn uncapped_log_outgrows_the_old_arena_formula() {
        // The seed arena would have held 2·1·4 + 16 = 24 positions; the
        // segmented log happily passes any fixed bound.
        let per = 3 * SEGMENT_SIZE;
        let mut handles = WfUniversal::new(Counter::new(0), 1, per + 1);
        let mut h = handles.remove(0);
        for _ in 0..per {
            h.invoke(CounterOp::Add(1));
        }
        assert_eq!(h.invoke(CounterOp::Get), CounterResp::Value(per as i64));
        assert!(h.segments() >= 3, "log grew across segments: {}", h.segments());
    }

    #[test]
    fn budget_error_is_typed_stable_and_effect_free() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 2);
        let mut h = handles.remove(0);
        h.invoke(CounterOp::Add(1));
        h.invoke(CounterOp::Add(1));
        for _ in 0..3 {
            assert_eq!(
                h.try_invoke(CounterOp::Add(1)),
                Err(UniversalError::BudgetExhausted { tid: 0, max_ops: 2 })
            );
        }
        // The failed attempts announced nothing: a fresh handle's replay
        // sees exactly two additions.
        assert_eq!(h.refresh(), {
            let mut c = Counter::new(0);
            c.apply(Pid(0), &CounterOp::Add(1));
            c.apply(Pid(0), &CounterOp::Add(1));
            c
        });
    }

    #[test]
    fn error_display_names_the_resource() {
        let log = UniversalError::LogFull { position: 9, capacity: 9 };
        assert!(log.to_string().contains("log arena exhausted"));
        let budget = UniversalError::BudgetExhausted { tid: 3, max_ops: 7 };
        assert!(budget.to_string().contains("budget"));
    }

    #[test]
    fn threading_steps_are_counted_and_bounded_solo() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 8);
        let mut h = handles.remove(0);
        assert_eq!(h.max_threading_steps(), 0);
        h.invoke(CounterOp::Add(1));
        // Alone, threading one op takes exactly one consensus decide.
        assert_eq!(h.last_threading_steps(), 1);
        assert_eq!(h.max_threading_steps(), 1);
        assert_eq!(h.n(), 1);
        assert!(h.combining());
    }

    #[test]
    fn counters_track_decides_solo() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 8);
        let mut h = handles.remove(0);
        for _ in 0..5 {
            h.invoke(CounterOp::Add(1));
        }
        // Alone: one decide per op, none lost, batches all singletons.
        assert_eq!(h.invokes(), 5);
        assert_eq!(h.decides(), 5);
        assert_eq!(h.cas_failures(), 0);
        assert_eq!(h.decided_batches().len(), 5);
        assert!(h.decided_batches().iter().all(|b| b.len() == 1));
    }

    #[test]
    fn per_op_and_combining_agree_when_uncontended() {
        // Without contention the combining path degenerates to exactly
        // the per-op behaviour: same responses, same (flat) decided log.
        let script = [
            QueueOp::Enq(4),
            QueueOp::Enq(5),
            QueueOp::Deq,
            QueueOp::Deq,
            QueueOp::Deq,
            QueueOp::Enq(6),
            QueueOp::Deq,
        ];
        let mut batched = WfUniversal::new(FifoQueue::new(), 1, script.len()).remove(0);
        let mut per_op = WfUniversal::new_per_op(FifoQueue::new(), 1, script.len()).remove(0);
        assert!(!per_op.combining());
        for op in &script {
            assert_eq!(batched.invoke(op.clone()), per_op.invoke(op.clone()), "{op:?}");
        }
        assert_eq!(batched.decided_log(), per_op.decided_log());
    }

    #[test]
    fn decided_batches_flatten_to_decided_log() {
        // Under contention positions may hold multi-op batches; the
        // flattened view must match `decided_log` exactly and account
        // for every completed op once.
        let threads = 4;
        let per = 300;
        let handles = WfUniversal::new(Counter::new(0), threads, per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    for _ in 0..per {
                        h.invoke(CounterOp::Add(1));
                    }
                    h
                })
            })
            .collect();
        let finished: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let h = &finished[0];
        let flat = h.decided_log();
        let grouped: Vec<(usize, usize)> =
            h.decided_batches().into_iter().flatten().collect();
        assert_eq!(flat, grouped, "flattened batches are the decided log");
        // Dedup to first occurrences: every op appears.
        let mut firsts = std::collections::HashSet::new();
        for pair in &flat {
            firsts.insert(*pair);
        }
        assert_eq!(firsts.len(), threads * per, "every op threaded");
        // Positions never exceed ops (combining only packs tighter).
        assert!(h.decided_batches().len() <= flat.len());
    }

    #[test]
    fn per_op_position_consumption_is_bounded() {
        // Wait-freedom evidence: with helping, total positions consumed
        // stay within 2·n·ops even under contention (each entry appears
        // at most twice per mode's duplication bound; combining only
        // packs positions tighter).
        let threads = 3;
        let per = 400;
        let handles = WfUniversal::new(Counter::new(0), threads, per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    for _ in 0..per {
                        h.invoke(CounterOp::Add(1));
                    }
                    h.segments()
                })
            })
            .collect();
        for j in joins {
            let segments = j.join().unwrap();
            let max_positions = 2 * threads * per;
            assert!(
                (segments - 1) * SEGMENT_SIZE <= max_positions,
                "{segments} segments exceeds the 2·n·ops position bound"
            );
        }
    }

    #[test]
    fn retired_handle_returns_typed_error_not_a_panic() {
        let obj = WfUniversal::new_dynamic(Counter::new(0), 8);
        let mut h = obj.register();
        assert_eq!(h.invoke(CounterOp::FetchAndAdd(1)), CounterResp::Value(0));
        assert!(!h.is_retired());
        h.retire();
        h.retire(); // idempotent
        assert!(h.is_retired());
        for _ in 0..3 {
            assert_eq!(
                h.try_invoke(CounterOp::Add(1)),
                Err(UniversalError::Retired { tid: 0 })
            );
        }
        // The failed attempts announced nothing; the object still works
        // through a fresh registration.
        let mut h2 = obj.register();
        assert_eq!(h2.invoke(CounterOp::Get), CounterResp::Value(1));
    }

    #[test]
    fn retired_error_display_names_the_slot() {
        let e = UniversalError::Retired { tid: 5 };
        assert!(e.to_string().contains("retired"));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn registry_is_bounded_by_peak_active_not_total_arrivals() {
        // 100 arrivals, never more than one active at a time: the whole
        // churn runs on a single recycled slot.
        let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
        for i in 0..100 {
            let mut h = obj.register();
            assert_eq!(h.tid(), 0, "sequential churn reuses slot 0");
            h.invoke(CounterOp::Add(1));
            h.retire();
            assert_eq!(obj.total_arrivals(), i + 1);
        }
        assert_eq!(obj.registry_slots(), 1);
        assert_eq!(obj.peak_active(), 1);
        assert_eq!(obj.active_handles(), 0);
        let mut probe = obj.register();
        assert_eq!(probe.invoke(CounterOp::Get), CounterResp::Value(100));
    }

    #[test]
    fn register_grows_past_a_registry_segment() {
        let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
        let mut handles: Vec<_> = (0..2 * REGISTRY_SEGMENT).map(|_| obj.register()).collect();
        assert_eq!(obj.registry_slots(), 2 * REGISTRY_SEGMENT);
        assert_eq!(obj.peak_active(), 2 * REGISTRY_SEGMENT);
        for (i, h) in handles.iter_mut().enumerate() {
            assert_eq!(h.tid(), i);
            h.invoke(CounterOp::Add(1));
        }
        let total = handles[0].refresh();
        assert_eq!(total, {
            let mut c = Counter::new(0);
            for t in 0..2 * REGISTRY_SEGMENT {
                c.apply(Pid(t), &CounterOp::Add(1));
            }
            c
        });
    }

    #[test]
    fn budget_renews_per_registration_and_seqs_continue() {
        let obj = WfUniversal::new_dynamic(Counter::new(0), 2);
        let mut h = obj.register();
        h.invoke(CounterOp::Add(1));
        h.invoke(CounterOp::Add(1));
        assert_eq!(
            h.try_invoke(CounterOp::Add(1)),
            Err(UniversalError::BudgetExhausted { tid: 0, max_ops: 2 })
        );
        h.retire();
        // Re-registering the same slot grants a fresh budget; sequence
        // numbers continue (the `announced` watermark is per-slot, not
        // per-registration), so the replay dedup stays sound across
        // reuse.
        let mut h = obj.register();
        assert_eq!(h.tid(), 0);
        h.invoke(CounterOp::Add(1));
        h.invoke(CounterOp::Add(1));
        assert_eq!(
            h.try_invoke(CounterOp::Add(1)),
            Err(UniversalError::BudgetExhausted { tid: 0, max_ops: 2 })
        );
        assert_eq!(h.refresh(), {
            let mut c = Counter::new(0);
            for _ in 0..4 {
                c.apply(Pid(0), &CounterOp::Add(1));
            }
            c
        });
    }

    #[test]
    fn dropped_without_retire_costs_one_slot_and_stays_consistent() {
        // A crashed client: handle dropped, never retired. Its slot is
        // not reclaimable, so the next arrival claims a fresh one — and
        // the object keeps linearizing.
        let obj = WfUniversal::new_dynamic(Counter::new(0), 8);
        let mut crashed = obj.register();
        crashed.invoke(CounterOp::Add(10));
        drop(crashed);
        assert_eq!(obj.active_handles(), 1, "crashed client stays counted");
        let mut h = obj.register();
        assert_eq!(h.tid(), 1, "leaked slot is skipped, not reused");
        assert_eq!(h.invoke(CounterOp::Get), CounterResp::Value(10));
        assert_eq!(obj.registry_slots(), 2);
    }

    #[test]
    fn announce_cell_is_reused_across_many_ops() {
        // The announce path is a single recycled cell per slot (the old
        // chunked append-only announce log is gone): any number of ops
        // runs in O(1) announce storage, with displaced entries freed
        // through the owner's limbo sweep along the way.
        let per = 4 * ENTRY_LIMBO_SWEEP + 2;
        let obj = WfUniversal::new_dynamic(Counter::new(0), per + 1);
        let mut h = obj.register();
        for _ in 0..per {
            h.invoke(CounterOp::Add(1));
        }
        assert_eq!(h.invoke(CounterOp::Get), CounterResp::Value(per as i64));
    }

    /// Churn across the announce/help path under real threads, small
    /// enough for `cargo miri test` (CI's analyze job runs every
    /// `miri_smoke_*` test under miri): register/invoke/retire cycles
    /// exercising slot claim, reuse, and announce-cell recycling
    /// against the real memory model.
    #[test]
    fn miri_smoke_churn_register_retire_respawn() {
        let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
        let other = obj.clone();
        let jb = thread::spawn(move || {
            for _ in 0..3 {
                let mut h = other.register();
                h.invoke(CounterOp::Add(1));
                h.retire();
            }
        });
        for _ in 0..3 {
            let mut h = obj.register();
            h.invoke(CounterOp::Add(1));
            h.retire();
        }
        jb.join().unwrap();
        let mut probe = obj.register();
        match probe.invoke(CounterOp::Get) {
            CounterResp::Value(v) => assert_eq!(v, 6),
            other => panic!("unexpected {other:?}"),
        }
        assert!(obj.registry_slots() <= 2, "churn of 2 threads needs at most 2 slots");
        assert_eq!(obj.total_arrivals(), 7);
    }

    #[test]
    fn checkpointed_log_truncates_and_preserves_state() {
        // Sequential sanity for the tentpole: run far past several
        // checkpoint cadences, then check (a) checkpoints were decided,
        // (b) whole segments were reclaimed, (c) the live-segment count
        // is bounded by the frontier spread — constant — rather than by
        // total ops, and (d) the state is still exact.
        let every = SEGMENT_SIZE / 2;
        let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), 600, every);
        let mut h = obj.register();
        let per = 8 * SEGMENT_SIZE;
        for _ in 0..per {
            h.invoke(CounterOp::Add(1));
        }
        assert!(h.checkpoints() >= 2, "cadence fired: {}", h.checkpoints());
        assert!(
            obj.reclaimed_segments() >= 4,
            "old segments reclaimed: {}",
            obj.reclaimed_segments()
        );
        assert!(
            obj.live_segments() <= 3,
            "live segments bounded by frontier spread, got {}",
            obj.live_segments()
        );
        assert_eq!(h.invoke(CounterOp::Get), CounterResp::Value(per as i64));
        // The retained decided prefix starts past the truncation point:
        // far fewer pairs than total ops.
        assert!(h.decided_log().len() < per / 2);
    }

    #[test]
    fn late_registrant_adopts_checkpoint() {
        // A handle that arrives after truncation cannot replay from
        // position 0 (those segments are gone): it must bootstrap from
        // a retained checkpoint image and still observe the full state.
        let every = SEGMENT_SIZE / 2;
        let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), 600, every);
        let mut h = obj.register();
        let per = 6 * SEGMENT_SIZE;
        for _ in 0..per {
            h.invoke(CounterOp::Add(1));
        }
        assert!(obj.reclaimed_segments() >= 1, "truncation happened");
        let mut late = obj.register();
        assert!(
            late.replayed() > 0,
            "late registrant started from a checkpoint, not position 0"
        );
        assert_eq!(late.invoke(CounterOp::Get), CounterResp::Value(per as i64));
        // And it participates normally from there.
        late.invoke(CounterOp::Add(5));
        assert_eq!(h.invoke(CounterOp::Get), CounterResp::Value(per as i64 + 5));
    }

    #[test]
    fn checkpointed_matches_unbounded_sequential() {
        // Same op script through a checkpointed and an unbounded object:
        // responses and final states must agree exactly (truncation is
        // invisible to the abstract object).
        let script: Vec<QueueOp> = (0..3 * SEGMENT_SIZE as i64)
            .map(|i| if i % 3 == 2 { QueueOp::Deq } else { QueueOp::Enq(i) })
            .collect();
        let obj_cp =
            WfUniversal::new_dynamic_checkpointed(FifoQueue::new(), script.len() + 1, 8);
        let obj_un = WfUniversal::new_dynamic(FifoQueue::new(), script.len() + 1);
        let mut cp = obj_cp.register();
        let mut un = obj_un.register();
        for op in &script {
            assert_eq!(cp.invoke(op.clone()), un.invoke(op.clone()), "{op:?}");
        }
        assert_eq!(cp.refresh(), un.refresh());
        assert!(cp.checkpoints() >= 1);
        assert!(obj_cp.live_segments() < obj_un.live_segments());
    }

    /// Checkpoint truncation under real threads, small enough for
    /// `cargo miri test`: two handles race invokes across several
    /// checkpoint cadences and at least one segment reclaim, exercising
    /// the hazard/frontier protocol against the real memory model.
    #[test]
    fn miri_smoke_checkpoint_truncation() {
        let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), 200, 16);
        let other = obj.clone();
        let jb = thread::spawn(move || {
            let mut h = other.register();
            for _ in 0..70 {
                h.invoke(CounterOp::Add(1));
            }
            h.retire();
        });
        let mut h = obj.register();
        for _ in 0..70 {
            h.invoke(CounterOp::Add(1));
        }
        jb.join().unwrap();
        match h.invoke(CounterOp::Get) {
            CounterResp::Value(v) => assert_eq!(v, 140),
            other => panic!("unexpected {other:?}"),
        }
        h.retire();
        obj.reclaim();
        assert!(obj.checkpoints() >= 1, "cadence fired under contention");
        assert!(obj.reclaimed_segments() >= 1, "reclaim ran under contention");
    }

    /// Regression (and `cargo miri test` coverage for the retired
    /// replay path): `retire()` unpins the handle's frontier, so later
    /// activity by other handles reclaims the segment its cached replay
    /// anchor points into — purely sequentially, no race needed. The
    /// quiescent `refresh()` diagnostic must re-anchor at the retained
    /// root (adopting a checkpoint when its cursor was truncated away)
    /// instead of dereferencing the stale cache.
    #[test]
    fn miri_smoke_retired_refresh_after_truncation() {
        let obj = WfUniversal::new_dynamic_checkpointed(Counter::new(0), 400, 16);
        let mut early = obj.register();
        early.invoke(CounterOp::Add(1));
        early.retire();
        let mut busy = obj.register();
        for _ in 0..3 * SEGMENT_SIZE {
            busy.invoke(CounterOp::Add(1));
        }
        assert!(
            obj.reclaimed_segments() >= 1,
            "truncation ran behind the retired handle"
        );
        // The retired handle's cursor (1) now lies in a freed segment;
        // its refresh must adopt a retained checkpoint and converge.
        assert_eq!(early.refresh(), busy.refresh());
        // Idempotent: a second quiescent refresh replays nothing new.
        assert_eq!(early.refresh(), busy.refresh());
    }

    #[test]
    fn entries_are_freed_with_the_object() {
        // Leak check: segments behind the reclaim bound are actually
        // freed while the object is still alive (live-segment count
        // drops back), op payloads inside them are dropped (observed by
        // refcount on a probe Arc inside the op), and object drop frees
        // everything that remains.
        let probe = Arc::new(());
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        struct Probe;
        impl waitfree_model::ObjectSpec for Probe {
            type Op = ProbeOp;
            type Resp = ();
            fn apply(&mut self, _pid: Pid, _op: &Self::Op) {}
        }
        // The field is never read: it exists so the op's drop decrements
        // the probe Arc, making leaked entries observable as refcounts.
        #[derive(Clone, Debug)]
        struct ProbeOp(#[allow(dead_code)] Arc<()>);
        impl PartialEq for ProbeOp {
            fn eq(&self, _: &Self) -> bool {
                true
            }
        }
        impl Eq for ProbeOp {}
        impl std::hash::Hash for ProbeOp {
            fn hash<H: std::hash::Hasher>(&self, _: &mut H) {}
        }

        let obj = WfUniversal::new_dynamic_checkpointed(Probe, 300, SEGMENT_SIZE / 2);
        let mut h = obj.register();
        for _ in 0..4 * SEGMENT_SIZE {
            h.invoke(ProbeOp(Arc::clone(&probe)));
        }
        assert!(h.segments() >= 4, "log spanned segments: {}", h.segments());
        assert!(Arc::strong_count(&probe) > 1, "log holds payloads");
        h.retire();
        drop(h);
        obj.reclaim();
        // Mid-life reclamation really freed memory: only the frontier
        // neighbourhood survives, and with it only a bounded number of
        // payload clones (announce cell + retained tail).
        assert!(
            obj.live_segments() <= 2,
            "retired segments freed while object lives: {} live",
            obj.live_segments()
        );
        assert!(
            Arc::strong_count(&probe) <= 2 * SEGMENT_SIZE + 2,
            "payload refs bounded by retained tail, got {}",
            Arc::strong_count(&probe)
        );
        drop(obj);
        assert_eq!(Arc::strong_count(&probe), 1, "all log references freed");
    }
}
