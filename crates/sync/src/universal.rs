//! A wait-free universal object on hardware atomics — the optimised
//! pointer-CAS rendering, with batch combining.
//!
//! The practical rendering of §4's universality result: a shared log in
//! which each position is decided by a *single* `AtomicPtr`
//! compare-exchange (Theorem 7 compiled to one hardware primitive), plus
//! an announce array with a helping discipline that bounds every
//! operation — the difference between *lock-free* (someone wins) and
//! *wait-free* (everyone finishes) is exactly the helping.
//!
//! This module replaces the original 3-atomic-op
//! [`ConsensusCell`](crate::consensus::ConsensusCell) hot path, which is
//! preserved verbatim in [`crate::universal_cell`] as the fidelity
//! baseline for the explorer/model crates and for the before/after
//! benchmark (`bench_universal`). Three structural changes make this
//! path fast:
//!
//! * **Pointer consensus.** A log position is one
//!   `AtomicPtr<LogEntry>`: null means undecided, and the first
//!   successful CAS from null wins. Proposals are `Arc`s, so announcing,
//!   candidate construction and replay never clone the operation
//!   payload — every hand-off is a refcount bump. The cell path did
//!   slot-write + usize-CAS + slot-read per decide and cloned the
//!   `Entry` on every iteration.
//! * **Segmented, lazily grown log.** Instead of an eagerly allocated
//!   `2·n·max_ops + 16` arena of n-slot cells (O(n²·max_ops) memory
//!   before the first op), the log is a linked list of fixed-size
//!   segments. A thread that walks off the end allocates the next
//!   segment and installs it with a CAS on the link; the loser of that
//!   race frees its duplicate and follows the winner — growth is itself
//!   wait-free (one CAS attempt, then proceed). [`WfUniversal::new`]
//!   builds an *unbounded* log; [`UniversalError::LogFull`] remains as
//!   an explicit opt-in cap via [`WfUniversal::with_capacity`] for the
//!   fault tests.
//! * **Batch combining** (default; see DESIGN.md §9). Before deciding
//!   position `k`, a thread scans the announce array and collects
//!   *every* currently-pending announced operation into one
//!   [`LogEntry::Batch`], so a single winning CAS threads up to `n`
//!   operations and the losers find their op already decided instead of
//!   retrying. Under contention this drops decides per completed
//!   operation from ~1 toward 1/n (amortized O(1) RMWs on the contended
//!   slot), while the worst case keeps the per-op helping bound — the
//!   scan starts at position `k`'s preferred thread, so the batch is
//!   always a superset of the per-op candidate. [`WfUniversal::new_per_op`]
//!   preserves the PR-2 one-op-per-decide candidate selection for
//!   benchmarks and differential tests.
//!
//! * **Dynamic membership** (this PR's layer). The paper fixes the
//!   process set `n` at creation time; a production service does not.
//!   Following the infinite-arrival construction of
//!   Bonin–Mostéfaoui–Perrin (PAPERS.md), the static announce array is
//!   replaced by a *registry*: a segmented, lazily grown array of
//!   handle slots, each claimed by one CAS. [`WfUniversal::register`]
//!   is wait-free — every failed claim CAS implies a *different*
//!   concurrent registrant's success, so the scan's step count is
//!   bounded by the number of concurrently arriving clients.
//!   [`WfHandle::retire`] marks a slot departed; a quiesced retired
//!   slot is reclaimed (lazily, by the next registrant to scan past
//!   it), so registry memory is bounded by the *peak number of
//!   concurrently active handles*, never by total arrivals. A client
//!   that crashes without retiring degrades gracefully: its at-most-one
//!   pending op stays announced and helpable forever, and it costs
//!   exactly one registry slot — never a wedged helping loop, because
//!   helpers skip a slot with nothing pending in two loads.
//!
//! How an operation executes (unchanged from Figure 4-5's algorithm):
//!
//! 1. **Announce** the operation in the caller's announce slot.
//! 2. **Thread** it onto the log: repeatedly take the first undecided
//!    position `k` and run consensus on a candidate — in combining mode
//!    the batch of all pending announced ops (scanned starting from
//!    position `k`'s *preferred slot* `k mod hi`, where `hi` is the
//!    registered-slot high-water), in per-op mode the preferred slot's
//!    pending entry or the caller's own. Once every position
//!    periodically prefers each slot, an announced operation is
//!    threaded within `hi` positions: the wait-free bound, restated
//!    over peak active handles instead of a static `n`.
//! 3. **Replay** the log from the handle's cached state up to the caller's
//!    entry to compute the response (§4.1's `eval`/`apply`).
//!
//! Helping can thread the same entry into several positions (helpers and
//! the owner may each win with a batch containing it); replay
//! deduplicates by per-thread sequence number, the standard fix. The
//! first occurrence of `(t, s)` in log order is always in per-thread
//! sequence order: a batch can only contain `(t, s)` if its collect scan
//! observed `done[t] == s`, which happens-after the decide that threaded
//! `(t, s-1)` — and the decided prefix is contiguous, so that decide
//! sits at a lower position.
//!
//! # Memory orderings
//!
//! The decide CAS stays `SeqCst` on success — it is the linearization
//! point and the paper's consensus primitive. Every relaxation off that
//! spine carries an adjacent `// ordering:` audit comment naming the
//! happens-before edge it relies on (the `wf-lint` binary in
//! `waitfree-analyze` enforces the comment; the happens-before pass in
//! `waitfree_sched::hb` checks the claimed edges against recorded
//! schedules); the summary:
//!
//! * segment `next` links: `Release` install / `Acquire` follow, so a
//!   segment's initialized header and null slots are visible before the
//!   segment is reachable;
//! * slot loads (replay, frontier scan): `Acquire`, pairing with the
//!   release half of the winner's `SeqCst` CAS, so the `LogEntry`
//!   pointed to is fully visible;
//! * the `hint` word: `Release` publish / `Acquire` read — it is a
//!   heuristic lower bound on the first undecided position, but a
//!   thread that starts threading at the hint skips the prefix below it
//!   without ever touching those slots, so the replay loop's
//!   decided-prefix invariant must be inherited from the publisher: the
//!   acquire load carries the publisher's happens-before edge to every
//!   decide below the published value. Staleness still only costs
//!   extra (already-decided) iterations;
//! * the `segments` diagnostic counter: `AcqRel` bump / `Acquire` read,
//!   so a reported count of `n` implies the `n` installs it counts are
//!   visible to the reader;
//! * registry segment `next` links and per-slot announce-chunk `next`
//!   links: `Release` install / `Acquire` follow, the same idiom (and
//!   the same audit obligations) as the log's segment chain;
//! * `slots_hi`, the registered-slot high-water: `AcqRel` `fetch_max`
//!   on claim / `Acquire` read, so a scanner that reads `hi` can reach
//!   every slot below it through the registry chain;
//! * a slot's `announce_latest` chunk hint: `Release` store by the
//!   owner on chunk install / `Acquire` read by helpers — purely a
//!   walk-shortening hint; a stale value costs a walk from an earlier
//!   chunk, never a missed cell;
//! * slot `state` (free / active / retired): `SeqCst` — claim and
//!   retirement are rare membership events, kept on the strongest
//!   ordering so slot hand-over inherits the departing owner's
//!   announce writes;
//! * `announced`/`done` (now per registry slot): `SeqCst` — they form
//!   the announce/help handshake the helping bound is proved against,
//!   and they are off the per-iteration fast path. The combining
//!   collect scan reads both through `pending`'s `SeqCst` loads, one
//!   pair per slot: seeing `announced > done` must imply the announce
//!   cell is populated (the announcer's cell write is sequenced before
//!   its `SeqCst` store to `announced`), and a batch member `(t, s)`
//!   must imply `(t, s-1)` was already threaded (the `SeqCst` load of
//!   `done` sits after the decider's `SeqCst` `fetch_max` in the
//!   single total order). Sequence numbers continue across slot reuse
//!   — a re-registered slot's first op takes `seq = announced` — so
//!   the `(tid, seq)` replay dedup stays sound over churn.
//!
//! # Failpoint sites (feature `failpoints`)
//!
//! | site | placed |
//! |------|--------|
//! | `universal::register`  | on entry to `register`, before any slot is claimed |
//! | `universal::retire`    | after the slot is marked retired, before reclamation |
//! | `universal::announce`  | before the announce-slot write |
//! | `universal::announced` | after the announce is published, before threading |
//! | `universal::collect`   | before the announce-array scan that builds a combined batch (combining mode only) |
//! | `universal::cas`       | in the threading loop, before each consensus decide |
//! | `universal::decided`   | after a decide, before the position advances |
//! | `universal::replay`    | in the replay loop, per applied operation |
//!
//! The shared sites carry the same names as the baseline's
//! ([`crate::universal_cell`]), so one adversary plan stresses either
//! path (`universal::collect` fires only on the combining path;
//! `universal::register`/`universal::retire` only on this one). A
//! thread crashed at `universal::announce` has published nothing; one
//! crashed at any later site — including mid-collect, holding refcount
//! bumps on other threads' pending entries — has an announced operation
//! that helpers may still thread, and the entries it collected stay
//! announced and helpable because a collect scan mutates nothing
//! shared. Verify such histories with `PendingPolicy::MayTakeEffect`.
//! A client crashed at `universal::register` has claimed nothing; one
//! crashed at `universal::retire` leaves its slot marked retired and
//! quiescent, which the next registrant to scan past reclaims.

use std::fmt;
use std::marker::PhantomData;
use std::ptr;
use waitfree_sched::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use waitfree_faults::failpoint;
use waitfree_model::{ObjectSpec, Pid};

/// Log positions per segment. 64 keeps a segment at one or two cache
/// pages of pointers and makes the growth tests cheap to trigger.
pub const SEGMENT_SIZE: usize = 64;

/// Handle slots per registry segment. Small, so the bounded-by-peak
/// tests can observe reuse without thousands of arrivals.
pub const REGISTRY_SEGMENT: usize = 8;

/// Announce cells per per-slot chunk. A slot's announce log grows one
/// chunk at a time as its owners invoke.
pub const ANNOUNCE_CHUNK: usize = 8;

/// Registry-slot states. A slot is claimed FREE → ACTIVE by one
/// `register` CAS, marked ACTIVE → RETIRED by `retire`, and recycled
/// RETIRED → FREE (by the retiring owner, or lazily by a later
/// registrant) once nothing is pending on it. A crashed client's slot
/// simply stays ACTIVE (or RETIRED with a pending op): helpers skip it
/// in two loads, and it costs one slot, never a wedged loop.
const SLOT_FREE: usize = 0;
const SLOT_ACTIVE: usize = 1;
const SLOT_RETIRED: usize = 2;

/// Why a universal-object operation could not complete. These are the
/// resource-exhaustion edges of the bounded renderings of §4 — not
/// concurrency failures, which the construction tolerates by design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UniversalError {
    /// The log reached its opt-in position cap
    /// ([`WfUniversal::with_capacity`]) with no undecided position left.
    /// The operation was already announced and *may still take effect*
    /// through helping; the object as a whole cannot accept further
    /// operations. Never returned by objects built with
    /// [`WfUniversal::new`], whose log grows without bound.
    LogFull {
        /// First position past the cap.
        position: usize,
        /// The configured position cap.
        capacity: usize,
    },
    /// This handle used all `max_ops` announce slots; the operation was
    /// not announced and has no effect.
    BudgetExhausted {
        /// The invoking thread.
        tid: usize,
        /// Its per-thread operation budget.
        max_ops: usize,
    },
    /// This handle was retired ([`WfHandle::retire`]); the operation
    /// was not announced and has no effect. Register a fresh handle to
    /// keep operating on the object.
    Retired {
        /// The registry slot the handle occupied.
        tid: usize,
    },
}

impl fmt::Display for UniversalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniversalError::LogFull { position, capacity } => {
                write!(f, "log arena exhausted at position {position} (capacity {capacity})")
            }
            UniversalError::BudgetExhausted { tid, max_ops } => {
                write!(f, "thread {tid} exceeded its budget of {max_ops} operations")
            }
            UniversalError::Retired { tid } => {
                write!(f, "handle on registry slot {tid} is retired")
            }
        }
    }
}

impl std::error::Error for UniversalError {}

/// One announced operation. Constructed once per operation and only
/// ever refcount-bumped afterwards (through announce slots and
/// [`LogEntry`] batch membership).
#[derive(Clone, Debug)]
pub struct Entry<Op> {
    /// The invoking thread.
    pub tid: usize,
    /// The invoker's operation counter.
    pub seq: usize,
    /// The operation.
    pub op: Op,
}

/// One decided log position: a single operation, or a batch of
/// operations threaded together by one winning consensus decide.
///
/// Batch members are in announce-scan order (starting at the position's
/// preferred thread), which is their linearization order; replay applies
/// them in member order and response lookup keys on `(tid, seq)`.
/// [`WfHandle::decided_log`] flattens batches so the Wing–Gong checker
/// and the cross-implementation equivalence tests keep per-op
/// granularity.
#[derive(Debug)]
pub enum LogEntry<Op> {
    /// One operation. The per-op path always produces this; the
    /// combining path produces it when the collect scan finds a single
    /// pending operation.
    Solo(Arc<Entry<Op>>),
    /// Two or more operations combined by one collect scan, in
    /// announce-scan order. At most one member per thread (the scan
    /// reads each thread's oldest pending op once).
    Batch(Box<[Arc<Entry<Op>>]>),
}

impl<Op> LogEntry<Op> {
    /// The decided operations in linearization order (a `Solo` is a
    /// one-member batch).
    #[must_use]
    pub fn members(&self) -> &[Arc<Entry<Op>>] {
        match self {
            LogEntry::Solo(e) => std::slice::from_ref(e),
            LogEntry::Batch(m) => m,
        }
    }
}

/// One announce cell: set exactly once by the slot owner that announced
/// the sequence number it covers, read (and refcount-bumped) by
/// helpers. Write-once is what makes a cell safely readable by
/// arbitrarily stalled helpers — cells are never reset, only appended,
/// so slot reuse continues the cell index where the previous owner
/// stopped.
type AnnounceCell<Op> = OnceLock<Arc<Entry<Op>>>;

/// One fixed-size block of a registry slot's announce log, covering
/// sequence numbers `base .. base + ANNOUNCE_CHUNK`. Grown by the slot
/// owner exactly like the shared log's segments: allocate, one CAS on
/// the `next` link, loser frees and follows.
struct AnnounceChunk<Op> {
    base: usize,
    cells: Box<[AnnounceCell<Op>]>,
    next: AtomicPtr<AnnounceChunk<Op>>,
}

impl<Op> AnnounceChunk<Op> {
    fn new(base: usize) -> Box<Self> {
        Box::new(AnnounceChunk {
            base,
            cells: (0..ANNOUNCE_CHUNK).map(|_| OnceLock::new()).collect(),
            next: AtomicPtr::new(ptr::null_mut()),
        })
    }
}

impl<Op> Drop for AnnounceChunk<Op> {
    fn drop(&mut self) {
        // Free the rest of the chain iteratively, as `Segment` does.
        let mut next = std::mem::replace(self.next.get_mut(), ptr::null_mut());
        while !next.is_null() {
            // SAFETY: `next` came from `Box::into_raw` in `HandleSlot::cell`
            // and is detached before the Box drops, so each chunk is
            // freed exactly once.
            let mut chunk = unsafe { Box::from_raw(next) };
            next = std::mem::replace(chunk.next.get_mut(), ptr::null_mut());
        }
    }
}

/// One registry slot: the dynamic-membership replacement for a fixed
/// thread index. A slot carries the announce/help handshake counters
/// and a chunked write-once announce log; its `state` word tracks
/// claim/retirement. Slots are recycled across registrations — the
/// sequence counter continues, the state machine resets.
struct HandleSlot<Op> {
    /// `SLOT_FREE` / `SLOT_ACTIVE` / `SLOT_RETIRED`.
    state: AtomicUsize,
    /// Operations announced on this slot across all of its owners.
    announced: AtomicUsize,
    /// Operations of this slot threaded onto the log.
    done: AtomicUsize,
    /// First announce chunk (base 0); later chunks hang off its `next`
    /// chain and are owned by it.
    announce_head: Box<AnnounceChunk<Op>>,
    /// Hint to the highest-base installed chunk, so helpers reach the
    /// frontier cell without walking the chain from its head.
    announce_latest: AtomicPtr<AnnounceChunk<Op>>,
}

impl<Op> HandleSlot<Op> {
    fn new() -> Self {
        let announce_head = AnnounceChunk::new(0);
        let latest: *mut AnnounceChunk<Op> =
            (&*announce_head as *const AnnounceChunk<Op>).cast_mut();
        HandleSlot {
            state: AtomicUsize::new(SLOT_FREE),
            announced: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            announce_head,
            announce_latest: AtomicPtr::new(latest),
        }
    }

    /// The announce cell for sequence number `seq`, growing the chunk
    /// chain as needed. Owner-side: only the slot's current owner calls
    /// this, with its cached chunk pointer in `cache` (invariant:
    /// `(*cache).base <= seq` once clamped below).
    fn cell(&self, cache: &mut *const AnnounceChunk<Op>, seq: usize) -> &AnnounceCell<Op> {
        // SAFETY (all derefs below): chunk pointers originate from
        // `announce_head` or from `next` links installed with Release
        // and read with Acquire; chunks are never freed while the
        // owning `Shared` is alive.
        let mut c = *cache;
        if unsafe { &*c }.base > seq {
            c = &*self.announce_head;
        }
        loop {
            let cr = unsafe { &*c };
            if seq < cr.base + ANNOUNCE_CHUNK {
                *cache = c;
                return &cr.cells[seq - cr.base];
            }
            // ordering: Acquire — pairs with the Release install below
            // (possibly by a previous owner of this slot), so the
            // chunk's cells are initialized before it is reachable.
            let next = cr.next.load(Ordering::Acquire);
            if !next.is_null() {
                c = next;
                continue;
            }
            let fresh = Box::into_raw(AnnounceChunk::new(cr.base + ANNOUNCE_CHUNK));
            match cr.next.compare_exchange(
                ptr::null_mut(),
                fresh,
                // ordering: Release on success — publishes the built
                // chunk with the link; Acquire on failure to follow a
                // winner (unreachable while slot ownership is exclusive,
                // kept for symmetry with the log's growth idiom).
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // ordering: Release — publish the hint only after the
                    // chunk it points to is reachable; readers Acquire.
                    self.announce_latest.store(fresh, Ordering::Release);
                    c = fresh;
                }
                Err(winner) => {
                    // SAFETY: the CAS failed, so `fresh` was never
                    // published; we still own it exclusively.
                    drop(unsafe { Box::from_raw(fresh) });
                    c = winner;
                }
            }
        }
    }

    /// The announced entry with sequence number `seq`, if its cell is
    /// populated — helper-side, a refcount bump. Starts at the
    /// `announce_latest` hint and falls back to a walk from the head
    /// chunk, so staleness costs steps, never correctness.
    fn entry_at(&self, seq: usize) -> Option<Arc<Entry<Op>>> {
        // ordering: Acquire — pairs with the owner's Release store in
        // `cell`, so the hinted chunk is initialized before we read it.
        let mut c: *const AnnounceChunk<Op> = self.announce_latest.load(Ordering::Acquire);
        // SAFETY: see `cell` — the chunk chain outlives `&self`.
        if unsafe { &*c }.base > seq {
            c = &*self.announce_head;
        }
        loop {
            let cr = unsafe { &*c };
            if seq < cr.base + ANNOUNCE_CHUNK {
                return cr.cells[seq - cr.base].get().cloned();
            }
            // ordering: Acquire — pairs with the Release chunk install
            // in `cell`.
            let next = cr.next.load(Ordering::Acquire);
            if next.is_null() {
                // The caller's announced/done reads were stale; there
                // is nothing (left) to help here.
                return None;
            }
            c = next;
        }
    }
}

/// One fixed-size block of the handle registry, covering slot indices
/// `base .. base + REGISTRY_SEGMENT`. Grown with the same one-CAS
/// wait-free idiom as the log's segments.
struct RegSegment<Op> {
    base: usize,
    slots: Box<[HandleSlot<Op>]>,
    next: AtomicPtr<RegSegment<Op>>,
}

impl<Op> RegSegment<Op> {
    fn new(base: usize) -> Box<Self> {
        Box::new(RegSegment {
            base,
            slots: (0..REGISTRY_SEGMENT).map(|_| HandleSlot::new()).collect(),
            next: AtomicPtr::new(ptr::null_mut()),
        })
    }
}

impl<Op> Drop for RegSegment<Op> {
    fn drop(&mut self) {
        // Free the rest of the chain iteratively, as `Segment` does;
        // each segment's slots (and their announce chunks) drop with
        // their Boxes.
        let mut next = std::mem::replace(self.next.get_mut(), ptr::null_mut());
        while !next.is_null() {
            // SAFETY: `next` came from `Box::into_raw` in `reg_slot_grow`
            // and is detached before the Box drops, so each segment is
            // freed exactly once.
            let mut seg = unsafe { Box::from_raw(next) };
            next = std::mem::replace(seg.next.get_mut(), ptr::null_mut());
        }
    }
}

/// One fixed-size block of the segmented log. `base` is the global index
/// of `slots[0]`; a null slot is an undecided position. Segments are
/// reachable only through `next` links installed by CAS and are freed
/// when the owning [`Shared`] drops (a decided slot owns one strong
/// `Arc<LogEntry>` reference).
struct Segment<Op> {
    base: usize,
    slots: Box<[AtomicPtr<LogEntry<Op>>]>,
    next: AtomicPtr<Segment<Op>>,
    /// Segments logically own the `Arc<LogEntry<Op>>` behind each
    /// decided slot (dropped in `Drop`); the marker keeps auto-traits
    /// honest.
    _own: PhantomData<Arc<LogEntry<Op>>>,
}

impl<Op> Segment<Op> {
    fn new(base: usize) -> Box<Self> {
        Box::new(Segment {
            base,
            slots: (0..SEGMENT_SIZE).map(|_| AtomicPtr::new(ptr::null_mut())).collect(),
            next: AtomicPtr::new(ptr::null_mut()),
            _own: PhantomData,
        })
    }
}

impl<Op> Drop for Segment<Op> {
    fn drop(&mut self) {
        for slot in self.slots.iter_mut() {
            let p = *slot.get_mut();
            if !p.is_null() {
                // SAFETY: a non-null slot holds the strong reference
                // transferred by the winning decide CAS; each segment is
                // dropped exactly once (the head by its owning Box, the
                // rest detached below before their Boxes drop), so the
                // reference is released exactly once.
                unsafe { drop(Arc::from_raw(p)) };
            }
        }
        // Free the rest of the chain iteratively: a long log must not
        // recurse once per segment.
        let mut next = std::mem::replace(self.next.get_mut(), ptr::null_mut());
        while !next.is_null() {
            // SAFETY: `next` came from `Box::into_raw` in `grow` and is
            // detached before the Box drops, so each segment is freed once.
            let mut seg = unsafe { Box::from_raw(next) };
            next = std::mem::replace(seg.next.get_mut(), ptr::null_mut());
        }
    }
}

struct Shared<S: ObjectSpec> {
    /// Per-*registration* operation budget: each `register` grants a
    /// fresh `max_ops` announce cells on the claimed slot.
    max_ops: usize,
    /// Opt-in position cap; `None` lets the log grow without bound.
    cap: Option<usize>,
    /// Combining mode: scan the announce registry and propose all
    /// pending ops as one batch per decide (the default hot path).
    /// `false` keeps the PR-2 one-op-per-decide candidate selection.
    combine: bool,
    /// First registry segment (slot indices 0..REGISTRY_SEGMENT). Later
    /// segments hang off its `next` chain and are owned by it.
    reg_head: Box<RegSegment<S::Op>>,
    /// One past the highest slot index ever claimed — the `hi` that
    /// bounds the helping scan and the restated O(peak active) bound.
    /// Slot reuse keeps this at peak concurrent registrations, not
    /// total arrivals.
    slots_hi: AtomicUsize,
    /// Currently registered handles (diagnostics; a crash mid-retirement
    /// or a dropped-without-retire handle stays counted).
    active: AtomicUsize,
    /// High-water mark of `active` (diagnostics).
    peak_active: AtomicUsize,
    /// Total `register` calls ever (diagnostics).
    arrivals: AtomicUsize,
    /// First segment of the log (base 0). Later segments hang off its
    /// `next` chain and are owned by it (freed in `Segment::drop`).
    head: Box<Segment<S::Op>>,
    /// Number of segments ever installed (diagnostics; duplicates that
    /// lose the install race are freed and not counted).
    segments: AtomicUsize,
    /// Heuristic lower bound on the first undecided position.
    hint: AtomicUsize,
}

impl<S: ObjectSpec> fmt::Debug for Shared<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shared")
            .field("max_ops", &self.max_ops)
            .field("cap", &self.cap)
            .field("combine", &self.combine)
            // ordering: Acquire — diagnostics read cross-thread state;
            // Acquire keeps the printed values consistent with the
            // structures they describe (uniform rule for observers).
            .field("slots_hi", &self.slots_hi.load(Ordering::Acquire))
            .field("active", &self.active.load(Ordering::SeqCst))
            // ordering: Acquire — same observer rule as `slots_hi`.
            .field("segments", &self.segments.load(Ordering::Acquire))
            .field("hint", &self.hint.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl<S: ObjectSpec> Shared<S> {
    /// One past the highest slot index ever claimed.
    fn registered(&self) -> usize {
        // ordering: Acquire — pairs with the AcqRel fetch_max in
        // `register`'s claim, so a reader of `hi` can reach every slot
        // below `hi` through the registry chain (the claimant walked it
        // with Acquire before bumping).
        self.slots_hi.load(Ordering::Acquire)
    }

    /// The registry slot at index `t`, which must already be reachable
    /// (`t` below a value read from `slots_hi`, or below a claim this
    /// thread performed).
    fn reg_slot(&self, t: usize) -> &HandleSlot<S::Op> {
        // SAFETY (all derefs below): registry segment pointers originate
        // from `self.reg_head` or from `next` links installed with
        // Release and read with Acquire; segments are never freed while
        // `self` is alive.
        let mut seg: *const RegSegment<S::Op> = &*self.reg_head;
        loop {
            let s = unsafe { &*seg };
            if t < s.base + REGISTRY_SEGMENT {
                return &s.slots[t - s.base];
            }
            // ordering: Acquire — pairs with the Release install in
            // `reg_slot_grow`, so the segment's slots are initialized
            // before the link is observable.
            let next = s.next.load(Ordering::Acquire);
            assert!(!next.is_null(), "slot {t} beyond the installed registry");
            seg = next;
        }
    }

    /// The registry slot at index `t`, growing the registry as needed
    /// (the `register` path). Growth is wait-free: allocate the missing
    /// segment, one install CAS, losers free their copy and follow.
    fn reg_slot_grow(&self, t: usize) -> &HandleSlot<S::Op> {
        // SAFETY: see `reg_slot`.
        let mut seg: *const RegSegment<S::Op> = &*self.reg_head;
        loop {
            let s = unsafe { &*seg };
            if t < s.base + REGISTRY_SEGMENT {
                return &s.slots[t - s.base];
            }
            // ordering: Acquire — pairs with the Release install below.
            let next = s.next.load(Ordering::Acquire);
            if !next.is_null() {
                seg = next;
                continue;
            }
            let fresh = Box::into_raw(RegSegment::new(s.base + REGISTRY_SEGMENT));
            match s.next.compare_exchange(
                ptr::null_mut(),
                fresh,
                // ordering: Release on success — publishes the fully
                // built segment (slots, announce chunks) with the link;
                // Acquire on failure to safely follow the winner.
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => seg = fresh,
                Err(winner) => {
                    // SAFETY: the CAS failed, so `fresh` was never
                    // published; we still own it exclusively.
                    drop(unsafe { Box::from_raw(fresh) });
                    seg = winner;
                }
            }
        }
    }

    /// The oldest announced-but-unthreaded entry on `slot`, if any — a
    /// refcount bump, never a payload clone. A free, retired-quiescent,
    /// or idle slot costs exactly these two loads: that is how helpers
    /// "stop scanning" departed handles.
    fn pending(&self, slot: &HandleSlot<S::Op>) -> Option<Arc<Entry<S::Op>>> {
        // SeqCst on both counters: the announce/help handshake. Seeing
        // `announced > done` must imply the announce cell is populated,
        // which the announcing owner guarantees by writing the cell
        // before its SeqCst store to `announced`.
        let d = slot.done.load(Ordering::SeqCst);
        let a = slot.announced.load(Ordering::SeqCst);
        if d < a {
            slot.entry_at(d)
        } else {
            None
        }
    }

    /// [`Shared::pending`] by slot index (the per-op candidate path).
    fn pending_at(&self, t: usize) -> Option<Arc<Entry<S::Op>>> {
        self.pending(self.reg_slot(t))
    }

    /// Gather the pending entries of slots `from..to` (one linear walk
    /// of the registry chain) into `members`.
    fn pending_range(&self, from: usize, to: usize, members: &mut Vec<Arc<Entry<S::Op>>>) {
        if from >= to {
            return;
        }
        // SAFETY: see `reg_slot`.
        let mut seg: *const RegSegment<S::Op> = &*self.reg_head;
        let mut t = from;
        while t < to {
            let s = unsafe { &*seg };
            if t >= s.base + REGISTRY_SEGMENT {
                // ordering: Acquire — pairs with the Release segment
                // install in `reg_slot_grow`.
                let next = s.next.load(Ordering::Acquire);
                if next.is_null() {
                    return; // `to` outran this thread's view; nothing there to help
                }
                seg = next;
                continue;
            }
            if let Some(e) = self.pending(&s.slots[t - s.base]) {
                members.push(e);
            }
            t += 1;
        }
    }

    /// The segment containing position `k`, walking forward from `seg`
    /// (which must satisfy `seg.base <= k`) and growing the log as
    /// needed. Returns a pointer into the chain owned by `self.head`.
    ///
    /// Growth is wait-free: a thread allocates the missing segment and
    /// makes exactly one install attempt; on failure it frees its copy
    /// and follows the winner.
    fn seg_for(&self, mut seg: *const Segment<S::Op>, k: usize) -> *const Segment<S::Op> {
        // SAFETY (all derefs below): segment pointers originate from
        // `self.head` or from `next` links installed with Release and
        // read with Acquire; segments are never freed while `self` is
        // alive, and callers hold the `Arc<Shared>` keeping it alive.
        loop {
            let s = unsafe { &*seg };
            debug_assert!(s.base <= k);
            if k < s.base + SEGMENT_SIZE {
                return seg;
            }
            // ordering: Acquire — pairs with the Release install below,
            // so the new segment's header and nulled slots are
            // initialized before we can observe the link.
            let next = s.next.load(Ordering::Acquire);
            if !next.is_null() {
                seg = next;
                continue;
            }
            let fresh = Box::into_raw(Segment::new(s.base + SEGMENT_SIZE));
            match s.next.compare_exchange(
                ptr::null_mut(),
                fresh,
                // ordering: Release on success — publishes the fully
                // built segment together with the link; Acquire on
                // failure to safely follow the winner's segment.
                Ordering::Release,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // ordering: AcqRel — the diagnostic counter chains
                    // installer clocks, so an Acquire reader of the count
                    // also inherits every earlier install (keeps the
                    // counter meaningful off-thread; off the hot path).
                    self.segments.fetch_add(1, Ordering::AcqRel);
                    seg = fresh;
                }
                Err(winner) => {
                    // SAFETY: the CAS failed, so `fresh` was never
                    // published; we still own it exclusively.
                    drop(unsafe { Box::from_raw(fresh) });
                    seg = winner;
                }
            }
        }
    }

    /// The slot of global position `k` inside `seg` (which must contain
    /// `k`).
    fn slot(&self, seg: *const Segment<S::Op>, k: usize) -> &AtomicPtr<LogEntry<S::Op>> {
        // SAFETY: see `seg_for` — the chain outlives `&self`.
        let s = unsafe { &*seg };
        debug_assert!(s.base <= k && k < s.base + SEGMENT_SIZE);
        &s.slots[k - s.base]
    }

    /// Run pointer consensus on `slot`: propose `candidate`, return the
    /// winner plus whether our proposal won. The single CAS is the
    /// decide of Theorem 7; on success the slot takes over `candidate`'s
    /// strong reference.
    fn decide(
        &self,
        slot: &AtomicPtr<LogEntry<S::Op>>,
        candidate: Arc<LogEntry<S::Op>>,
    ) -> (Arc<LogEntry<S::Op>>, bool) {
        let proposed = Arc::into_raw(candidate).cast_mut();
        // ordering: SeqCst success — the linearization point, kept at
        // the strongest ordering exactly as the cell path's winner CAS
        // was; Acquire failure — pairs with the winner's (SeqCst ⊇
        // Release) store so the winning LogEntry's members are visible
        // before we read them.
        match slot.compare_exchange(
            ptr::null_mut(),
            proposed,
            Ordering::SeqCst,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                // SAFETY: `proposed` is a live Arc we just installed; the
                // slot holds one strong count, this hands the caller
                // another.
                unsafe {
                    Arc::increment_strong_count(proposed);
                    (Arc::from_raw(proposed), true)
                }
            }
            Err(winner) => {
                // SAFETY: reclaim the candidate reference the slot did
                // not take, then borrow the winner with a fresh count
                // (the slot's own reference stays untouched).
                unsafe {
                    drop(Arc::from_raw(proposed));
                    Arc::increment_strong_count(winner);
                    (Arc::from_raw(winner), false)
                }
            }
        }
    }
}

// SAFETY: `Shared` is a bag of atomics plus `OnceLock<Arc<Entry<Op>>>`
// announce slots; the raw segment pointers it owns are only mutated via
// atomic CAS and freed once, in `Drop`. Thread-safety therefore reduces
// to the payload's: `Op: Send + Sync` makes the shared `Arc`s safe to
// hand across threads.
unsafe impl<S: ObjectSpec + Send> Send for Shared<S> where S::Op: Send + Sync {}
unsafe impl<S: ObjectSpec + Sync> Sync for Shared<S> where S::Op: Send + Sync {}

/// A wait-free universal object wrapping a sequential specification `S`.
///
/// The object is a cloneable front-end over the shared state; clients
/// join and leave dynamically. Create with [`WfUniversal::new_dynamic`]
/// (batch combining, the default hot path) or
/// [`WfUniversal::new_dynamic_per_op`], then call
/// [`WfUniversal::register`] to obtain a [`WfHandle`] per client and
/// [`WfHandle::retire`] when a client departs. The fixed-membership
/// constructors ([`WfUniversal::new`] and friends) remain as one-shot
/// conveniences that register `n` handles up front. See
/// [`crate::wrappers`] for typed instantiations, and
/// [`crate::universal_cell`] for the unoptimised reference rendering.
///
/// # Example
///
/// ```
/// use waitfree_model::Pid;
/// use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
/// use waitfree_sync::universal::WfUniversal;
///
/// // Fixed membership: n handles up front.
/// let mut handles = WfUniversal::new(Counter::new(0), 2, 16);
/// let mut h0 = handles.remove(0);
/// assert_eq!(h0.invoke(CounterOp::FetchAndAdd(5)), CounterResp::Value(0));
/// assert_eq!(h0.invoke(CounterOp::Get), CounterResp::Value(5));
///
/// // Dynamic membership: clients arrive, operate, and depart.
/// let obj = WfUniversal::new_dynamic(Counter::new(0), 16);
/// let mut a = obj.register();
/// assert_eq!(a.invoke(CounterOp::FetchAndAdd(1)), CounterResp::Value(0));
/// a.retire();
/// let mut b = obj.register(); // reuses a's registry slot
/// assert_eq!(b.invoke(CounterOp::Get), CounterResp::Value(1));
/// assert_eq!(obj.registry_slots(), 1);
/// ```
pub struct WfUniversal<S: ObjectSpec> {
    shared: Arc<Shared<S>>,
    /// The initial abstract state, cloned into each registered handle's
    /// local replica (every replica replays the same log from it).
    initial: S,
}

impl<S: ObjectSpec> Clone for WfUniversal<S> {
    fn clone(&self) -> Self {
        WfUniversal { shared: Arc::clone(&self.shared), initial: self.initial.clone() }
    }
}

impl<S: ObjectSpec> fmt::Debug for WfUniversal<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WfUniversal").field("shared", &self.shared).finish_non_exhaustive()
    }
}

impl<S: ObjectSpec> WfUniversal<S> {
    /// Build the object for `n` threads, each performing at most
    /// `max_ops` operations, returning one handle per thread. Decides
    /// use batch combining (see the module docs and DESIGN.md §9).
    ///
    /// The log starts as a single [`SEGMENT_SIZE`] segment and grows
    /// lazily: memory is O(positions actually decided), not
    /// O(n²·max_ops) up front, and [`UniversalError::LogFull`] is never
    /// returned.
    // The fixed-membership constructors are factories: they drop the
    // front-end and hand out only the per-thread handles.
    #[allow(clippy::new_ret_no_self)]
    #[must_use]
    pub fn new(initial: S, n: usize, max_ops: usize) -> Vec<WfHandle<S>> {
        Self::build(initial, n, max_ops, None, true)
    }

    /// [`WfUniversal::new`] with the combining layer disabled: every
    /// decide threads exactly one operation (the preferred thread's
    /// pending entry, else the caller's own). The before/after leg for
    /// `bench_universal` and the differential tests.
    #[must_use]
    pub fn new_per_op(initial: S, n: usize, max_ops: usize) -> Vec<WfHandle<S>> {
        Self::build(initial, n, max_ops, None, false)
    }

    /// [`WfUniversal::new`] with an explicit position cap, for tests
    /// that need to observe [`UniversalError::LogFull`]. The log still
    /// grows segment by segment; only the cap is enforced eagerly.
    #[must_use]
    pub fn with_capacity(
        initial: S,
        n: usize,
        max_ops: usize,
        capacity: usize,
    ) -> Vec<WfHandle<S>> {
        Self::build(initial, n, max_ops, Some(capacity), true)
    }

    /// [`WfUniversal::with_capacity`] with combining disabled — a
    /// position cap over the per-op decide path.
    #[must_use]
    pub fn with_capacity_per_op(
        initial: S,
        n: usize,
        max_ops: usize,
        capacity: usize,
    ) -> Vec<WfHandle<S>> {
        Self::build(initial, n, max_ops, Some(capacity), false)
    }

    /// Build a dynamic-membership object: no fixed process set. Each
    /// [`WfUniversal::register`] call claims (or recycles) a registry
    /// slot and grants a fresh `max_ops` operation budget. Decides use
    /// batch combining.
    #[must_use]
    pub fn new_dynamic(initial: S, max_ops: usize) -> Self {
        Self::make(initial, max_ops, None, true)
    }

    /// [`WfUniversal::new_dynamic`] with the combining layer disabled.
    #[must_use]
    pub fn new_dynamic_per_op(initial: S, max_ops: usize) -> Self {
        Self::make(initial, max_ops, None, false)
    }

    /// [`WfUniversal::new_dynamic`] with an explicit log-position cap,
    /// for tests that need [`UniversalError::LogFull`] under churn.
    #[must_use]
    pub fn with_capacity_dynamic(initial: S, max_ops: usize, capacity: usize) -> Self {
        Self::make(initial, max_ops, Some(capacity), true)
    }

    fn make(initial: S, max_ops: usize, cap: Option<usize>, combine: bool) -> Self {
        WfUniversal {
            shared: Arc::new(Shared {
                max_ops,
                cap,
                combine,
                reg_head: RegSegment::new(0),
                slots_hi: AtomicUsize::new(0),
                active: AtomicUsize::new(0),
                peak_active: AtomicUsize::new(0),
                arrivals: AtomicUsize::new(0),
                head: Segment::new(0),
                segments: AtomicUsize::new(1),
                hint: AtomicUsize::new(0),
            }),
            initial,
        }
    }

    fn build(
        initial: S,
        n: usize,
        max_ops: usize,
        cap: Option<usize>,
        combine: bool,
    ) -> Vec<WfHandle<S>> {
        let obj = Self::make(initial, max_ops, cap, combine);
        // Sequential registration claims slots 0..n in order, so the
        // fixed-membership API keeps its tid == index contract.
        (0..n).map(|_| obj.register()).collect()
    }

    /// Join the object: claim a registry slot and return a fresh handle
    /// with a full `max_ops` budget.
    ///
    /// Wait-free in the infinite-arrival sense: the claim scan loses a
    /// CAS (or skips a just-taken slot) only when a *different*
    /// concurrent `register` succeeded, so its step count is bounded by
    /// the number of concurrently arriving clients plus the registry
    /// high-water — never by total arrivals. Retired-and-quiesced slots
    /// encountered on the way are reclaimed and reused (that is what
    /// keeps registry memory bounded by peak active handles).
    #[must_use]
    pub fn register(&self) -> WfHandle<S> {
        failpoint!("universal::register");
        let shared = &self.shared;
        let mut t = 0usize;
        let slot: &HandleSlot<S::Op> = loop {
            let slot = shared.reg_slot_grow(t);
            let claimable = match slot.state.load(Ordering::SeqCst) {
                SLOT_FREE => true,
                SLOT_RETIRED => {
                    // Lazy reclamation: a departed slot with nothing
                    // pending goes back in the free pool. (A retired
                    // slot with a pending op — its owner crashed
                    // mid-operation or hit LogFull — stays helpable and
                    // unclaimed until the op is threaded.)
                    let d = slot.done.load(Ordering::SeqCst);
                    let a = slot.announced.load(Ordering::SeqCst);
                    d >= a
                        && slot
                            .state
                            .compare_exchange(
                                SLOT_RETIRED,
                                SLOT_FREE,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            )
                            .is_ok()
                }
                _ => false,
            };
            if claimable
                && slot
                    .state
                    .compare_exchange(SLOT_FREE, SLOT_ACTIVE, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                break slot;
            }
            // Every miss above means some concurrent register() claimed
            // this slot (or a racer reclaimed-and-claimed it): distinct
            // progress elsewhere, the wait-free accounting.
            t += 1;
        };
        // ordering: AcqRel — publishes the claim's slot index so any
        // reader of `slots_hi` can reach slot `t` through the registry
        // chain this thread just walked with Acquire.
        shared.slots_hi.fetch_max(t + 1, Ordering::AcqRel);
        let now = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        shared.peak_active.fetch_max(now, Ordering::SeqCst);
        shared.arrivals.fetch_add(1, Ordering::SeqCst);
        // Sequence numbers continue where the previous owner stopped
        // (FREE implies announced == done), keeping per-slot seqs
        // monotone across reuse for the replay dedup.
        let base = slot.announced.load(Ordering::SeqCst);
        // ordering: Acquire — the chunk hint left by the previous owner;
        // pairs with its Release store in `cell` (the claim CAS already
        // ordered us after the owner's retirement).
        let own_chunk: *const AnnounceChunk<S::Op> =
            slot.announce_latest.load(Ordering::Acquire);
        let head: *const Segment<S::Op> = &*shared.head;
        WfHandle {
            shared: Arc::clone(shared),
            tid: t,
            slot: slot as *const HandleSlot<S::Op>,
            own_chunk,
            state: self.initial.clone(),
            applied: Vec::new(),
            cursor: 0,
            replay_seg: head,
            thread_seg: head,
            next_seq: base,
            budget_end: base + shared.max_ops,
            retired: false,
            last_threading_steps: 0,
            max_threading_steps: 0,
            decides: 0,
            cas_failures: 0,
            invokes: 0,
        }
    }

    /// Currently registered handles. A handle dropped without
    /// [`WfHandle::retire`] (a crashed client) stays counted — it still
    /// occupies its slot.
    #[must_use]
    pub fn active_handles(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// High-water mark of [`Self::active_handles`].
    #[must_use]
    pub fn peak_active(&self) -> usize {
        self.shared.peak_active.load(Ordering::SeqCst)
    }

    /// Total [`Self::register`] calls over the object's life.
    #[must_use]
    pub fn total_arrivals(&self) -> usize {
        self.shared.arrivals.load(Ordering::SeqCst)
    }

    /// One past the highest registry slot index ever claimed — the
    /// registry's memory footprint witness (allocated registry segments
    /// are `ceil(registry_slots / REGISTRY_SEGMENT)`). Slot reuse keeps
    /// this bounded by peak *concurrently active* handles (plus
    /// transient claim races), never by [`Self::total_arrivals`].
    #[must_use]
    pub fn registry_slots(&self) -> usize {
        self.shared.registered()
    }
}

/// One client's handle onto a [`WfUniversal`] object. Not `Clone`: the
/// registry-slot identity is baked in. Obtained from
/// [`WfUniversal::register`] (or the fixed-membership constructors);
/// returned to the pool with [`WfHandle::retire`]. Dropping a handle
/// *without* retiring models a crashed client: its slot stays claimed
/// (one slot leaked, nothing else) and any pending op stays helpable.
#[derive(Debug)]
pub struct WfHandle<S: ObjectSpec> {
    shared: Arc<Shared<S>>,
    tid: usize,
    /// The claimed registry slot (cached; always `shared.reg_slot(tid)`).
    slot: *const HandleSlot<S::Op>,
    /// Owner-side cache of the announce chunk containing `next_seq`'s
    /// neighborhood (invariant: `own_chunk.base <= next_seq` after the
    /// first clamp in `HandleSlot::cell`).
    own_chunk: *const AnnounceChunk<S::Op>,
    /// Cached replica, replayed up to `cursor`.
    state: S,
    /// Per-slot watermark of applied sequence numbers (deduplication),
    /// grown on demand as higher slot indices appear in the log.
    applied: Vec<usize>,
    /// First log position not yet replayed.
    cursor: usize,
    /// Segment containing `cursor` (invariant: `base <= cursor`); both
    /// only move forward, so the cache never has to back up.
    replay_seg: *const Segment<S::Op>,
    /// Segment cache for the threading loop, whose position is likewise
    /// monotone (it starts at the only-growing `hint`).
    thread_seg: *const Segment<S::Op>,
    next_seq: usize,
    /// One past the last sequence number this registration's `max_ops`
    /// budget covers (`base + max_ops`, where `base` was the slot's
    /// `announced` at claim time).
    budget_end: usize,
    /// Set by [`WfHandle::retire`]; all later invokes return
    /// [`UniversalError::Retired`].
    retired: bool,
    /// Threading-loop iterations (consensus decides) of the last invoke.
    last_threading_steps: usize,
    /// Maximum threading-loop iterations over any single invoke.
    max_threading_steps: usize,
    /// Total consensus decides (CAS attempts) across this handle's life.
    decides: usize,
    /// Decides whose CAS lost to a concurrent winner.
    cas_failures: usize,
    /// Completed `invoke`/`try_invoke` calls (Ok only).
    invokes: usize,
}

// SAFETY: the raw segment/slot/chunk pointers cached here always point
// into chains owned by `shared`, which the handle keeps alive via its
// `Arc<Shared<S>>`; they are plain caches, carrying no ownership. The
// handle is therefore exactly as thread-safe as its owned state (`S`)
// plus the shared structure (see `Shared`'s impls).
unsafe impl<S: ObjectSpec + Send + Sync> Send for WfHandle<S> where S::Op: Send + Sync {}

impl<S: ObjectSpec> WfHandle<S> {
    /// This handle's registry slot index (its thread identity in log
    /// entries and `Pid`s).
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The registered-slot high-water: one past the highest slot index
    /// ever claimed — the `n` of the restated O(peak active handles)
    /// helping bound. Fixed-membership objects report their `n`.
    #[must_use]
    pub fn n(&self) -> usize {
        self.shared.registered()
    }

    /// Leave the object: all later invokes on this handle return
    /// [`UniversalError::Retired`], and the registry slot becomes
    /// reclaimable — immediately if nothing is pending on it, otherwise
    /// lazily once helpers thread the pending op (the slot is freed by
    /// the next `register` scan that finds it quiesced). Idempotent.
    pub fn retire(&mut self) {
        if self.retired {
            return;
        }
        self.retired = true;
        // SAFETY: `slot` points into the registry chain owned by
        // `shared`, alive for the life of this handle.
        let slot = unsafe { &*self.slot };
        slot.state.store(SLOT_RETIRED, Ordering::SeqCst);
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
        failpoint!("universal::retire");
        // Quiesced already? Free the slot ourselves; otherwise leave it
        // RETIRED for lazy reclamation. A crash right above (at the
        // failpoint) skips this and costs nothing but the laziness.
        let d = slot.done.load(Ordering::SeqCst);
        let a = slot.announced.load(Ordering::SeqCst);
        if d >= a {
            let _ = slot.state.compare_exchange(
                SLOT_RETIRED,
                SLOT_FREE,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
    }

    /// Whether [`Self::retire`] was called on this handle.
    #[must_use]
    pub fn is_retired(&self) -> bool {
        self.retired
    }

    /// Whether decides combine all pending announced ops into one batch
    /// ([`WfUniversal::new`]) or thread one op each
    /// ([`WfUniversal::new_per_op`]).
    #[must_use]
    pub fn combining(&self) -> bool {
        self.shared.combine
    }

    /// Consensus decides the last completed `invoke` spent threading its
    /// operation. Wait-freedom (§4.1) bounds this by O(n) *regardless of
    /// other threads' speed or crashes* — the fault-tolerance tests
    /// assert it.
    #[must_use]
    pub fn last_threading_steps(&self) -> usize {
        self.last_threading_steps
    }

    /// Worst [`Self::last_threading_steps`] across this handle's life.
    #[must_use]
    pub fn max_threading_steps(&self) -> usize {
        self.max_threading_steps
    }

    /// Total consensus decides (CAS attempts) across this handle's life
    /// — the numerator of the amortized decides-per-op metric the
    /// combining layer lowers. With batching, `decides() / invokes()`
    /// drops toward 1/n under contention; per-op it is ≥ 1.
    #[must_use]
    pub fn decides(&self) -> usize {
        self.decides
    }

    /// How many of [`Self::decides`] lost their CAS to a concurrent
    /// winner. Losing is cheap (the loser adopts the winner), but every
    /// loss is a wasted RMW on the contended slot; the benchmark reports
    /// this per completed op for the per-op vs batched comparison.
    #[must_use]
    pub fn cas_failures(&self) -> usize {
        self.cas_failures
    }

    /// Completed (`Ok`) invocations through this handle — the
    /// denominator of the per-op counter metrics.
    #[must_use]
    pub fn invokes(&self) -> usize {
        self.invokes
    }

    /// Number of log segments installed so far (each [`SEGMENT_SIZE`]
    /// positions). Starts at 1; diagnostics for the growth tests.
    #[must_use]
    pub fn segments(&self) -> usize {
        // ordering: Acquire — pairs with the AcqRel fetch_add in
        // `seg_for`, so a count of `n` implies the `n`th install (and
        // everything before it) is visible to this reader.
        self.shared.segments.load(Ordering::Acquire)
    }

    /// Combining mode's candidate for position `k`: scan the announce
    /// registry once, starting at `k`'s preferred slot, and gather
    /// every pending announced operation into one batch. The scan is
    /// `hi` `pending` reads (SeqCst loads, no RMWs, nothing written),
    /// so a thread that crashes mid-collect has perturbed nothing:
    /// every entry it gathered stays announced and helpable.
    ///
    /// Starting at the preferred slot makes the batch a superset of
    /// the per-op candidate, so the per-position helping guarantee the
    /// O(peak active) bound is proved against carries over unchanged.
    fn collect_candidate(
        &self,
        k: usize,
        hi: usize,
        own: &Arc<Entry<S::Op>>,
        own_solo: &Arc<LogEntry<S::Op>>,
    ) -> Arc<LogEntry<S::Op>> {
        failpoint!("universal::collect");
        let preferred = k % hi;
        let mut members: Vec<Arc<Entry<S::Op>>> = Vec::new();
        self.shared.pending_range(preferred, hi, &mut members);
        self.shared.pending_range(0, preferred, &mut members);
        match members.len() {
            // Our own op got helped between the loop's `done` check and
            // the scan; propose our (possibly stale) entry anyway, as
            // the per-op path does — replay deduplicates.
            0 => Arc::clone(own_solo),
            // The common uncontended case: only our own op is pending.
            // Reuse the pre-built Solo so a solo run allocates nothing
            // per decide beyond the announce itself.
            1 if Arc::ptr_eq(&members[0], own) => Arc::clone(own_solo),
            1 => Arc::new(LogEntry::Solo(members.pop().expect("len checked"))),
            _ => Arc::new(LogEntry::Batch(members.into_boxed_slice())),
        }
    }

    /// Execute `op` wait-free, returning its response.
    ///
    /// # Panics
    ///
    /// Panics if the handle is retired, exceeds its `max_ops` budget,
    /// or a [`WfUniversal::with_capacity`] log cap is hit — the message
    /// is the [`UniversalError`] display. Use [`Self::try_invoke`] to
    /// handle exhaustion as a value.
    pub fn invoke(&mut self, op: S::Op) -> S::Resp {
        match self.try_invoke(op) {
            Ok(resp) => resp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Execute `op` wait-free, or report resource exhaustion (or a
    /// departed handle) as a typed error instead of panicking.
    ///
    /// On [`UniversalError::Retired`] and
    /// [`UniversalError::BudgetExhausted`] nothing was announced and
    /// the call had no effect (repeat calls keep failing the same way).
    /// On [`UniversalError::LogFull`] the operation *was* announced and
    /// may still be threaded by a helper; treat the object as done.
    ///
    /// # Errors
    ///
    /// [`UniversalError::Retired`] after [`WfHandle::retire`];
    /// [`UniversalError::BudgetExhausted`] after `max_ops` invocations on
    /// this handle; [`UniversalError::LogFull`] when a
    /// [`WfUniversal::with_capacity`] cap leaves no undecided position
    /// (never for [`WfUniversal::new`] objects).
    pub fn try_invoke(&mut self, op: S::Op) -> Result<S::Resp, UniversalError> {
        if self.retired {
            return Err(UniversalError::Retired { tid: self.tid });
        }
        let seq = self.next_seq;
        if seq >= self.budget_end {
            return Err(UniversalError::BudgetExhausted {
                tid: self.tid,
                max_ops: self.shared.max_ops,
            });
        }
        self.next_seq += 1;

        // 1. Announce. One allocation per operation (plus its Solo log
        //    wrapper); everything after this line moves Arcs, not the
        //    payload.
        failpoint!("universal::announce");
        let entry = Arc::new(Entry { tid: self.tid, seq, op });
        // SAFETY: `slot` points into the registry chain owned by
        // `shared`, which this handle keeps alive.
        let slot = unsafe { &*self.slot };
        let _ = slot.cell(&mut self.own_chunk, seq).set(Arc::clone(&entry));
        slot.announced.store(seq + 1, Ordering::SeqCst);
        failpoint!("universal::announced");
        let own_solo = Arc::new(LogEntry::Solo(Arc::clone(&entry)));

        // 2. Thread onto the log. In combining mode each decide proposes
        //    the batch of *all* pending announced ops; per-op mode helps
        //    the preferred slot of each position. The shared hint is
        //    republished every hi-th iteration and once after the loop
        //    (not per decide): its lag behind the true frontier stays
        //    < hi, preserving the ≤ 2·hi step bound, while the common
        //    case pays zero RMWs on the contended word inside the loop.
        let mut steps = 0usize;
        // ordering: Acquire — pairs with the Release `fetch_max` in `publish_hint`.
        // Starting at `k` skips the prefix [0, k) without ever touching
        // those slots, so the decided-prefix invariant that the replay
        // loop asserts (and `refresh` relies on) is inherited here: the
        // acquire carries the publisher's happens-before edge to every
        // decide below `k`. A stale value only costs extra (cheap,
        // already-decided) iterations; segment reachability is
        // re-established by the acquire walk in `seg_for`.
        let mut k = self.shared.hint.load(Ordering::Acquire);
        while slot.done.load(Ordering::SeqCst) <= seq {
            if let Some(cap) = self.shared.cap {
                if k >= cap {
                    self.publish_hint(k);
                    return Err(UniversalError::LogFull { position: k, capacity: cap });
                }
            }
            // The slot high-water is re-read each iteration so freshly
            // registered slots join the preferred-rotation (and the
            // collect scan) as soon as their claim is visible.
            let hi = self.shared.registered();
            self.thread_seg = self.shared.seg_for(self.thread_seg, k);
            let log_slot = self.shared.slot(self.thread_seg, k);
            let candidate = if self.shared.combine {
                self.collect_candidate(k, hi, &entry, &own_solo)
            } else {
                match self.shared.pending_at(k % hi) {
                    // Reuse the cached solo wrapper for the own entry
                    // (the common case) instead of re-allocating one
                    // per iteration.
                    Some(e) if Arc::ptr_eq(&e, &entry) => Arc::clone(&own_solo),
                    Some(e) => Arc::new(LogEntry::Solo(e)),
                    None => Arc::clone(&own_solo),
                }
            };
            failpoint!("universal::cas");
            let (winner, won) = self.shared.decide(log_slot, candidate);
            self.decides += 1;
            if !won {
                self.cas_failures += 1;
            }
            // Advance every member's `done` watermark, not just one
            // winner's: losers adopt the whole winning batch, so all its
            // members become visible as threaded before anyone rescans.
            for m in winner.members() {
                self.shared.reg_slot(m.tid).done.fetch_max(m.seq + 1, Ordering::SeqCst);
            }
            failpoint!("universal::decided");
            steps += 1;
            k += 1;
            if steps.is_multiple_of(hi) {
                self.publish_hint(k);
            }
        }
        self.publish_hint(k);
        self.last_threading_steps = steps;
        self.max_threading_steps = self.max_threading_steps.max(steps);

        // 3. Replay until our own entry is applied. A batch is applied
        //    member by member in decide order; we finish the position
        //    containing our op before returning (its later members were
        //    linearized by the same decide, so applying them is plain
        //    local catch-up), keeping `cursor` a whole-position index.
        loop {
            self.replay_seg = self.shared.seg_for(self.replay_seg, self.cursor);
            // ordering: Acquire — pairs with the winning decide CAS
            // (SeqCst ⊇ Release), so the LogEntry behind a non-null slot
            // is fully initialized before we dereference it.
            let raw = self.shared.slot(self.replay_seg, self.cursor).load(Ordering::Acquire);
            assert!(
                !raw.is_null(),
                "own entry is threaded at or before the first undecided position"
            );
            // SAFETY: a non-null slot holds a strong reference that is
            // never released while `shared` lives; borrow it without
            // taking a count — the borrow ends inside this iteration.
            let le = unsafe { &*raw };
            self.cursor += 1;
            let mut resp = None;
            for m in le.members() {
                if m.tid >= self.applied.len() {
                    self.applied.resize(m.tid + 1, 0);
                }
                if m.seq != self.applied[m.tid] {
                    continue; // duplicate from helping
                }
                failpoint!("universal::replay");
                let r = self.state.apply(Pid(m.tid), &m.op);
                self.applied[m.tid] += 1;
                if m.tid == self.tid && m.seq == seq {
                    resp = Some(r);
                }
            }
            if let Some(r) = resp {
                self.invokes += 1;
                return Ok(r);
            }
        }
    }

    /// Advance the shared frontier hint to at least `k`.
    fn publish_hint(&self, k: usize) {
        // ordering: Release — a reader that acquire-loads this value
        // starts threading at it and skips the decided prefix below
        // without observing those decides itself; the release store
        // hands over this thread's happens-before edge to every decide
        // below `k` (observed directly via its own SeqCst decide RMWs,
        // or inherited from the hint it started from). When the
        // `fetch_max` is a no-op the current value was itself
        // Release-published by a thread with the same property, so the
        // edge readers need still exists. Off the per-decide fast path,
        // so the cost is negligible.
        #[cfg(not(feature = "mutant-relaxed-hint"))]
        self.shared.hint.fetch_max(k, Ordering::Release);
        // ordering: Relaxed — DELIBERATELY WRONG. The `mutant-relaxed-hint`
        // feature reintroduces the PR-2 bug (hint published without a
        // release edge) so the happens-before checker's regression test
        // can prove it flags this class mechanically. Never enable
        // outside that test.
        #[cfg(feature = "mutant-relaxed-hint")]
        self.shared.hint.fetch_max(k, Ordering::Relaxed);
    }

    /// Replay any outstanding log entries and return a copy of the
    /// current abstract state (a linearizable read of the whole object).
    pub fn refresh(&mut self) -> S {
        loop {
            self.replay_seg = self.shared.seg_for(self.replay_seg, self.cursor);
            // ordering: Acquire — same slot-publication edge as the replay loop.
            let raw = self.shared.slot(self.replay_seg, self.cursor).load(Ordering::Acquire);
            if raw.is_null() {
                break;
            }
            // SAFETY: as in `try_invoke`'s replay — the slot's strong
            // reference outlives this borrow.
            let le = unsafe { &*raw };
            self.cursor += 1;
            for m in le.members() {
                if m.tid >= self.applied.len() {
                    self.applied.resize(m.tid + 1, 0);
                }
                if m.seq != self.applied[m.tid] {
                    continue;
                }
                self.state.apply(Pid(m.tid), &m.op);
                self.applied[m.tid] += 1;
            }
        }
        self.state.clone()
    }

    /// Total log positions this handle has replayed (diagnostics). A
    /// combined batch counts as one position however many ops it
    /// carries.
    #[must_use]
    pub fn replayed(&self) -> usize {
        self.cursor
    }

    /// The decided prefix of the log as `(tid, seq)` pairs, from
    /// position 0 to the first undecided slot, with batches flattened
    /// in decide order — so the Wing–Gong checker and the
    /// cross-implementation equivalence tests keep per-op granularity
    /// regardless of how ops were grouped into positions (the cell path
    /// emits the same shape). Read-only diagnostic; quiescently
    /// consistent: call it only when no invoke is in flight (or under
    /// the deterministic scheduler).
    #[must_use]
    pub fn decided_log(&self) -> Vec<(usize, usize)> {
        self.walk_decided(|out, le| {
            for m in le.members() {
                out.push((m.tid, m.seq));
            }
        })
    }

    /// The decided prefix grouped by log position: one inner vector of
    /// `(tid, seq)` pairs per decide. Per-op and cell logs have only
    /// singleton groups; `decided_batches().len()` vs
    /// `decided_log().len()` measures how much combining happened.
    #[must_use]
    pub fn decided_batches(&self) -> Vec<Vec<(usize, usize)>> {
        self.walk_decided(|out, le| {
            out.push(le.members().iter().map(|m| (m.tid, m.seq)).collect());
        })
    }

    /// Walk decided slots from position 0 to the first null, feeding
    /// each `LogEntry` to `push`.
    fn walk_decided<T>(&self, mut push: impl FnMut(&mut Vec<T>, &LogEntry<S::Op>)) -> Vec<T> {
        let mut out = Vec::new();
        let mut seg: *const Segment<S::Op> = &*self.shared.head;
        loop {
            // SAFETY: segment pointers come from `head` or Acquire-read
            // `next` links and live as long as `shared` (see `seg_for`).
            let s = unsafe { &*seg };
            for slot in s.slots.iter() {
                // ordering: Acquire — same slot-publication edge as the
                // replay loop.
                let raw = slot.load(Ordering::Acquire);
                if raw.is_null() {
                    return out;
                }
                // SAFETY: a non-null slot holds a strong reference that
                // outlives this borrow (as in `try_invoke`'s replay).
                push(&mut out, unsafe { &*raw });
            }
            // ordering: Acquire — pairs with the Release segment install
            // in `seg_for` before we walk into the next segment.
            let next = s.next.load(Ordering::Acquire);
            if next.is_null() {
                return out;
            }
            seg = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
    use waitfree_sched::thread;
    use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};

    #[test]
    fn single_thread_matches_spec() {
        let mut handles = WfUniversal::new(FifoQueue::new(), 1, 16);
        let mut h = handles.remove(0);
        assert_eq!(h.invoke(QueueOp::Enq(1)), QueueResp::Ack);
        assert_eq!(h.invoke(QueueOp::Enq(2)), QueueResp::Ack);
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Item(1));
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Item(2));
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Empty);
    }

    /// Small enough for `cargo miri test`: two threads, a handful of
    /// ops, crossing the announce/help path and one log segment. CI's
    /// analyze job runs every `miri_smoke_*` test under miri to check
    /// the unsafe log/segment code against the real memory model.
    #[test]
    fn miri_smoke_two_thread_counter() {
        let mut handles = WfUniversal::new(Counter::new(0), 2, 8);
        let mut b = handles.pop().unwrap();
        let mut a = handles.pop().unwrap();
        let jb = thread::spawn(move || {
            for _ in 0..3 {
                b.invoke(CounterOp::Add(1));
            }
            b
        });
        for _ in 0..3 {
            a.invoke(CounterOp::Add(1));
        }
        let _b = jb.join().unwrap();
        match a.invoke(CounterOp::Get) {
            CounterResp::Value(v) => assert_eq!(v, 6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let threads = 4;
        let per = 500;
        let handles = WfUniversal::new(Counter::new(0), threads, per + 1);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    for _ in 0..per {
                        h.invoke(CounterOp::Add(1));
                    }
                    h
                })
            })
            .collect();
        let mut finished: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let mut last = finished.pop().unwrap();
        match last.invoke(CounterOp::Get) {
            CounterResp::Value(v) => assert_eq!(v, (threads * per) as i64),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fetch_and_add_responses_are_unique_under_contention() {
        // Linearizability witness: every FetchAndAdd(1) must see a
        // distinct old value.
        let threads = 4;
        let per = 300;
        let handles = WfUniversal::new(Counter::new(0), threads, per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    (0..per)
                        .map(|_| match h.invoke(CounterOp::FetchAndAdd(1)) {
                            CounterResp::Value(v) => v,
                            other => panic!("unexpected {other:?}"),
                        })
                        .collect::<Vec<i64>>()
                })
            })
            .collect();
        let mut all: Vec<i64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<i64> = (0..(threads * per) as i64).collect();
        assert_eq!(all, expect, "each ticket taken exactly once");
    }

    #[test]
    fn queue_items_dequeued_exactly_once() {
        let threads = 4;
        let per = 200;
        let handles = WfUniversal::new(FifoQueue::new(), threads, 2 * per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                let tid = h.tid() as i64;
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..per {
                        h.invoke(QueueOp::Enq(tid * 1_000_000 + i as i64));
                        if let QueueResp::Item(v) = h.invoke(QueueOp::Deq) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "no item dequeued twice");
        assert!(total <= threads * per);
    }

    #[test]
    fn refresh_converges_across_handles() {
        let mut handles = WfUniversal::new(Counter::new(0), 2, 8);
        let mut h1 = handles.pop().unwrap();
        let mut h0 = handles.pop().unwrap();
        h0.invoke(CounterOp::Add(3));
        h0.invoke(CounterOp::Add(4));
        assert_eq!(h1.refresh(), h0.refresh(), "replicas converge");
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn op_budget_is_enforced() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 1);
        let mut h = handles.remove(0);
        h.invoke(CounterOp::Add(1));
        h.invoke(CounterOp::Add(1));
    }

    #[test]
    fn log_full_is_a_typed_error_not_a_panic() {
        // A deliberately tiny cap: the third operation has no undecided
        // position left.
        let mut handles = WfUniversal::with_capacity(Counter::new(0), 1, 8, 2);
        let mut h = handles.remove(0);
        assert!(h.try_invoke(CounterOp::Add(1)).is_ok());
        assert!(h.try_invoke(CounterOp::Add(1)).is_ok());
        match h.try_invoke(CounterOp::Add(1)) {
            Err(UniversalError::LogFull { position, capacity }) => {
                assert_eq!(position, 2);
                assert_eq!(capacity, 2);
            }
            other => panic!("expected LogFull, got {other:?}"),
        }
    }

    #[test]
    fn uncapped_log_outgrows_the_old_arena_formula() {
        // The seed arena would have held 2·1·4 + 16 = 24 positions; the
        // segmented log happily passes any fixed bound.
        let per = 3 * SEGMENT_SIZE;
        let mut handles = WfUniversal::new(Counter::new(0), 1, per + 1);
        let mut h = handles.remove(0);
        for _ in 0..per {
            h.invoke(CounterOp::Add(1));
        }
        assert_eq!(h.invoke(CounterOp::Get), CounterResp::Value(per as i64));
        assert!(h.segments() >= 3, "log grew across segments: {}", h.segments());
    }

    #[test]
    fn budget_error_is_typed_stable_and_effect_free() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 2);
        let mut h = handles.remove(0);
        h.invoke(CounterOp::Add(1));
        h.invoke(CounterOp::Add(1));
        for _ in 0..3 {
            assert_eq!(
                h.try_invoke(CounterOp::Add(1)),
                Err(UniversalError::BudgetExhausted { tid: 0, max_ops: 2 })
            );
        }
        // The failed attempts announced nothing: a fresh handle's replay
        // sees exactly two additions.
        assert_eq!(h.refresh(), {
            let mut c = Counter::new(0);
            c.apply(Pid(0), &CounterOp::Add(1));
            c.apply(Pid(0), &CounterOp::Add(1));
            c
        });
    }

    #[test]
    fn error_display_names_the_resource() {
        let log = UniversalError::LogFull { position: 9, capacity: 9 };
        assert!(log.to_string().contains("log arena exhausted"));
        let budget = UniversalError::BudgetExhausted { tid: 3, max_ops: 7 };
        assert!(budget.to_string().contains("budget"));
    }

    #[test]
    fn threading_steps_are_counted_and_bounded_solo() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 8);
        let mut h = handles.remove(0);
        assert_eq!(h.max_threading_steps(), 0);
        h.invoke(CounterOp::Add(1));
        // Alone, threading one op takes exactly one consensus decide.
        assert_eq!(h.last_threading_steps(), 1);
        assert_eq!(h.max_threading_steps(), 1);
        assert_eq!(h.n(), 1);
        assert!(h.combining());
    }

    #[test]
    fn counters_track_decides_solo() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 8);
        let mut h = handles.remove(0);
        for _ in 0..5 {
            h.invoke(CounterOp::Add(1));
        }
        // Alone: one decide per op, none lost, batches all singletons.
        assert_eq!(h.invokes(), 5);
        assert_eq!(h.decides(), 5);
        assert_eq!(h.cas_failures(), 0);
        assert_eq!(h.decided_batches().len(), 5);
        assert!(h.decided_batches().iter().all(|b| b.len() == 1));
    }

    #[test]
    fn per_op_and_combining_agree_when_uncontended() {
        // Without contention the combining path degenerates to exactly
        // the per-op behaviour: same responses, same (flat) decided log.
        let script = [
            QueueOp::Enq(4),
            QueueOp::Enq(5),
            QueueOp::Deq,
            QueueOp::Deq,
            QueueOp::Deq,
            QueueOp::Enq(6),
            QueueOp::Deq,
        ];
        let mut batched = WfUniversal::new(FifoQueue::new(), 1, script.len()).remove(0);
        let mut per_op = WfUniversal::new_per_op(FifoQueue::new(), 1, script.len()).remove(0);
        assert!(!per_op.combining());
        for op in &script {
            assert_eq!(batched.invoke(op.clone()), per_op.invoke(op.clone()), "{op:?}");
        }
        assert_eq!(batched.decided_log(), per_op.decided_log());
    }

    #[test]
    fn decided_batches_flatten_to_decided_log() {
        // Under contention positions may hold multi-op batches; the
        // flattened view must match `decided_log` exactly and account
        // for every completed op once.
        let threads = 4;
        let per = 300;
        let handles = WfUniversal::new(Counter::new(0), threads, per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    for _ in 0..per {
                        h.invoke(CounterOp::Add(1));
                    }
                    h
                })
            })
            .collect();
        let finished: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let h = &finished[0];
        let flat = h.decided_log();
        let grouped: Vec<(usize, usize)> =
            h.decided_batches().into_iter().flatten().collect();
        assert_eq!(flat, grouped, "flattened batches are the decided log");
        // Dedup to first occurrences: every op appears.
        let mut firsts = std::collections::HashSet::new();
        for pair in &flat {
            firsts.insert(*pair);
        }
        assert_eq!(firsts.len(), threads * per, "every op threaded");
        // Positions never exceed ops (combining only packs tighter).
        assert!(h.decided_batches().len() <= flat.len());
    }

    #[test]
    fn per_op_position_consumption_is_bounded() {
        // Wait-freedom evidence: with helping, total positions consumed
        // stay within 2·n·ops even under contention (each entry appears
        // at most twice per mode's duplication bound; combining only
        // packs positions tighter).
        let threads = 3;
        let per = 400;
        let handles = WfUniversal::new(Counter::new(0), threads, per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    for _ in 0..per {
                        h.invoke(CounterOp::Add(1));
                    }
                    h.segments()
                })
            })
            .collect();
        for j in joins {
            let segments = j.join().unwrap();
            let max_positions = 2 * threads * per;
            assert!(
                (segments - 1) * SEGMENT_SIZE <= max_positions,
                "{segments} segments exceeds the 2·n·ops position bound"
            );
        }
    }

    #[test]
    fn retired_handle_returns_typed_error_not_a_panic() {
        let obj = WfUniversal::new_dynamic(Counter::new(0), 8);
        let mut h = obj.register();
        assert_eq!(h.invoke(CounterOp::FetchAndAdd(1)), CounterResp::Value(0));
        assert!(!h.is_retired());
        h.retire();
        h.retire(); // idempotent
        assert!(h.is_retired());
        for _ in 0..3 {
            assert_eq!(
                h.try_invoke(CounterOp::Add(1)),
                Err(UniversalError::Retired { tid: 0 })
            );
        }
        // The failed attempts announced nothing; the object still works
        // through a fresh registration.
        let mut h2 = obj.register();
        assert_eq!(h2.invoke(CounterOp::Get), CounterResp::Value(1));
    }

    #[test]
    fn retired_error_display_names_the_slot() {
        let e = UniversalError::Retired { tid: 5 };
        assert!(e.to_string().contains("retired"));
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn registry_is_bounded_by_peak_active_not_total_arrivals() {
        // 100 arrivals, never more than one active at a time: the whole
        // churn runs on a single recycled slot.
        let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
        for i in 0..100 {
            let mut h = obj.register();
            assert_eq!(h.tid(), 0, "sequential churn reuses slot 0");
            h.invoke(CounterOp::Add(1));
            h.retire();
            assert_eq!(obj.total_arrivals(), i + 1);
        }
        assert_eq!(obj.registry_slots(), 1);
        assert_eq!(obj.peak_active(), 1);
        assert_eq!(obj.active_handles(), 0);
        let mut probe = obj.register();
        assert_eq!(probe.invoke(CounterOp::Get), CounterResp::Value(100));
    }

    #[test]
    fn register_grows_past_a_registry_segment() {
        let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
        let mut handles: Vec<_> = (0..2 * REGISTRY_SEGMENT).map(|_| obj.register()).collect();
        assert_eq!(obj.registry_slots(), 2 * REGISTRY_SEGMENT);
        assert_eq!(obj.peak_active(), 2 * REGISTRY_SEGMENT);
        for (i, h) in handles.iter_mut().enumerate() {
            assert_eq!(h.tid(), i);
            h.invoke(CounterOp::Add(1));
        }
        let total = handles[0].refresh();
        assert_eq!(total, {
            let mut c = Counter::new(0);
            for t in 0..2 * REGISTRY_SEGMENT {
                c.apply(Pid(t), &CounterOp::Add(1));
            }
            c
        });
    }

    #[test]
    fn budget_renews_per_registration_and_seqs_continue() {
        let obj = WfUniversal::new_dynamic(Counter::new(0), 2);
        let mut h = obj.register();
        h.invoke(CounterOp::Add(1));
        h.invoke(CounterOp::Add(1));
        assert_eq!(
            h.try_invoke(CounterOp::Add(1)),
            Err(UniversalError::BudgetExhausted { tid: 0, max_ops: 2 })
        );
        h.retire();
        // Re-registering the same slot grants a fresh budget; sequence
        // numbers continue (announce cells are append-only), so the
        // replay dedup stays sound across reuse.
        let mut h = obj.register();
        assert_eq!(h.tid(), 0);
        h.invoke(CounterOp::Add(1));
        h.invoke(CounterOp::Add(1));
        assert_eq!(
            h.try_invoke(CounterOp::Add(1)),
            Err(UniversalError::BudgetExhausted { tid: 0, max_ops: 2 })
        );
        assert_eq!(h.refresh(), {
            let mut c = Counter::new(0);
            for _ in 0..4 {
                c.apply(Pid(0), &CounterOp::Add(1));
            }
            c
        });
    }

    #[test]
    fn dropped_without_retire_costs_one_slot_and_stays_consistent() {
        // A crashed client: handle dropped, never retired. Its slot is
        // not reclaimable, so the next arrival claims a fresh one — and
        // the object keeps linearizing.
        let obj = WfUniversal::new_dynamic(Counter::new(0), 8);
        let mut crashed = obj.register();
        crashed.invoke(CounterOp::Add(10));
        drop(crashed);
        assert_eq!(obj.active_handles(), 1, "crashed client stays counted");
        let mut h = obj.register();
        assert_eq!(h.tid(), 1, "leaked slot is skipped, not reused");
        assert_eq!(h.invoke(CounterOp::Get), CounterResp::Value(10));
        assert_eq!(obj.registry_slots(), 2);
    }

    #[test]
    fn announce_log_outgrows_one_chunk() {
        let per = 3 * ANNOUNCE_CHUNK + 2;
        let obj = WfUniversal::new_dynamic(Counter::new(0), per + 1);
        let mut h = obj.register();
        for _ in 0..per {
            h.invoke(CounterOp::Add(1));
        }
        assert_eq!(h.invoke(CounterOp::Get), CounterResp::Value(per as i64));
    }

    /// Churn across the announce/help path under real threads, small
    /// enough for `cargo miri test` (CI's analyze job runs every
    /// `miri_smoke_*` test under miri): register/invoke/retire cycles
    /// exercising slot claim, reuse, and the chunked announce log
    /// against the real memory model.
    #[test]
    fn miri_smoke_churn_register_retire_respawn() {
        let obj = WfUniversal::new_dynamic(Counter::new(0), 4);
        let other = obj.clone();
        let jb = thread::spawn(move || {
            for _ in 0..3 {
                let mut h = other.register();
                h.invoke(CounterOp::Add(1));
                h.retire();
            }
        });
        for _ in 0..3 {
            let mut h = obj.register();
            h.invoke(CounterOp::Add(1));
            h.retire();
        }
        jb.join().unwrap();
        let mut probe = obj.register();
        match probe.invoke(CounterOp::Get) {
            CounterResp::Value(v) => assert_eq!(v, 6),
            other => panic!("unexpected {other:?}"),
        }
        assert!(obj.registry_slots() <= 2, "churn of 2 threads needs at most 2 slots");
        assert_eq!(obj.total_arrivals(), 7);
    }

    #[test]
    fn entries_are_freed_with_the_object() {
        // Leak check by refcount: after all handles drop, the Arc<Entry>
        // count behind a probe operation must fall back to 1 — including
        // the references held through LogEntry batches.
        let probe = Arc::new(());
        #[derive(Clone, Debug, PartialEq, Eq, Hash)]
        struct Probe;
        impl waitfree_model::ObjectSpec for Probe {
            type Op = ProbeOp;
            type Resp = ();
            fn apply(&mut self, _pid: Pid, _op: &Self::Op) {}
        }
        // The field is never read: it exists so the op's drop decrements
        // the probe Arc, making leaked entries observable as refcounts.
        #[derive(Clone, Debug)]
        struct ProbeOp(#[allow(dead_code)] Arc<()>);
        impl PartialEq for ProbeOp {
            fn eq(&self, _: &Self) -> bool {
                true
            }
        }
        impl Eq for ProbeOp {}
        impl std::hash::Hash for ProbeOp {
            fn hash<H: std::hash::Hasher>(&self, _: &mut H) {}
        }

        let mut handles = WfUniversal::new(Probe, 2, 8);
        let mut h = handles.remove(0);
        h.invoke(ProbeOp(Arc::clone(&probe)));
        h.invoke(ProbeOp(Arc::clone(&probe)));
        assert!(Arc::strong_count(&probe) > 1, "log holds the payload");
        drop(h);
        drop(handles);
        assert_eq!(Arc::strong_count(&probe), 1, "all log references freed");
    }
}
