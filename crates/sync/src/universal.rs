//! A wait-free universal object on hardware atomics.
//!
//! The practical rendering of §4's universality result: a shared log in
//! which each position is a one-shot [`ConsensusCell`], plus an announce
//! array with a helping discipline that bounds every operation — the
//! difference between *lock-free* (someone wins) and *wait-free*
//! (everyone finishes) is exactly the helping.
//!
//! How an operation executes:
//!
//! 1. **Announce** the operation in the caller's announce slot.
//! 2. **Thread** it onto the log: repeatedly take the first undecided
//!    position `k` and run consensus on a candidate entry — the *preferred
//!    thread* of position `k` is `k mod n`, and if that thread has a
//!    pending announced operation, helpers propose *its* entry rather than
//!    their own. Once every position periodically prefers each thread, an
//!    announced operation is threaded within `n` positions: the wait-free
//!    bound.
//! 3. **Replay** the log from the handle's cached state up to the caller's
//!    entry to compute the response (§4.1's `eval`/`apply`).
//!
//! Helping can thread the same entry into two positions (a helper and the
//! owner may both win with it); replay deduplicates by per-thread sequence
//! number, the standard fix. The log is a pre-sized arena — capacity
//! exhaustion is an explicit panic, the documented substitution for
//! unbounded memory (DESIGN.md).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use waitfree_model::{ObjectSpec, Pid};

use crate::consensus::ConsensusCell;

/// A log entry: one announced operation.
#[derive(Clone, Debug)]
pub struct Entry<Op> {
    /// The invoking thread.
    pub tid: usize,
    /// The invoker's operation counter.
    pub seq: usize,
    /// The operation.
    pub op: Op,
}

#[derive(Debug)]
struct Shared<S: ObjectSpec> {
    n: usize,
    max_ops: usize,
    /// `announce[tid][seq]`.
    announce: Vec<Vec<OnceLock<Entry<S::Op>>>>,
    /// Number of operations thread `tid` has announced.
    announced: Vec<AtomicUsize>,
    /// Number of operations of thread `tid` threaded onto the log.
    done: Vec<AtomicUsize>,
    /// The log.
    positions: Vec<ConsensusCell<Entry<S::Op>>>,
    /// Lower bound on the first undecided position.
    hint: AtomicUsize,
}

/// A wait-free universal object wrapping a sequential specification `S`.
///
/// Create with [`WfUniversal::new`], then hand one [`WfHandle`] to each
/// thread. See [`crate::wrappers`] for typed instantiations.
///
/// # Example
///
/// ```
/// use waitfree_model::Pid;
/// use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
/// use waitfree_sync::universal::WfUniversal;
///
/// let mut handles = WfUniversal::new(Counter::new(0), 2, 16);
/// let mut h0 = handles.remove(0);
/// assert_eq!(h0.invoke(CounterOp::FetchAndAdd(5)), CounterResp::Value(0));
/// assert_eq!(h0.invoke(CounterOp::Get), CounterResp::Value(5));
/// ```
pub struct WfUniversal<S: ObjectSpec>(std::marker::PhantomData<S>);

impl<S: ObjectSpec> WfUniversal<S> {
    /// Build the object for `n` threads, each performing at most
    /// `max_ops` operations, returning one handle per thread.
    ///
    /// The log arena holds `2·n·max_ops + 16` positions (each entry may be
    /// duplicated by helping).
    #[must_use]
    pub fn new(initial: S, n: usize, max_ops: usize) -> Vec<WfHandle<S>> {
        let capacity = 2 * n * max_ops + 16;
        let shared = Arc::new(Shared {
            n,
            max_ops,
            announce: (0..n)
                .map(|_| (0..max_ops).map(|_| OnceLock::new()).collect())
                .collect(),
            announced: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            done: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            positions: (0..capacity).map(|_| ConsensusCell::new(n)).collect(),
            hint: AtomicUsize::new(0),
        });
        (0..n)
            .map(|tid| WfHandle {
                shared: Arc::clone(&shared),
                tid,
                state: initial.clone(),
                applied: vec![0; n],
                cursor: 0,
                next_seq: 0,
            })
            .collect()
    }
}

/// One thread's handle onto a [`WfUniversal`] object. Not `Clone`: the
/// thread identity is baked in.
#[derive(Debug)]
pub struct WfHandle<S: ObjectSpec> {
    shared: Arc<Shared<S>>,
    tid: usize,
    /// Cached replica, replayed up to `cursor`.
    state: S,
    /// Per-thread watermark of applied sequence numbers (deduplication).
    applied: Vec<usize>,
    /// First log position not yet replayed.
    cursor: usize,
    next_seq: usize,
}

impl<S: ObjectSpec> WfHandle<S> {
    /// This handle's thread index.
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The oldest announced-but-unthreaded entry of thread `t`, if any.
    fn pending(&self, t: usize) -> Option<Entry<S::Op>> {
        let d = self.shared.done[t].load(Ordering::SeqCst);
        let a = self.shared.announced[t].load(Ordering::SeqCst);
        if d < a {
            self.shared.announce[t][d].get().cloned()
        } else {
            None
        }
    }

    /// Execute `op` wait-free, returning its response.
    ///
    /// # Panics
    ///
    /// Panics if the handle exceeds its `max_ops` budget or the log arena
    /// is exhausted.
    pub fn invoke(&mut self, op: S::Op) -> S::Resp {
        let seq = self.next_seq;
        assert!(
            seq < self.shared.max_ops,
            "thread {} exceeded its budget of {} operations",
            self.tid,
            self.shared.max_ops
        );
        self.next_seq += 1;

        // 1. Announce.
        let entry = Entry { tid: self.tid, seq, op };
        let _ = self.shared.announce[self.tid][seq].set(entry.clone());
        self.shared.announced[self.tid].store(seq + 1, Ordering::SeqCst);

        // 2. Thread onto the log, helping the preferred thread of each
        //    position.
        let mut k = self.shared.hint.load(Ordering::SeqCst);
        while self.shared.done[self.tid].load(Ordering::SeqCst) <= seq {
            assert!(
                k < self.shared.positions.len(),
                "log arena exhausted at position {k}"
            );
            let preferred = k % self.shared.n;
            let candidate = self.pending(preferred).unwrap_or_else(|| entry.clone());
            let winner = self.shared.positions[k].decide(self.tid, candidate);
            self.shared.done[winner.tid].fetch_max(winner.seq + 1, Ordering::SeqCst);
            k += 1;
            self.shared.hint.fetch_max(k, Ordering::SeqCst);
        }

        // 3. Replay until our own entry is applied.
        loop {
            let Some(e) = self.shared.positions[self.cursor].value() else {
                unreachable!("own entry is threaded at or before the first undecided position")
            };
            let e = e.clone();
            self.cursor += 1;
            if e.seq != self.applied[e.tid] {
                continue; // duplicate from helping
            }
            let resp = self.state.apply(Pid(e.tid), &e.op);
            self.applied[e.tid] += 1;
            if e.tid == self.tid && e.seq == seq {
                return resp;
            }
        }
    }

    /// Replay any outstanding log entries and return a copy of the
    /// current abstract state (a linearizable read of the whole object).
    pub fn refresh(&mut self) -> S {
        while let Some(e) = self.shared.positions[self.cursor].value() {
            let e = e.clone();
            self.cursor += 1;
            if e.seq != self.applied[e.tid] {
                continue;
            }
            self.state.apply(Pid(e.tid), &e.op);
            self.applied[e.tid] += 1;
        }
        self.state.clone()
    }

    /// Total log entries this handle has replayed (diagnostics).
    #[must_use]
    pub fn replayed(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
    use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};

    #[test]
    fn single_thread_matches_spec() {
        let mut handles = WfUniversal::new(FifoQueue::new(), 1, 16);
        let mut h = handles.remove(0);
        assert_eq!(h.invoke(QueueOp::Enq(1)), QueueResp::Ack);
        assert_eq!(h.invoke(QueueOp::Enq(2)), QueueResp::Ack);
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Item(1));
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Item(2));
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Empty);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let threads = 4;
        let per = 500;
        let handles = WfUniversal::new(Counter::new(0), threads, per + 1);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    for _ in 0..per {
                        h.invoke(CounterOp::Add(1));
                    }
                    h
                })
            })
            .collect();
        let mut finished: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let mut last = finished.pop().unwrap();
        match last.invoke(CounterOp::Get) {
            CounterResp::Value(v) => assert_eq!(v, (threads * per) as i64),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fetch_and_add_responses_are_unique_under_contention() {
        // Linearizability witness: every FetchAndAdd(1) must see a
        // distinct old value.
        let threads = 4;
        let per = 300;
        let handles = WfUniversal::new(Counter::new(0), threads, per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    (0..per)
                        .map(|_| match h.invoke(CounterOp::FetchAndAdd(1)) {
                            CounterResp::Value(v) => v,
                            other => panic!("unexpected {other:?}"),
                        })
                        .collect::<Vec<i64>>()
                })
            })
            .collect();
        let mut all: Vec<i64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<i64> = (0..(threads * per) as i64).collect();
        assert_eq!(all, expect, "each ticket taken exactly once");
    }

    #[test]
    fn queue_items_dequeued_exactly_once() {
        let threads = 4;
        let per = 200;
        let handles = WfUniversal::new(FifoQueue::new(), threads, 2 * per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                let tid = h.tid() as i64;
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..per {
                        h.invoke(QueueOp::Enq(tid * 1_000_000 + i as i64));
                        if let QueueResp::Item(v) = h.invoke(QueueOp::Deq) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "no item dequeued twice");
        assert!(total <= threads * per);
    }

    #[test]
    fn refresh_converges_across_handles() {
        let mut handles = WfUniversal::new(Counter::new(0), 2, 8);
        let mut h1 = handles.pop().unwrap();
        let mut h0 = handles.pop().unwrap();
        h0.invoke(CounterOp::Add(3));
        h0.invoke(CounterOp::Add(4));
        assert_eq!(h1.refresh(), h0.refresh(), "replicas converge");
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn op_budget_is_enforced() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 1);
        let mut h = handles.remove(0);
        h.invoke(CounterOp::Add(1));
        h.invoke(CounterOp::Add(1));
    }

    #[test]
    fn per_op_position_consumption_is_bounded() {
        // Wait-freedom evidence: with helping, total positions consumed
        // stays within the 2·n·ops arena even under contention.
        let threads = 3;
        let per = 400;
        let handles = WfUniversal::new(Counter::new(0), threads, per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    for _ in 0..per {
                        h.invoke(CounterOp::Add(1));
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
    }
}
