//! A wait-free universal object on hardware atomics.
//!
//! The practical rendering of §4's universality result: a shared log in
//! which each position is a one-shot [`ConsensusCell`], plus an announce
//! array with a helping discipline that bounds every operation — the
//! difference between *lock-free* (someone wins) and *wait-free*
//! (everyone finishes) is exactly the helping.
//!
//! How an operation executes:
//!
//! 1. **Announce** the operation in the caller's announce slot.
//! 2. **Thread** it onto the log: repeatedly take the first undecided
//!    position `k` and run consensus on a candidate entry — the *preferred
//!    thread* of position `k` is `k mod n`, and if that thread has a
//!    pending announced operation, helpers propose *its* entry rather than
//!    their own. Once every position periodically prefers each thread, an
//!    announced operation is threaded within `n` positions: the wait-free
//!    bound.
//! 3. **Replay** the log from the handle's cached state up to the caller's
//!    entry to compute the response (§4.1's `eval`/`apply`).
//!
//! Helping can thread the same entry into two positions (a helper and the
//! owner may both win with it); replay deduplicates by per-thread sequence
//! number, the standard fix. The log is a pre-sized arena — capacity
//! exhaustion is a typed [`UniversalError::LogFull`] from
//! [`WfHandle::try_invoke`] (the panicking [`WfHandle::invoke`] is a thin
//! wrapper), the documented substitution for unbounded memory (DESIGN.md).
//!
//! # Failpoint sites (feature `failpoints`)
//!
//! | site | placed |
//! |------|--------|
//! | `universal::announce`  | before the announce-slot write |
//! | `universal::announced` | after the announce is published, before threading |
//! | `universal::cas`       | in the threading loop, before each consensus decide |
//! | `universal::decided`   | after a decide, before the position hint advances |
//! | `universal::replay`    | in the replay loop, per applied entry |
//!
//! A thread crashed at `universal::announce` has published nothing; one
//! crashed at any later site has an announced operation that helpers may
//! still thread — verify such histories with
//! `PendingPolicy::MayTakeEffect`.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use waitfree_faults::failpoint;
use waitfree_model::{ObjectSpec, Pid};

use crate::consensus::ConsensusCell;

/// Why a universal-object operation could not complete. These are the
/// resource-exhaustion edges of the bounded-arena rendering of §4 — not
/// concurrency failures, which the construction tolerates by design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UniversalError {
    /// The log arena has no undecided position left. The operation was
    /// already announced and *may still take effect* through helping;
    /// the object as a whole cannot accept further operations.
    LogFull {
        /// First position past the arena.
        position: usize,
        /// Arena capacity.
        capacity: usize,
    },
    /// This handle used all `max_ops` announce slots; the operation was
    /// not announced and has no effect.
    BudgetExhausted {
        /// The invoking thread.
        tid: usize,
        /// Its per-thread operation budget.
        max_ops: usize,
    },
}

impl fmt::Display for UniversalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniversalError::LogFull { position, capacity } => {
                write!(f, "log arena exhausted at position {position} (capacity {capacity})")
            }
            UniversalError::BudgetExhausted { tid, max_ops } => {
                write!(f, "thread {tid} exceeded its budget of {max_ops} operations")
            }
        }
    }
}

impl std::error::Error for UniversalError {}

/// A log entry: one announced operation.
#[derive(Clone, Debug)]
pub struct Entry<Op> {
    /// The invoking thread.
    pub tid: usize,
    /// The invoker's operation counter.
    pub seq: usize,
    /// The operation.
    pub op: Op,
}

#[derive(Debug)]
struct Shared<S: ObjectSpec> {
    n: usize,
    max_ops: usize,
    /// `announce[tid][seq]`.
    announce: Vec<Vec<OnceLock<Entry<S::Op>>>>,
    /// Number of operations thread `tid` has announced.
    announced: Vec<AtomicUsize>,
    /// Number of operations of thread `tid` threaded onto the log.
    done: Vec<AtomicUsize>,
    /// The log.
    positions: Vec<ConsensusCell<Entry<S::Op>>>,
    /// Lower bound on the first undecided position.
    hint: AtomicUsize,
}

/// A wait-free universal object wrapping a sequential specification `S`.
///
/// Create with [`WfUniversal::new`], then hand one [`WfHandle`] to each
/// thread. See [`crate::wrappers`] for typed instantiations.
///
/// # Example
///
/// ```
/// use waitfree_model::Pid;
/// use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
/// use waitfree_sync::universal::WfUniversal;
///
/// let mut handles = WfUniversal::new(Counter::new(0), 2, 16);
/// let mut h0 = handles.remove(0);
/// assert_eq!(h0.invoke(CounterOp::FetchAndAdd(5)), CounterResp::Value(0));
/// assert_eq!(h0.invoke(CounterOp::Get), CounterResp::Value(5));
/// ```
pub struct WfUniversal<S: ObjectSpec>(std::marker::PhantomData<S>);

impl<S: ObjectSpec> WfUniversal<S> {
    /// Build the object for `n` threads, each performing at most
    /// `max_ops` operations, returning one handle per thread.
    ///
    /// The log arena holds `2·n·max_ops + 16` positions (each entry may be
    /// duplicated by helping).
    // `WfUniversal` is a factory: the object only exists as the shared
    // state behind the per-thread handles it hands out.
    #[allow(clippy::new_ret_no_self)]
    #[must_use]
    pub fn new(initial: S, n: usize, max_ops: usize) -> Vec<WfHandle<S>> {
        Self::with_capacity(initial, n, max_ops, 2 * n * max_ops + 16)
    }

    /// [`WfUniversal::new`] with an explicit log-arena capacity, for
    /// tests that need to observe [`UniversalError::LogFull`] without
    /// allocating a large arena first.
    #[must_use]
    pub fn with_capacity(
        initial: S,
        n: usize,
        max_ops: usize,
        capacity: usize,
    ) -> Vec<WfHandle<S>> {
        let shared = Arc::new(Shared {
            n,
            max_ops,
            announce: (0..n)
                .map(|_| (0..max_ops).map(|_| OnceLock::new()).collect())
                .collect(),
            announced: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            done: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            positions: (0..capacity).map(|_| ConsensusCell::new(n)).collect(),
            hint: AtomicUsize::new(0),
        });
        (0..n)
            .map(|tid| WfHandle {
                shared: Arc::clone(&shared),
                tid,
                state: initial.clone(),
                applied: vec![0; n],
                cursor: 0,
                next_seq: 0,
                last_threading_steps: 0,
                max_threading_steps: 0,
            })
            .collect()
    }
}

/// One thread's handle onto a [`WfUniversal`] object. Not `Clone`: the
/// thread identity is baked in.
#[derive(Debug)]
pub struct WfHandle<S: ObjectSpec> {
    shared: Arc<Shared<S>>,
    tid: usize,
    /// Cached replica, replayed up to `cursor`.
    state: S,
    /// Per-thread watermark of applied sequence numbers (deduplication).
    applied: Vec<usize>,
    /// First log position not yet replayed.
    cursor: usize,
    next_seq: usize,
    /// Threading-loop iterations (consensus decides) of the last invoke.
    last_threading_steps: usize,
    /// Maximum threading-loop iterations over any single invoke.
    max_threading_steps: usize,
}

impl<S: ObjectSpec> WfHandle<S> {
    /// This handle's thread index.
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Number of threads sharing the object (the `n` of the O(n)
    /// helping bound).
    #[must_use]
    pub fn n(&self) -> usize {
        self.shared.n
    }

    /// Consensus decides the last completed `invoke` spent threading its
    /// operation. Wait-freedom (§4.1) bounds this by O(n) *regardless of
    /// other threads' speed or crashes* — the fault-tolerance tests
    /// assert it.
    #[must_use]
    pub fn last_threading_steps(&self) -> usize {
        self.last_threading_steps
    }

    /// Worst [`Self::last_threading_steps`] across this handle's life.
    #[must_use]
    pub fn max_threading_steps(&self) -> usize {
        self.max_threading_steps
    }

    /// The oldest announced-but-unthreaded entry of thread `t`, if any.
    fn pending(&self, t: usize) -> Option<Entry<S::Op>> {
        let d = self.shared.done[t].load(Ordering::SeqCst);
        let a = self.shared.announced[t].load(Ordering::SeqCst);
        if d < a {
            self.shared.announce[t][d].get().cloned()
        } else {
            None
        }
    }

    /// Execute `op` wait-free, returning its response.
    ///
    /// # Panics
    ///
    /// Panics if the handle exceeds its `max_ops` budget or the log arena
    /// is exhausted — the message is the [`UniversalError`] display. Use
    /// [`Self::try_invoke`] to handle exhaustion as a value.
    pub fn invoke(&mut self, op: S::Op) -> S::Resp {
        match self.try_invoke(op) {
            Ok(resp) => resp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Execute `op` wait-free, or report resource exhaustion as a typed
    /// error instead of panicking.
    ///
    /// On [`UniversalError::BudgetExhausted`] nothing was announced and
    /// the call had no effect (repeat calls keep failing the same way).
    /// On [`UniversalError::LogFull`] the operation *was* announced and
    /// may still be threaded by a helper; treat the object as done.
    ///
    /// # Errors
    ///
    /// [`UniversalError::BudgetExhausted`] after `max_ops` invocations on
    /// this handle; [`UniversalError::LogFull`] when the log arena runs
    /// out of undecided positions.
    pub fn try_invoke(&mut self, op: S::Op) -> Result<S::Resp, UniversalError> {
        let seq = self.next_seq;
        if seq >= self.shared.max_ops {
            return Err(UniversalError::BudgetExhausted {
                tid: self.tid,
                max_ops: self.shared.max_ops,
            });
        }
        self.next_seq += 1;

        // 1. Announce.
        failpoint!("universal::announce");
        let entry = Entry { tid: self.tid, seq, op };
        let _ = self.shared.announce[self.tid][seq].set(entry.clone());
        self.shared.announced[self.tid].store(seq + 1, Ordering::SeqCst);
        failpoint!("universal::announced");

        // 2. Thread onto the log, helping the preferred thread of each
        //    position.
        let mut steps = 0usize;
        let mut k = self.shared.hint.load(Ordering::SeqCst);
        while self.shared.done[self.tid].load(Ordering::SeqCst) <= seq {
            if k >= self.shared.positions.len() {
                return Err(UniversalError::LogFull {
                    position: k,
                    capacity: self.shared.positions.len(),
                });
            }
            let preferred = k % self.shared.n;
            let candidate = self.pending(preferred).unwrap_or_else(|| entry.clone());
            failpoint!("universal::cas");
            let winner = self.shared.positions[k].decide(self.tid, candidate);
            self.shared.done[winner.tid].fetch_max(winner.seq + 1, Ordering::SeqCst);
            failpoint!("universal::decided");
            steps += 1;
            k += 1;
            self.shared.hint.fetch_max(k, Ordering::SeqCst);
        }
        self.last_threading_steps = steps;
        self.max_threading_steps = self.max_threading_steps.max(steps);

        // 3. Replay until our own entry is applied.
        loop {
            let Some(e) = self.shared.positions[self.cursor].value() else {
                unreachable!("own entry is threaded at or before the first undecided position")
            };
            let e = e.clone();
            self.cursor += 1;
            if e.seq != self.applied[e.tid] {
                continue; // duplicate from helping
            }
            failpoint!("universal::replay");
            let resp = self.state.apply(Pid(e.tid), &e.op);
            self.applied[e.tid] += 1;
            if e.tid == self.tid && e.seq == seq {
                return Ok(resp);
            }
        }
    }

    /// Replay any outstanding log entries and return a copy of the
    /// current abstract state (a linearizable read of the whole object).
    pub fn refresh(&mut self) -> S {
        while let Some(e) = self.shared.positions[self.cursor].value() {
            let e = e.clone();
            self.cursor += 1;
            if e.seq != self.applied[e.tid] {
                continue;
            }
            self.state.apply(Pid(e.tid), &e.op);
            self.applied[e.tid] += 1;
        }
        self.state.clone()
    }

    /// Total log entries this handle has replayed (diagnostics).
    #[must_use]
    pub fn replayed(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
    use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};

    #[test]
    fn single_thread_matches_spec() {
        let mut handles = WfUniversal::new(FifoQueue::new(), 1, 16);
        let mut h = handles.remove(0);
        assert_eq!(h.invoke(QueueOp::Enq(1)), QueueResp::Ack);
        assert_eq!(h.invoke(QueueOp::Enq(2)), QueueResp::Ack);
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Item(1));
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Item(2));
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Empty);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let threads = 4;
        let per = 500;
        let handles = WfUniversal::new(Counter::new(0), threads, per + 1);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    for _ in 0..per {
                        h.invoke(CounterOp::Add(1));
                    }
                    h
                })
            })
            .collect();
        let mut finished: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let mut last = finished.pop().unwrap();
        match last.invoke(CounterOp::Get) {
            CounterResp::Value(v) => assert_eq!(v, (threads * per) as i64),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fetch_and_add_responses_are_unique_under_contention() {
        // Linearizability witness: every FetchAndAdd(1) must see a
        // distinct old value.
        let threads = 4;
        let per = 300;
        let handles = WfUniversal::new(Counter::new(0), threads, per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    (0..per)
                        .map(|_| match h.invoke(CounterOp::FetchAndAdd(1)) {
                            CounterResp::Value(v) => v,
                            other => panic!("unexpected {other:?}"),
                        })
                        .collect::<Vec<i64>>()
                })
            })
            .collect();
        let mut all: Vec<i64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        all.sort_unstable();
        let expect: Vec<i64> = (0..(threads * per) as i64).collect();
        assert_eq!(all, expect, "each ticket taken exactly once");
    }

    #[test]
    fn queue_items_dequeued_exactly_once() {
        let threads = 4;
        let per = 200;
        let handles = WfUniversal::new(FifoQueue::new(), threads, 2 * per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                let tid = h.tid() as i64;
                thread::spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..per {
                        h.invoke(QueueOp::Enq(tid * 1_000_000 + i as i64));
                        if let QueueResp::Item(v) = h.invoke(QueueOp::Deq) {
                            got.push(v);
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i64> = joins.into_iter().flat_map(|j| j.join().unwrap()).collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "no item dequeued twice");
        assert!(total <= threads * per);
    }

    #[test]
    fn refresh_converges_across_handles() {
        let mut handles = WfUniversal::new(Counter::new(0), 2, 8);
        let mut h1 = handles.pop().unwrap();
        let mut h0 = handles.pop().unwrap();
        h0.invoke(CounterOp::Add(3));
        h0.invoke(CounterOp::Add(4));
        assert_eq!(h1.refresh(), h0.refresh(), "replicas converge");
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn op_budget_is_enforced() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 1);
        let mut h = handles.remove(0);
        h.invoke(CounterOp::Add(1));
        h.invoke(CounterOp::Add(1));
    }

    #[test]
    fn log_full_is_a_typed_error_not_a_panic() {
        // A deliberately tiny arena: the third operation has no
        // undecided position left.
        let mut handles = WfUniversal::with_capacity(Counter::new(0), 1, 8, 2);
        let mut h = handles.remove(0);
        assert!(h.try_invoke(CounterOp::Add(1)).is_ok());
        assert!(h.try_invoke(CounterOp::Add(1)).is_ok());
        match h.try_invoke(CounterOp::Add(1)) {
            Err(UniversalError::LogFull { position, capacity }) => {
                assert_eq!(position, 2);
                assert_eq!(capacity, 2);
            }
            other => panic!("expected LogFull, got {other:?}"),
        }
    }

    #[test]
    fn budget_error_is_typed_stable_and_effect_free() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 2);
        let mut h = handles.remove(0);
        h.invoke(CounterOp::Add(1));
        h.invoke(CounterOp::Add(1));
        for _ in 0..3 {
            assert_eq!(
                h.try_invoke(CounterOp::Add(1)),
                Err(UniversalError::BudgetExhausted { tid: 0, max_ops: 2 })
            );
        }
        // The failed attempts announced nothing: a fresh handle's replay
        // sees exactly two additions.
        assert_eq!(h.refresh(), {
            let mut c = Counter::new(0);
            c.apply(Pid(0), &CounterOp::Add(1));
            c.apply(Pid(0), &CounterOp::Add(1));
            c
        });
    }

    #[test]
    fn error_display_names_the_resource() {
        let log = UniversalError::LogFull { position: 9, capacity: 9 };
        assert!(log.to_string().contains("log arena exhausted"));
        let budget = UniversalError::BudgetExhausted { tid: 3, max_ops: 7 };
        assert!(budget.to_string().contains("budget"));
    }

    #[test]
    fn threading_steps_are_counted_and_bounded_solo() {
        let mut handles = WfUniversal::new(Counter::new(0), 1, 8);
        let mut h = handles.remove(0);
        assert_eq!(h.max_threading_steps(), 0);
        h.invoke(CounterOp::Add(1));
        // Alone, threading one op takes exactly one consensus decide.
        assert_eq!(h.last_threading_steps(), 1);
        assert_eq!(h.max_threading_steps(), 1);
        assert_eq!(h.n(), 1);
    }

    #[test]
    fn per_op_position_consumption_is_bounded() {
        // Wait-freedom evidence: with helping, total positions consumed
        // stays within the 2·n·ops arena even under contention.
        let threads = 3;
        let per = 400;
        let handles = WfUniversal::new(Counter::new(0), threads, per);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    for _ in 0..per {
                        h.invoke(CounterOp::Add(1));
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
    }
}
