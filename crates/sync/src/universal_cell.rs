//! The original [`ConsensusCell`]-based universal object, kept as the
//! fidelity baseline.
//!
//! This is §4's construction exactly as first built here: a shared log
//! in which each position is a one-shot [`ConsensusCell`] (slot-write +
//! usize-CAS + slot-read per decide), an eagerly allocated
//! `2·n·max_ops + 16` position arena, and an `Entry` clone per threading
//! iteration. [`crate::universal`] supersedes it on the hot path with
//! single-CAS pointer consensus and a segmented, lazily grown log; this
//! module stays because
//!
//! * it is the most literal hardware transcription of Figure 4-5, the
//!   shape the explorer/model crates cross-check against, and
//! * it is the *before* leg of the `bench_universal` comparison — the
//!   recorded speedup in `BENCH_universal.json` is measured against this
//!   implementation, so it must keep running.
//!
//! Aside from the renaming ([`CellUniversal`]/[`CellHandle`]) and the
//! shared [`UniversalError`]/[`Entry`] types, the algorithm, memory
//! orderings (uniformly `SeqCst`) and failpoint sites are unchanged from
//! the seed. The sites carry the same `universal::*` names as the
//! optimised path so the fault-injection harness can stress either
//! implementation with one adversary plan (`universal::collect` exists
//! only on the optimised path's combining scan and never fires here —
//! this path decides one op per position, always; likewise
//! `universal::checkpoint`/`universal::reclaim` — this path never
//! truncates, which is exactly what makes it the unbounded reference
//! leg of the checkpointed-equivalence tests in
//! `tests/universal_equivalence.rs`).

use waitfree_sched::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use waitfree_faults::failpoint;
use waitfree_model::{ObjectSpec, Pid};

use crate::consensus::ConsensusCell;
use crate::universal::{Entry, UniversalError};

#[derive(Debug)]
struct Shared<S: ObjectSpec> {
    n: usize,
    max_ops: usize,
    /// `announce[tid][seq]`.
    announce: Vec<Vec<OnceLock<Entry<S::Op>>>>,
    /// Number of operations thread `tid` has announced.
    announced: Vec<AtomicUsize>,
    /// Number of operations of thread `tid` threaded onto the log.
    done: Vec<AtomicUsize>,
    /// The log.
    positions: Vec<ConsensusCell<Entry<S::Op>>>,
    /// Lower bound on the first undecided position.
    hint: AtomicUsize,
}

/// The unoptimised wait-free universal object (see the module docs for
/// why it is kept). Same API shape as
/// [`WfUniversal`](crate::universal::WfUniversal): a factory returning
/// one [`CellHandle`] per thread.
///
/// # Example
///
/// ```
/// use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
/// use waitfree_sync::universal_cell::CellUniversal;
///
/// let mut handles = CellUniversal::new(Counter::new(0), 2, 16);
/// let mut h0 = handles.remove(0);
/// assert_eq!(h0.invoke(CounterOp::FetchAndAdd(5)), CounterResp::Value(0));
/// ```
pub struct CellUniversal<S: ObjectSpec>(std::marker::PhantomData<S>);

impl<S: ObjectSpec> CellUniversal<S> {
    /// Build the object for `n` threads, each performing at most
    /// `max_ops` operations, returning one handle per thread.
    ///
    /// The log arena holds `2·n·max_ops + 16` positions (each entry may
    /// be duplicated by helping), each an n-slot [`ConsensusCell`] —
    /// allocated eagerly, the O(n²·max_ops) footprint the segmented path
    /// removes.
    #[allow(clippy::new_ret_no_self)]
    #[must_use]
    pub fn new(initial: S, n: usize, max_ops: usize) -> Vec<CellHandle<S>> {
        Self::with_capacity(initial, n, max_ops, 2 * n * max_ops + 16)
    }

    /// [`CellUniversal::new`] with an explicit log-arena capacity, for
    /// tests that need to observe [`UniversalError::LogFull`] without
    /// allocating a large arena first.
    #[must_use]
    pub fn with_capacity(
        initial: S,
        n: usize,
        max_ops: usize,
        capacity: usize,
    ) -> Vec<CellHandle<S>> {
        let shared = Arc::new(Shared {
            n,
            max_ops,
            announce: (0..n)
                .map(|_| (0..max_ops).map(|_| OnceLock::new()).collect())
                .collect(),
            announced: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            done: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            positions: (0..capacity).map(|_| ConsensusCell::new(n)).collect(),
            hint: AtomicUsize::new(0),
        });
        (0..n)
            .map(|tid| CellHandle {
                shared: Arc::clone(&shared),
                tid,
                state: initial.clone(),
                applied: vec![0; n],
                cursor: 0,
                next_seq: 0,
                last_threading_steps: 0,
                max_threading_steps: 0,
            })
            .collect()
    }
}

/// One thread's handle onto a [`CellUniversal`] object. Not `Clone`: the
/// thread identity is baked in.
#[derive(Debug)]
pub struct CellHandle<S: ObjectSpec> {
    shared: Arc<Shared<S>>,
    tid: usize,
    /// Cached replica, replayed up to `cursor`.
    state: S,
    /// Per-thread watermark of applied sequence numbers (deduplication).
    applied: Vec<usize>,
    /// First log position not yet replayed.
    cursor: usize,
    next_seq: usize,
    /// Threading-loop iterations (consensus decides) of the last invoke.
    last_threading_steps: usize,
    /// Maximum threading-loop iterations over any single invoke.
    max_threading_steps: usize,
}

impl<S: ObjectSpec> CellHandle<S> {
    /// This handle's thread index.
    #[must_use]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Number of threads sharing the object (the `n` of the O(n)
    /// helping bound).
    #[must_use]
    pub fn n(&self) -> usize {
        self.shared.n
    }

    /// Consensus decides the last completed `invoke` spent threading its
    /// operation.
    #[must_use]
    pub fn last_threading_steps(&self) -> usize {
        self.last_threading_steps
    }

    /// Worst [`Self::last_threading_steps`] across this handle's life.
    #[must_use]
    pub fn max_threading_steps(&self) -> usize {
        self.max_threading_steps
    }

    /// The oldest announced-but-unthreaded entry of thread `t`, if any.
    fn pending(&self, t: usize) -> Option<Entry<S::Op>> {
        let d = self.shared.done[t].load(Ordering::SeqCst);
        let a = self.shared.announced[t].load(Ordering::SeqCst);
        if d < a {
            self.shared.announce[t][d].get().cloned()
        } else {
            None
        }
    }

    /// Execute `op` wait-free, returning its response.
    ///
    /// # Panics
    ///
    /// Panics if the handle exceeds its `max_ops` budget or the log arena
    /// is exhausted — the message is the [`UniversalError`] display. Use
    /// [`Self::try_invoke`] to handle exhaustion as a value.
    pub fn invoke(&mut self, op: S::Op) -> S::Resp {
        match self.try_invoke(op) {
            Ok(resp) => resp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Execute `op` wait-free, or report resource exhaustion as a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// [`UniversalError::BudgetExhausted`] after `max_ops` invocations on
    /// this handle; [`UniversalError::LogFull`] when the log arena runs
    /// out of undecided positions.
    pub fn try_invoke(&mut self, op: S::Op) -> Result<S::Resp, UniversalError> {
        let seq = self.next_seq;
        if seq >= self.shared.max_ops {
            return Err(UniversalError::BudgetExhausted {
                tid: self.tid,
                max_ops: self.shared.max_ops,
            });
        }
        self.next_seq += 1;

        // 1. Announce.
        failpoint!("universal::announce");
        let entry = Entry { tid: self.tid, seq, op };
        let _ = self.shared.announce[self.tid][seq].set(entry.clone());
        self.shared.announced[self.tid].store(seq + 1, Ordering::SeqCst);
        failpoint!("universal::announced");

        // 2. Thread onto the log, helping the preferred thread of each
        //    position.
        let mut steps = 0usize;
        let mut k = self.shared.hint.load(Ordering::SeqCst);
        // progress: wait-free — the §4 helping bound: position `k`
        // advances every iteration and our announced op is decided within
        // `n` positions of the entry hint.
        while self.shared.done[self.tid].load(Ordering::SeqCst) <= seq {
            if k >= self.shared.positions.len() {
                return Err(UniversalError::LogFull {
                    position: k,
                    capacity: self.shared.positions.len(),
                });
            }
            let preferred = k % self.shared.n;
            let candidate = self.pending(preferred).unwrap_or_else(|| entry.clone());
            failpoint!("universal::cas");
            let winner = self.shared.positions[k].decide(self.tid, candidate);
            self.shared.done[winner.tid].fetch_max(winner.seq + 1, Ordering::SeqCst);
            failpoint!("universal::decided");
            steps += 1;
            k += 1;
            self.shared.hint.fetch_max(k, Ordering::SeqCst);
        }
        self.last_threading_steps = steps;
        self.max_threading_steps = self.max_threading_steps.max(steps);

        // 3. Replay until our own entry is applied.
        // progress: bounded — applies one decided position per iteration
        // until our own entry is reached.
        loop {
            let Some(e) = self.shared.positions[self.cursor].value() else {
                unreachable!("own entry is threaded at or before the first undecided position")
            };
            let e = e.clone();
            self.cursor += 1;
            if e.seq != self.applied[e.tid] {
                continue; // duplicate from helping
            }
            failpoint!("universal::replay");
            let resp = self.state.apply(Pid(e.tid), &e.op);
            self.applied[e.tid] += 1;
            if e.tid == self.tid && e.seq == seq {
                return Ok(resp);
            }
        }
    }

    /// Replay any outstanding log entries and return a copy of the
    /// current abstract state (a linearizable read of the whole object).
    pub fn refresh(&mut self) -> S {
        // progress: bounded — one decided position per iteration; stops
        // at the first undecided slot.
        while let Some(e) = self.shared.positions[self.cursor].value() {
            let e = e.clone();
            self.cursor += 1;
            if e.seq != self.applied[e.tid] {
                continue;
            }
            self.state.apply(Pid(e.tid), &e.op);
            self.applied[e.tid] += 1;
        }
        self.state.clone()
    }

    /// Total log entries this handle has replayed (diagnostics).
    #[must_use]
    pub fn replayed(&self) -> usize {
        self.cursor
    }

    /// The decided prefix of the log as `(tid, seq)` pairs, from
    /// position 0 to the first undecided cell — the counterpart of
    /// [`WfHandle::decided_log`](crate::universal::WfHandle::decided_log)
    /// for the cross-implementation equivalence tests. The shapes stay
    /// comparable because the pointer path *flattens* its combined
    /// batches into the same per-op `(tid, seq)` granularity this path
    /// produces natively. Quiescently consistent, like the pointer
    /// path's.
    #[must_use]
    pub fn decided_log(&self) -> Vec<(usize, usize)> {
        self.shared
            .positions
            .iter()
            .map_while(|cell| cell.value().map(|e| (e.tid, e.seq)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waitfree_sched::thread;
    use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
    use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};

    #[test]
    fn single_thread_matches_spec() {
        let mut handles = CellUniversal::new(FifoQueue::new(), 1, 16);
        let mut h = handles.remove(0);
        assert_eq!(h.invoke(QueueOp::Enq(1)), QueueResp::Ack);
        assert_eq!(h.invoke(QueueOp::Enq(2)), QueueResp::Ack);
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Item(1));
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Item(2));
        assert_eq!(h.invoke(QueueOp::Deq), QueueResp::Empty);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let threads = 4;
        let per = 300;
        let handles = CellUniversal::new(Counter::new(0), threads, per + 1);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    for _ in 0..per {
                        h.invoke(CounterOp::Add(1));
                    }
                    h
                })
            })
            .collect();
        let mut finished: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let mut last = finished.pop().unwrap();
        match last.invoke(CounterOp::Get) {
            CounterResp::Value(v) => assert_eq!(v, (threads * per) as i64),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn log_full_is_a_typed_error_not_a_panic() {
        let mut handles = CellUniversal::with_capacity(Counter::new(0), 1, 8, 2);
        let mut h = handles.remove(0);
        assert!(h.try_invoke(CounterOp::Add(1)).is_ok());
        assert!(h.try_invoke(CounterOp::Add(1)).is_ok());
        match h.try_invoke(CounterOp::Add(1)) {
            Err(UniversalError::LogFull { position, capacity }) => {
                assert_eq!(position, 2);
                assert_eq!(capacity, 2);
            }
            other => panic!("expected LogFull, got {other:?}"),
        }
    }

    #[test]
    fn refresh_converges_across_handles() {
        let mut handles = CellUniversal::new(Counter::new(0), 2, 8);
        let mut h1 = handles.pop().unwrap();
        let mut h0 = handles.pop().unwrap();
        h0.invoke(CounterOp::Add(3));
        h0.invoke(CounterOp::Add(4));
        assert_eq!(h1.refresh(), h0.refresh(), "replicas converge");
    }

    #[test]
    fn matches_the_pointer_path_on_a_shared_script() {
        // Cross-implementation witness: the baseline and the optimised
        // path compute identical responses for the same single-threaded
        // script.
        use crate::universal::WfUniversal;
        let script: Vec<QueueOp> = (0..40)
            .flat_map(|i| [QueueOp::Enq(i), QueueOp::Deq])
            .collect();
        let mut cell = CellUniversal::new(FifoQueue::new(), 1, script.len()).remove(0);
        let mut ptr = WfUniversal::new(FifoQueue::new(), 1, script.len()).remove(0);
        for op in script {
            assert_eq!(cell.invoke(op.clone()), ptr.invoke(op));
        }
    }
}
