//! The Herlihy–Wing queue from fetch-and-add and swap — the paper's own
//! earlier construction (its citation \[10\]), referenced in §3.4:
//!
//! > *Elsewhere, we have given an implementation of a FIFO queue using
//! > read, fetch-and-add, and swap operations that permits an arbitrary
//! > number of concurrent enq and deq operations. (Although this queue
//! > does not use mutual exclusion, it is not wait-free, since a deq
//! > applied to an empty queue busy-waits until an item is enqueued.)
//! > Corollary 13 implies that this queue implementation cannot be
//! > extended to support a wait-free peek operation.*
//!
//! `enq` is wait-free (one fetch-and-add + one store). `deq` sweeps the
//! occupied prefix with atomic swaps; the *blocking* flavor busy-waits on
//! an empty queue exactly as the paper says, and the total `try_deq`
//! returns `None` after one sweep. There is deliberately no `peek`: by
//! Corollary 13 no wait-free one can exist over these primitives.

//! Failpoint sites (feature `failpoints`): `faa_queue::enq_faa` before
//! the ticket fetch-and-add, `faa_queue::enq_store` between taking the
//! ticket and storing the item (a crash here leaves a permanently empty
//! slot — the visible wound of a halt failure in this construction), and
//! `faa_queue::deq_sweep` before each sweep's swap.

use waitfree_sched::atomic::{AtomicI64, AtomicUsize, Ordering};

use waitfree_faults::failpoint;

/// Slot sentinel: empty.
const EMPTY: i64 = i64::MIN;

/// The Herlihy–Wing FAA/swap queue over `i64` items (which must not be
/// `i64::MIN`), with a fixed slot arena.
#[derive(Debug)]
pub struct FaaQueue {
    back: AtomicUsize,
    items: Box<[AtomicI64]>,
}

impl FaaQueue {
    /// A queue with capacity for `capacity` lifetime enqueues.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FaaQueue {
            back: AtomicUsize::new(0),
            items: (0..capacity).map(|_| AtomicI64::new(EMPTY)).collect(),
        }
    }

    /// Enqueue an item. Wait-free: one fetch-and-add, one store.
    ///
    /// # Panics
    ///
    /// Panics if the slot arena is exhausted or `item == i64::MIN`.
    pub fn enq(&self, item: i64) {
        assert_ne!(item, EMPTY, "i64::MIN is the empty sentinel");
        failpoint!("faa_queue::enq_faa");
        let i = self.back.fetch_add(1, Ordering::SeqCst);
        assert!(i < self.items.len(), "queue arena exhausted");
        failpoint!("faa_queue::enq_store");
        self.items[i].store(item, Ordering::SeqCst);
    }

    /// One sweep over the occupied prefix: remove and return the first
    /// present item. Total (returns `None` on empty) but *not*
    /// linearizable as a standalone `deq` — this is the paper's point
    /// about this construction living below wait-free totality.
    pub fn try_deq(&self) -> Option<i64> {
        let range = self.back.load(Ordering::SeqCst).min(self.items.len());
        for i in 0..range {
            failpoint!("faa_queue::deq_sweep");
            let x = self.items[i].swap(EMPTY, Ordering::SeqCst);
            if x != EMPTY {
                return Some(x);
            }
        }
        None
    }

    /// The paper's blocking `deq`: busy-wait until an item appears. Not
    /// wait-free — a crashed producer leaves consumers spinning, which is
    /// exactly the §3.4 caveat.
    pub fn deq_blocking(&self) -> i64 {
        // progress: bounded — by the next successful `enq`: this is the
        // deliberately *blocking* consumer of the §3.4 caveat (a crashed
        // producer starves it); `try_deq` is the non-blocking form.
        loop {
            if let Some(x) = self.try_deq() {
                return x;
            }
            std::hint::spin_loop();
        }
    }

    /// Number of enqueue tickets issued so far.
    #[must_use]
    pub fn tickets(&self) -> usize {
        self.back.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use waitfree_sched::thread;

    #[test]
    fn fifo_single_thread() {
        let q = FaaQueue::new(8);
        q.enq(1);
        q.enq(2);
        q.enq(3);
        assert_eq!(q.try_deq(), Some(1));
        assert_eq!(q.try_deq(), Some(2));
        assert_eq!(q.try_deq(), Some(3));
        assert_eq!(q.try_deq(), None);
    }

    #[test]
    fn concurrent_enqueue_conserves_items() {
        let producers = 4;
        let per = 500;
        let q = Arc::new(FaaQueue::new(producers * per));
        let joins: Vec<_> = (0..producers)
            .map(|t| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..per {
                        q.enq((t * per + i) as i64);
                    }
                })
            })
            .collect();
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(q.tickets(), producers * per);
        let mut all = Vec::new();
        while let Some(v) = q.try_deq() {
            all.push(v);
        }
        all.sort_unstable();
        let expect: Vec<i64> = (0..(producers * per) as i64).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn concurrent_producers_and_consumers() {
        let q = Arc::new(FaaQueue::new(4000));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..2000 {
                    q.enq(i);
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while got.len() < 2000 {
                    got.push(q.deq_blocking());
                }
                got
            })
        };
        producer.join().unwrap();
        let got = consumer.join().unwrap();
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 2000, "each item exactly once");
    }

    #[test]
    fn per_producer_order_preserved_single_consumer() {
        // With one producer and one consumer, the queue is FIFO.
        let q = Arc::new(FaaQueue::new(1000));
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..1000 {
                    q.enq(i);
                }
            })
        };
        let consumer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut last = -1;
                for _ in 0..1000 {
                    let v = q.deq_blocking();
                    assert!(v > last, "FIFO violated: {v} after {last}");
                    last = v;
                }
            })
        };
        producer.join().unwrap();
        consumer.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "arena exhausted")]
    fn arena_bound_is_explicit() {
        let q = FaaQueue::new(1);
        q.enq(1);
        q.enq(2);
    }
}
