//! Seeded key→shard partitioner.
//!
//! Routing must be a pure function of `(seed, shard count, key)` — it
//! runs both in the front-end (to pick a log) and inside the shard
//! state machine (to filter a multi-op descriptor down to the keys a
//! given shard owns), and every replica of a shard's state must route
//! identically or replay diverges. That rules out
//! `std::collections::hash_map::DefaultHasher`, whose output is
//! per-process randomized; we hand-roll 64-bit FNV-1a with the seed
//! folded into the offset basis instead.
//!
//! **Stability scope.** The partition is stable across processes of
//! the same build on the same platform — all this crate needs, since
//! shard state never crosses machines. The seed and every fixed-width
//! integer write are fed in as explicit little-endian bytes (the
//! `Hasher` defaults use `to_ne_bytes`, which would partition
//! differently on big-endian hosts), so primitive keys also route
//! identically across architectures; full cross-platform/cross-version
//! stability would additionally require key `Hash` impls that emit
//! platform-independent bytes and a frozen std `Hash` layout (e.g.
//! `str`'s), which Rust does not promise.

use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic 64-bit FNV-1a, seeded. Implements [`Hasher`] so any
/// `Hash` key feeds it through the standard derive.
#[derive(Debug, Clone)]
pub struct SeededFnv(u64);

impl SeededFnv {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // Fold the seed in as if it were the first 8 bytes of input, so
        // distinct seeds give unrelated (not merely shifted) functions.
        let mut h = SeededFnv(FNV_OFFSET);
        h.write(&seed.to_le_bytes());
        h
    }
}

impl Hasher for SeededFnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    // Fixed-width integers hash as little-endian bytes regardless of
    // host endianness (the trait defaults use `to_ne_bytes`). The
    // signed and `isize` defaults forward to these; `usize` widens to
    // u64 so 32- and 64-bit hosts agree too.

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }

    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }

    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        self.write(&(i as u64).to_le_bytes());
    }
}

/// The shard owning `key` under `seed`, in `0..shards`.
///
/// # Panics
/// If `shards == 0`.
#[must_use]
pub fn route<K: Hash + ?Sized>(seed: u64, shards: usize, key: &K) -> usize {
    assert!(shards > 0, "a store has at least one shard");
    let mut h = SeededFnv::new(seed);
    key.hash(&mut h);
    // Map to the range by multiply-shift rather than modulo: FNV's low
    // bits are its weakest, and this uses the full word.
    ((u128::from(h.finish()) * shards as u128) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hasher_instances() {
        for seed in [0u64, 1, 0xdead_beef] {
            for key in 0..200u64 {
                assert_eq!(route(seed, 4, &key), route(seed, 4, &key));
            }
        }
    }

    #[test]
    fn one_shard_routes_everything_to_zero() {
        for key in 0..100u64 {
            assert_eq!(route(7, 1, &key), 0);
        }
    }

    #[test]
    fn spreads_keys_across_shards() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for key in 0..4000u64 {
            counts[route(42, shards, &key)] += 1;
        }
        // Loose balance bound: every shard sees at least half its fair
        // share of a uniform key space.
        for (s, &c) in counts.iter().enumerate() {
            assert!(c >= 500, "shard {s} got only {c}/4000 keys");
        }
    }

    /// Golden values pinning the hash function: any change to the byte
    /// feeding (endianness, seed folding, width handling) moves keys
    /// between shards and must be a conscious, flagged decision.
    #[test]
    fn route_is_pinned() {
        let got: Vec<usize> = (0..8u64).map(|k| route(0, 4, &k)).collect();
        assert_eq!(got, [2, 1, 3, 2, 0, 3, 1, 0]);
        assert_eq!(route(7, 16, "hello"), 11);
        assert_eq!(route(7, 16, &5u32), 9);
        // `usize` widens to u64, so word size doesn't repartition.
        assert_eq!(route(7, 16, &5usize), route(7, 16, &5u64));
        assert_eq!(route(7, 16, &5usize), 3);
    }

    #[test]
    fn seed_changes_the_partition() {
        let moved = (0..1000u64)
            .filter(|k| route(1, 8, k) != route(2, 8, k))
            .count();
        assert!(moved > 500, "seeds 1 and 2 agree on {} of 1000 keys", 1000 - moved);
    }
}
