//! The per-shard replicated state machine.
//!
//! Each shard of a [`ShardedStore`](crate::ShardedStore) is one
//! `WfUniversal<ShardState<K, V, M>>`: a deterministic sequential
//! object decided into a consensus log and replayed identically by
//! every client. Everything the store guarantees — multi-key atomicity
//! and consistent snapshots included — is therefore expressed as *state
//! transitions of this machine*; the front-end in `lib.rs` only chooses
//! which ops to decide where.
//!
//! Three op families:
//!
//! * **Single-key** ([`ShardOp::Get`]/[`Put`](ShardOp::Put)/
//!   [`Cas`](ShardOp::Cas)/[`Update`](ShardOp::Update)) read or mutate
//!   `map` directly. A mutator targeting a key locked by an in-flight
//!   multi-op returns [`ShardResp::Blocked`] with the full holder
//!   descriptor — enough for the caller to *help* the multi-op to
//!   completion and retry. Reads never block: a pending multi has
//!   written nothing yet, so a `Get` linearizes before its resolve.
//!
//! * **Multi-key two-phase** ([`ShardOp::Prepare`]/[`Resolve`](ShardOp::Resolve)).
//!   `Prepare` atomically locks every locally-owned key of the
//!   descriptor, evaluates the local expectations, and records an
//!   immutable vote. `Resolve` applies the writes (on commit), frees
//!   the locks, and leaves a tombstone. Both are idempotent under
//!   helping: a duplicate `Prepare` returns the recorded vote, a
//!   duplicate `Resolve` acks. Votes are recorded exactly once per
//!   shard, so every resolver — initiator or helper — computes the
//!   same commit verdict.
//!
//! * **Snapshot markers** ([`ShardOp::Marker`]). Deciding `Marker{e}`
//!   captures this shard's contribution to global snapshot `e`
//!   ([`SnapPart`]). Consistency across shards is the *stamp rule*:
//!   every mutating op carries the epoch its client read **before**
//!   invoking ([`Ctx::epoch`]), and a mutation stamped `>= e` that gets
//!   decided before shard-local marker `e` triggers a pre-mutation
//!   *early capture* — the part is photographed before the mutation
//!   applies, so the straggler is excluded. See DESIGN §13 for the
//!   argument that this yields a causally consistent cut.
//!
//! All maps are `BTreeMap`/`BTreeSet` (not hash maps): the state must
//! be `Eq + Hash` for the linearizability checker, and iteration order
//! must be deterministic for replay.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::hash::Hash;
use std::marker::PhantomData;

use waitfree_model::{ObjectSpec, Pid};

use crate::router::route;

/// Store-wide unique identity of one multi-key operation, drawn from a
/// shared counter so helpers and initiators name the same attempt.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MultiId(pub u64);

/// Causal context stamped on every mutating op by the invoking client.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Ctx {
    /// The store epoch counter as read by the client immediately before
    /// this invoke. Drives snapshot early-capture (see module docs).
    pub epoch: u64,
    /// Shard versions this client has observed (from prior responses).
    /// Merged into [`ShardState::know`] so the debug-mode cut check can
    /// verify the snapshot against real cross-shard dependencies.
    pub know: BTreeMap<usize, u64>,
}

/// Full description of one multi-key atomic op, replicated to every
/// involved shard so *any* client holding it can finish the op.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MultiDesc<K: Ord, V> {
    pub id: MultiId,
    /// Per-key expectations (`None` = absent) evaluated at prepare
    /// time; empty for an unconditional `multi_put`.
    pub expects: BTreeMap<K, Option<V>>,
    /// Per-key writes applied on commit (`None` = remove).
    pub writes: BTreeMap<K, Option<V>>,
    /// Involved shards, ascending — the canonical lock order. Recorded
    /// here (not recomputed) so snapshot assembly can check
    /// all-or-nothing application against the intended shard set.
    pub shards: Vec<usize>,
}

impl<K: Ord + Hash, V> MultiDesc<K, V> {
    /// Keys of this descriptor owned by `shard` (expects ∪ writes).
    fn local_keys(&self, seed: u64, nshards: usize, shard: usize) -> Vec<&K> {
        let mut keys: Vec<&K> = self
            .expects
            .keys()
            .chain(self.writes.keys())
            .filter(|k| route(seed, nshards, *k) == shard)
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

/// A prepared-but-unresolved multi-op on one shard.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PendingMulti<K: Ord, V> {
    pub desc: MultiDesc<K, V>,
    /// This shard's vote, fixed at first prepare: local expectations
    /// held. Immutable thereafter — locks keep the inputs stable.
    pub vote: bool,
}

/// One shard's contribution to a global snapshot.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SnapPart<K: Ord, V> {
    pub epoch: u64,
    pub map: BTreeMap<K, V>,
    /// Multi-ops prepared but not yet resolved at the cut. Snapshot
    /// assembly patches these against `applied` elsewhere (torn-multi
    /// repair) — see [`crate::ShardedStore`] docs.
    pub pending: BTreeMap<MultiId, PendingMulti<K, V>>,
    /// Committed multi-ops (id → involved shards).
    pub applied: BTreeMap<MultiId, Vec<usize>>,
    /// Mutation counter at the cut.
    pub version: u64,
    /// Observed-shard-version vector at the cut (debug cut check).
    pub know: BTreeMap<usize, u64>,
}

/// How [`ShardedStore::fetch_update`](crate::ShardedStore) transforms a
/// value. A merge is data, not a closure: it travels inside log
/// entries, so it must be `Eq + Hash + Debug` like any other op
/// payload, and `merge` must be deterministic.
pub trait Merge<V>: Clone + Eq + Hash + Debug {
    /// New value (`None` = remove) from the current one.
    fn merge(&self, current: Option<&V>) -> Option<V>;
}

/// The identity merge: `fetch_update` with `()` is a plain read that
/// still decides through the log (a linearization witness).
impl<V: Clone> Merge<V> for () {
    fn merge(&self, current: Option<&V>) -> Option<V> {
        current.cloned()
    }
}

/// Saturating-free additive merge for `i64` values, treating absent as
/// zero. The workhorse of the exact-count fault postconditions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Bump(pub i64);

impl Merge<i64> for Bump {
    fn merge(&self, current: Option<&i64>) -> Option<i64> {
        Some(current.copied().unwrap_or(0) + self.0)
    }
}

/// Operations decided into one shard's log.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ShardOp<K: Ord, V, M> {
    Get { key: K },
    /// Write (`Some`) or remove (`None`) one key.
    Put { key: K, val: Option<V>, ctx: Ctx },
    Cas { key: K, expect: Option<V>, new: Option<V>, ctx: Ctx },
    Update { key: K, merge: M, ctx: Ctx },
    Prepare { desc: MultiDesc<K, V>, ctx: Ctx },
    Resolve { id: MultiId, commit: bool, ctx: Ctx },
    Marker { epoch: u64 },
}

/// Responses from one shard. Every variant carries the shard `version`
/// at response time so clients maintain their observed-version vector.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ShardResp<K: Ord, V> {
    /// `Get` result.
    Value { val: Option<V>, version: u64 },
    /// Previous value from `Put`/`Update`.
    Prev { prev: Option<V>, version: u64 },
    /// `Cas` outcome.
    CasResult { ok: bool, prev: Option<V>, version: u64 },
    /// `Prepare` accepted; this shard's vote.
    Vote { ok: bool, version: u64 },
    /// `Prepare` raced a finished multi: the recorded verdict.
    Resolved { commit: bool, version: u64 },
    /// The key (or a descriptor key) is locked by another in-flight
    /// multi-op; the full holder descriptor enables helping.
    Blocked { holder: Box<MultiDesc<K, V>>, version: u64 },
    /// `Resolve` applied (or was already applied).
    Ack { version: u64 },
    /// `Marker` capture.
    Part(Box<SnapPart<K, V>>),
}

/// The shard state machine. See module docs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ShardState<K: Ord, V, M> {
    /// This replica's shard index and the routing parameters — constants
    /// after construction, carried in-state so `apply` can route
    /// descriptor keys without out-of-band context.
    shard: usize,
    nshards: usize,
    seed: u64,
    /// Mutation counter: bumped by every state-changing transition.
    version: u64,
    map: BTreeMap<K, V>,
    /// Key → holder of in-flight multi-op locks. A key appears here iff
    /// its holder is in `pending`.
    locks: BTreeMap<K, MultiId>,
    pending: BTreeMap<MultiId, PendingMulti<K, V>>,
    /// Commit tombstones (id → involved shards). Kept for the life of
    /// the state: an arbitrarily stalled helper may re-send `Prepare`
    /// or `Resolve` for an ancient multi, and forgetting the verdict
    /// would re-lock keys or re-apply writes. Checkpoint/truncation of
    /// the *log* (PR 7) is unaffected — tombstones live in the state
    /// image, and one id costs a handful of words.
    applied: BTreeMap<MultiId, Vec<usize>>,
    /// Abort tombstones, same retention argument.
    aborted: BTreeSet<MultiId>,
    /// Max observed version per shard over all ops applied here.
    know: BTreeMap<usize, u64>,
    /// Snapshot bookkeeping: every epoch `<= snap_floor` has its marker
    /// applied here; `snap_done` holds applied epochs above the floor.
    snap_floor: u64,
    snap_done: BTreeSet<u64>,
    /// Pre-mutation captures for epochs whose marker has not reached
    /// this shard but whose existence a straggling mutation revealed
    /// (stamp rule, module docs). Claimed and removed by the marker.
    early: BTreeMap<u64, SnapPart<K, V>>,
    _merge: PhantomData<M>,
}

impl<K, V, M> ShardState<K, V, M>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    #[must_use]
    pub fn new(shard: usize, nshards: usize, seed: u64) -> Self {
        ShardState {
            shard,
            nshards,
            seed,
            version: 0,
            map: BTreeMap::new(),
            locks: BTreeMap::new(),
            pending: BTreeMap::new(),
            applied: BTreeMap::new(),
            aborted: BTreeSet::new(),
            know: BTreeMap::new(),
            snap_floor: 0,
            snap_done: BTreeSet::new(),
            early: BTreeMap::new(),
            _merge: PhantomData,
        }
    }

    /// Photograph the capture-relevant state *now*.
    fn part_now(&self, epoch: u64) -> SnapPart<K, V> {
        SnapPart {
            epoch,
            map: self.map.clone(),
            pending: self.pending.clone(),
            applied: self.applied.clone(),
            version: self.version,
            know: self.know.clone(),
        }
    }

    /// The stamp rule: a mutation stamped `stamp` proves every epoch in
    /// `(snap_floor, stamp]` was opened before it ran. Any such epoch
    /// whose marker has not reached this shard gets an early capture of
    /// the **pre-mutation** state, excluding the mutation from the cut.
    fn pre_capture(&mut self, stamp: u64) {
        let mut e = self.snap_floor + 1;
        while e <= stamp {
            if !self.snap_done.contains(&e) && !self.early.contains_key(&e) {
                let part = self.part_now(e);
                self.early.insert(e, part);
            }
            e += 1;
        }
    }

    /// Apply a mutating op's context: early-capture first (so an
    /// excluded op's effects — including its knowledge — stay out of
    /// the cut), then merge the client's observed-version vector.
    fn absorb(&mut self, ctx: &Ctx) {
        self.pre_capture(ctx.epoch);
        for (&s, &v) in &ctx.know {
            let e = self.know.entry(s).or_insert(0);
            if v > *e {
                *e = v;
            }
        }
    }

    /// The holder descriptor blocking `key`, if any.
    fn holder_of(&self, key: &K) -> Option<Box<MultiDesc<K, V>>> {
        let id = self.locks.get(key)?;
        let pm = self
            .pending
            .get(id)
            .expect("a locked key's holder is pending (lock/pending invariant)");
        Some(Box::new(pm.desc.clone()))
    }

    fn apply_writes_of(&mut self, desc: &MultiDesc<K, V>) {
        for (k, w) in &desc.writes {
            if route(self.seed, self.nshards, k) != self.shard {
                continue;
            }
            match w {
                Some(v) => {
                    self.map.insert(k.clone(), v.clone());
                }
                None => {
                    self.map.remove(k);
                }
            }
        }
    }

    fn prepare(&mut self, desc: &MultiDesc<K, V>) -> ShardResp<K, V> {
        let id = desc.id;
        if let Some(shards) = self.applied.get(&id) {
            debug_assert_eq!(shards, &desc.shards);
            return ShardResp::Resolved { commit: true, version: self.version };
        }
        if self.aborted.contains(&id) {
            return ShardResp::Resolved { commit: false, version: self.version };
        }
        if let Some(pm) = self.pending.get(&id) {
            return ShardResp::Vote { ok: pm.vote, version: self.version };
        }
        let local = desc.local_keys(self.seed, self.nshards, self.shard);
        for k in &local {
            if let Some(holder) = self.locks.get(*k) {
                if *holder != id {
                    let holder = self
                        .holder_of(*k)
                        .expect("locked key has a pending holder");
                    return ShardResp::Blocked { holder, version: self.version };
                }
            }
        }
        let vote = desc
            .expects
            .iter()
            .filter(|(k, _)| route(self.seed, self.nshards, k) == self.shard)
            .all(|(k, expect)| self.map.get(k) == expect.as_ref());
        for k in local {
            self.locks.insert(k.clone(), id);
        }
        self.pending.insert(id, PendingMulti { desc: desc.clone(), vote });
        self.version += 1;
        ShardResp::Vote { ok: vote, version: self.version }
    }

    fn resolve(&mut self, id: MultiId, commit: bool) -> ShardResp<K, V> {
        if self.applied.contains_key(&id) || self.aborted.contains(&id) {
            return ShardResp::Ack { version: self.version };
        }
        let Some(pm) = self.pending.remove(&id) else {
            // A resolve is only ever sent after a prepare decided on
            // this same log, so the id is pending or tombstoned; keep
            // the machine total anyway (apply never panics the log).
            return ShardResp::Ack { version: self.version };
        };
        for k in pm.desc.local_keys(self.seed, self.nshards, self.shard) {
            if self.locks.get(k) == Some(&id) {
                self.locks.remove(k);
            }
        }
        if commit {
            self.apply_writes_of(&pm.desc);
            self.applied.insert(id, pm.desc.shards.clone());
        } else {
            self.aborted.insert(id);
        }
        self.version += 1;
        ShardResp::Ack { version: self.version }
    }

    fn marker(&mut self, e: u64) -> ShardResp<K, V> {
        let part = match self.early.remove(&e) {
            Some(p) => p,
            None => self.part_now(e),
        };
        if e > self.snap_floor {
            self.snap_done.insert(e);
            while self.snap_done.remove(&(self.snap_floor + 1)) {
                self.snap_floor += 1;
            }
            // Captures at or below the floor can no longer be claimed.
            let floor = self.snap_floor;
            self.early.retain(|&d, _| d > floor);
        }
        ShardResp::Part(Box::new(part))
    }
}

impl<K, V, M> ObjectSpec for ShardState<K, V, M>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    type Op = ShardOp<K, V, M>;
    type Resp = ShardResp<K, V>;

    fn apply(&mut self, _pid: Pid, op: &Self::Op) -> Self::Resp {
        match op {
            ShardOp::Get { key } => ShardResp::Value {
                val: self.map.get(key).cloned(),
                version: self.version,
            },
            ShardOp::Put { key, val, ctx } => {
                self.absorb(ctx);
                if let Some(holder) = self.holder_of(key) {
                    return ShardResp::Blocked { holder, version: self.version };
                }
                let prev = match val {
                    Some(v) => self.map.insert(key.clone(), v.clone()),
                    None => self.map.remove(key),
                };
                self.version += 1;
                ShardResp::Prev { prev, version: self.version }
            }
            ShardOp::Cas { key, expect, new, ctx } => {
                self.absorb(ctx);
                if let Some(holder) = self.holder_of(key) {
                    return ShardResp::Blocked { holder, version: self.version };
                }
                let prev = self.map.get(key).cloned();
                let ok = prev == *expect;
                if ok {
                    match new {
                        Some(v) => {
                            self.map.insert(key.clone(), v.clone());
                        }
                        None => {
                            self.map.remove(key);
                        }
                    }
                    self.version += 1;
                }
                ShardResp::CasResult { ok, prev, version: self.version }
            }
            ShardOp::Update { key, merge, ctx } => {
                self.absorb(ctx);
                if let Some(holder) = self.holder_of(key) {
                    return ShardResp::Blocked { holder, version: self.version };
                }
                let prev = self.map.get(key).cloned();
                match merge.merge(prev.as_ref()) {
                    Some(v) => {
                        self.map.insert(key.clone(), v);
                    }
                    None => {
                        self.map.remove(key);
                    }
                }
                self.version += 1;
                ShardResp::Prev { prev, version: self.version }
            }
            ShardOp::Prepare { desc, ctx } => {
                self.absorb(ctx);
                self.prepare(desc)
            }
            ShardOp::Resolve { id, commit, ctx } => {
                self.absorb(ctx);
                self.resolve(*id, *commit)
            }
            ShardOp::Marker { epoch } => self.marker(*epoch),
        }
    }
}
