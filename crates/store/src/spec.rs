//! The per-shard replicated state machine.
//!
//! Each shard of a [`ShardedStore`](crate::ShardedStore) is one
//! `WfUniversal<ShardState<K, V, M>>`: a deterministic sequential
//! object decided into a consensus log and replayed identically by
//! every client. Everything the store guarantees — multi-key atomicity
//! and consistent snapshots included — is therefore expressed as *state
//! transitions of this machine*; the front-end in `lib.rs` only chooses
//! which ops to decide where.
//!
//! Three op families:
//!
//! * **Single-key** ([`ShardOp::Get`]/[`Put`](ShardOp::Put)/
//!   [`Cas`](ShardOp::Cas)/[`Update`](ShardOp::Update)) read or mutate
//!   `map` directly. *Any* op targeting a key locked by an in-flight
//!   multi-op — reads included — returns [`ShardResp::Blocked`] with
//!   the full holder descriptor — enough for the caller to *help* the
//!   multi-op to completion and retry. `Get` must block too: the
//!   multi's resolve lands on its shards at different log positions,
//!   so a reader free-riding past the locks could observe shard A
//!   after its resolve and shard B before it — a half-applied
//!   multi-op with no valid linearization.
//!
//! * **Multi-key two-phase** ([`ShardOp::Prepare`]/[`Resolve`](ShardOp::Resolve)/
//!   [`Settle`](ShardOp::Settle)).
//!   `Prepare` atomically locks every locally-owned key of the
//!   descriptor, evaluates the local expectations, and records an
//!   immutable vote. `Resolve` applies the writes (on commit), frees
//!   the locks, and leaves a tombstone. `Settle` — decided only after
//!   its sender saw `Resolve` acknowledged on *every* involved shard —
//!   retires the commit from the possibly-torn window that snapshot
//!   captures carry (see below). All three are idempotent under
//!   helping: a duplicate `Prepare` returns the recorded vote,
//!   duplicate `Resolve`/`Settle` ack. Votes are recorded exactly once
//!   per shard, so every resolver — initiator or helper — computes the
//!   same commit verdict.
//!
//! * **Snapshot markers** ([`ShardOp::Marker`]). Deciding `Marker{e}`
//!   captures this shard's contribution to global snapshot `e`
//!   ([`SnapPart`]). Consistency across shards is the *stamp rule*:
//!   every mutating op carries the epoch its client read **before**
//!   invoking ([`Ctx::epoch`]), and a mutation stamped `>= e` that gets
//!   decided before shard-local marker `e` triggers a pre-mutation
//!   *early capture* — the part is photographed before the mutation
//!   applies, so the straggler is excluded. See DESIGN §13 for the
//!   argument that this yields a causally consistent cut.
//!
//! All maps are `BTreeMap`/`BTreeSet` (not hash maps): the state must
//! be `Eq + Hash` for the linearizability checker, and iteration order
//! must be deterministic for replay.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::hash::Hash;
use std::marker::PhantomData;

use waitfree_model::{ObjectSpec, Pid};

use crate::router::route;

/// Store-wide unique identity of one multi-key operation, drawn from a
/// shared counter so helpers and initiators name the same attempt.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MultiId(pub u64);

/// Causal context stamped on every mutating op by the invoking client.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Ctx {
    /// The store epoch counter as read by the client immediately before
    /// this invoke. Drives snapshot early-capture (see module docs).
    pub epoch: u64,
    /// Shard versions this client has observed (from prior responses),
    /// indexed by shard — the shard count is fixed at construction, so
    /// a flat vector copies by memcpy where a `BTreeMap` would
    /// re-allocate nodes on every mutating op. Merged into
    /// [`ShardState::know`] so the debug-mode cut check can verify the
    /// snapshot against real cross-shard dependencies. May be shorter
    /// than the shard count (a client that has observed nothing sends
    /// an empty vector); absent entries mean version 0.
    pub know: Vec<u64>,
}

/// A replica-side read outcome ([`ShardState::peek`]/
/// [`ShardState::peek_many`]): the value(s) plus the shard version at
/// the observed frontier, or the descriptor of the multi-op whose lock
/// blocks the read (for helper completion).
pub type Peek<T, K, V> = Result<(T, u64), Box<MultiDesc<K, V>>>;

/// Full description of one multi-key atomic op, replicated to every
/// involved shard so *any* client holding it can finish the op.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MultiDesc<K: Ord, V> {
    pub id: MultiId,
    /// Per-key expectations (`None` = absent) evaluated at prepare
    /// time; empty for an unconditional `multi_put`.
    pub expects: BTreeMap<K, Option<V>>,
    /// Per-key writes applied on commit (`None` = remove).
    pub writes: BTreeMap<K, Option<V>>,
    /// Involved shards, ascending — the canonical lock order. Recorded
    /// here (not recomputed) so snapshot assembly can check
    /// all-or-nothing application against the intended shard set.
    pub shards: Vec<usize>,
}

impl<K: Ord + Hash, V> MultiDesc<K, V> {
    /// Keys of this descriptor owned by `shard` (expects ∪ writes).
    fn local_keys(&self, seed: u64, nshards: usize, shard: usize) -> Vec<&K> {
        let mut keys: Vec<&K> = self
            .expects
            .keys()
            .chain(self.writes.keys())
            .filter(|k| route(seed, nshards, *k) == shard)
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

/// A prepared-but-unresolved multi-op on one shard.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PendingMulti<K: Ord, V> {
    pub desc: MultiDesc<K, V>,
    /// This shard's vote, fixed at first prepare: local expectations
    /// held. Immutable thereafter — locks keep the inputs stable.
    pub vote: bool,
}

/// One shard's contribution to a global snapshot.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct SnapPart<K: Ord, V> {
    pub epoch: u64,
    pub map: BTreeMap<K, V>,
    /// Multi-ops prepared but not yet resolved at the cut. Snapshot
    /// assembly patches these against `unsettled` elsewhere (torn-multi
    /// repair) — see [`crate::ShardedStore`] docs.
    pub pending: BTreeMap<MultiId, PendingMulti<K, V>>,
    /// Committed multi-ops not yet settled here (id → involved
    /// shards): the only commits that can be torn in this cut, so the
    /// only ones a capture needs to carry. Bounded by in-flight
    /// multi-ops (plus crashed resolvers), **not** by all commits ever
    /// — see [`ShardState::unsettled`].
    pub unsettled: BTreeMap<MultiId, Vec<usize>>,
    /// Mutation counter at the cut.
    pub version: u64,
    /// Observed-shard-version vector at the cut, indexed by shard
    /// (debug cut check).
    pub know: Vec<u64>,
}

/// How [`ShardedStore::fetch_update`](crate::ShardedStore) transforms a
/// value. A merge is data, not a closure: it travels inside log
/// entries, so it must be `Eq + Hash + Debug` like any other op
/// payload, and `merge` must be deterministic.
pub trait Merge<V>: Clone + Eq + Hash + Debug {
    /// New value (`None` = remove) from the current one.
    fn merge(&self, current: Option<&V>) -> Option<V>;
}

/// The identity merge: `fetch_update` with `()` is a plain read that
/// still decides through the log (a linearization witness).
impl<V: Clone> Merge<V> for () {
    fn merge(&self, current: Option<&V>) -> Option<V> {
        current.cloned()
    }
}

/// Saturating-free additive merge for `i64` values, treating absent as
/// zero. The workhorse of the exact-count fault postconditions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Bump(pub i64);

impl Merge<i64> for Bump {
    fn merge(&self, current: Option<&i64>) -> Option<i64> {
        Some(current.copied().unwrap_or(0) + self.0)
    }
}

/// Operations decided into one shard's log.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ShardOp<K: Ord, V, M> {
    Get { key: K },
    /// Write (`Some`) or remove (`None`) one key.
    Put { key: K, val: Option<V>, ctx: Ctx },
    Cas { key: K, expect: Option<V>, new: Option<V>, ctx: Ctx },
    Update { key: K, merge: M, ctx: Ctx },
    Prepare { desc: MultiDesc<K, V>, ctx: Ctx },
    Resolve { id: MultiId, commit: bool, ctx: Ctx },
    /// Sent by a resolver *after* it observed `Resolve` acknowledged on
    /// every involved shard: this commit can no longer be torn in any
    /// consistent cut, so drop it from the capture window. Carries a
    /// `Ctx` so the stamp rule and the knowledge vector order it
    /// against open snapshots like any other mutation — that ordering
    /// is what makes dropping it sound (see [`ShardState::unsettled`]).
    Settle { id: MultiId, ctx: Ctx },
    Marker { epoch: u64 },
}

/// Responses from one shard. Every variant carries the shard `version`
/// at response time so clients maintain their observed-version vector.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ShardResp<K: Ord, V> {
    /// `Get` result.
    Value { val: Option<V>, version: u64 },
    /// Previous value from `Put`/`Update`.
    Prev { prev: Option<V>, version: u64 },
    /// `Cas` outcome.
    CasResult { ok: bool, prev: Option<V>, version: u64 },
    /// `Prepare` accepted; this shard's vote.
    Vote { ok: bool, version: u64 },
    /// `Prepare` raced a finished multi: the recorded verdict.
    Resolved { commit: bool, version: u64 },
    /// The key (or a descriptor key) is locked by another in-flight
    /// multi-op; the full holder descriptor enables helping.
    Blocked { holder: Box<MultiDesc<K, V>>, version: u64 },
    /// `Resolve` applied (or was already applied).
    Ack { version: u64 },
    /// `Marker` capture.
    Part(Box<SnapPart<K, V>>),
}

/// The shard state machine. See module docs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ShardState<K: Ord, V, M> {
    /// This replica's shard index and the routing parameters — constants
    /// after construction, carried in-state so `apply` can route
    /// descriptor keys without out-of-band context.
    shard: usize,
    nshards: usize,
    seed: u64,
    /// Mutation counter: bumped by every state-changing transition.
    version: u64,
    map: BTreeMap<K, V>,
    /// Key → holder of in-flight multi-op locks. A key appears here iff
    /// its holder is in `pending`.
    locks: BTreeMap<K, MultiId>,
    pending: BTreeMap<MultiId, PendingMulti<K, V>>,
    /// Commit tombstones. Kept for the life of the state: an
    /// arbitrarily stalled helper may re-send `Prepare` or `Resolve`
    /// for an ancient multi, and forgetting the verdict would re-lock
    /// keys or re-apply writes. Checkpoint/truncation of the *log*
    /// (PR 7) is unaffected — tombstones live in the state image, and
    /// one id costs one word.
    applied: BTreeSet<MultiId>,
    /// Abort tombstones, same retention argument.
    aborted: BTreeSet<MultiId>,
    /// Commits not yet settled here (id → involved shards): the window
    /// of multi-ops a snapshot capture could still observe torn, and
    /// the only commit bookkeeping captures carry. Why removal on
    /// [`ShardOp::Settle`] is sound: a settle is decided only after its
    /// sender saw `Resolve` acknowledged on every involved shard, and
    /// it carries a `Ctx`. If a cut includes the settle, the stamp rule
    /// plus the settle's knowledge vector force the cut to include
    /// every involved shard's resolve too (a settle stamped at-or-after
    /// an open epoch early-captures the *pre-settle* state; one stamped
    /// before the epoch opened implies every resolve finished before
    /// the epoch opened) — so the commit is whole in that cut and needs
    /// no repair. Bounded by in-flight multi-ops plus resolvers that
    /// crashed between their last resolve and their settles (any later
    /// helper of the same multi re-settles).
    unsettled: BTreeMap<MultiId, Vec<usize>>,
    /// Max observed version per shard over all ops applied here,
    /// indexed by shard (length `nshards` from construction).
    know: Vec<u64>,
    /// Snapshot bookkeeping: every epoch `<= snap_floor` has its marker
    /// applied here; `snap_done` holds marker-applied epochs above the
    /// floor, compressed to ranges so a crashed snapshot (a permanent
    /// hole below later epochs) costs O(holes) memory, not one entry
    /// per later snapshot forever.
    snap_floor: u64,
    snap_done: EpochSet,
    /// Highest mutation stamp already swept by [`pre_capture`]
    /// (ShardState::pre_capture): epochs at or below it have their
    /// capture ensured (early, done, or ≤ floor), so each mutation only
    /// walks epochs *newly revealed* by its stamp — amortized O(1) per
    /// epoch, even when a crashed snapshot pins `snap_floor` forever.
    stamp_hi: u64,
    /// Pre-mutation captures for epochs whose marker has not reached
    /// this shard but whose existence a straggling mutation revealed
    /// (stamp rule, module docs). Claimed and removed by the marker;
    /// an entry whose snapshotter crashed before its marker stays
    /// claimable (the snapshotter may only be stalled) — one retained
    /// capture per crashed snapshot per shard is the leak bound.
    early: BTreeMap<u64, SnapPart<K, V>>,
    _merge: PhantomData<M>,
}

/// A set of `u64` epochs stored as disjoint, non-adjacent inclusive
/// ranges. All ops are `O(log |ranges|)`; memory is bounded by the
/// number of gaps between stored runs (crashed snapshots), not the
/// number of epochs ever inserted.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct EpochSet(BTreeMap<u64, u64>);

impl EpochSet {
    fn contains(&self, e: u64) -> bool {
        self.0.range(..=e).next_back().is_some_and(|(_, &end)| end >= e)
    }

    fn insert(&mut self, e: u64) {
        if self.contains(e) {
            return;
        }
        let mut start = e;
        let mut end = e;
        // !contains(e) means any predecessor range ends strictly below
        // e, so `pe + 1` cannot overflow.
        if let Some((&ps, &pe)) = self.0.range(..e).next_back() {
            if pe + 1 == e {
                start = ps;
            }
        }
        if e < u64::MAX {
            if let Some(&se) = self.0.get(&(e + 1)) {
                end = se;
                self.0.remove(&(e + 1));
            }
        }
        self.0.insert(start, end);
    }

    /// If a stored range starts exactly at `e`, remove it and return
    /// its (inclusive) end.
    fn take_run(&mut self, e: u64) -> Option<u64> {
        self.0.remove(&e)
    }

    #[cfg(test)]
    fn ranges(&self) -> usize {
        self.0.len()
    }
}

impl<K, V, M> ShardState<K, V, M>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    #[must_use]
    pub fn new(shard: usize, nshards: usize, seed: u64) -> Self {
        ShardState {
            shard,
            nshards,
            seed,
            version: 0,
            map: BTreeMap::new(),
            locks: BTreeMap::new(),
            pending: BTreeMap::new(),
            applied: BTreeSet::new(),
            aborted: BTreeSet::new(),
            unsettled: BTreeMap::new(),
            know: vec![0; nshards],
            snap_floor: 0,
            snap_done: EpochSet::default(),
            stamp_hi: 0,
            early: BTreeMap::new(),
            _merge: PhantomData,
        }
    }

    /// Photograph the capture-relevant state *now*. Only the unsettled
    /// commit window rides along — settled commits cannot be torn in
    /// any cut that could contain this capture (see `unsettled`), so
    /// captures stay proportional to in-flight work, not history.
    fn part_now(&self, epoch: u64) -> SnapPart<K, V> {
        SnapPart {
            epoch,
            map: self.map.clone(),
            pending: self.pending.clone(),
            unsettled: self.unsettled.clone(),
            version: self.version,
            know: self.know.clone(),
        }
    }

    /// The stamp rule: a mutation stamped `stamp` proves every epoch in
    /// `(snap_floor, stamp]` was opened before it ran. Any such epoch
    /// whose marker has not reached this shard gets an early capture of
    /// the **pre-mutation** state, excluding the mutation from the cut.
    ///
    /// Each epoch is swept at most once (`stamp_hi` remembers how far
    /// previous mutations got), so the per-mutation cost is the number
    /// of epochs opened since the last mutation here — amortized O(1)
    /// per epoch even when a crashed snapshot wedges `snap_floor`.
    fn pre_capture(&mut self, stamp: u64) {
        let mut e = self.snap_floor.max(self.stamp_hi) + 1;
        // progress: bounded — `e` strictly increases each iteration and
        // stops at `stamp`; at most one capture is published per epoch.
        while e <= stamp {
            if !self.snap_done.contains(e) {
                let part = self.part_now(e);
                self.early.insert(e, part);
            }
            e += 1;
        }
        if stamp > self.stamp_hi {
            self.stamp_hi = stamp;
        }
    }

    /// Apply a mutating op's context: early-capture first (so an
    /// excluded op's effects — including its knowledge — stay out of
    /// the cut), then merge the client's observed-version vector.
    fn absorb(&mut self, ctx: &Ctx) {
        self.pre_capture(ctx.epoch);
        for (e, &v) in self.know.iter_mut().zip(&ctx.know) {
            if v > *e {
                *e = v;
            }
        }
    }

    /// The holder descriptor blocking `key`, if any.
    fn holder_of(&self, key: &K) -> Option<Box<MultiDesc<K, V>>> {
        let id = self.locks.get(key)?;
        let pm = self
            .pending
            .get(id)
            .expect("a locked key's holder is pending (lock/pending invariant)");
        Some(Box::new(pm.desc.clone()))
    }

    /// Replica-side read of `key` with the same lock discipline as the
    /// decided [`ShardOp::Get`]: `Err(holder)` when the key is locked
    /// by an in-flight multi-op, so a log-free reader
    /// ([`crate::StoreHandle::get`]) helps the multi to completion and
    /// retries instead of observing it half-applied. `Ok` carries the
    /// value and the shard version at the observed frontier (the
    /// version feeds the client's observed-version vector exactly as a
    /// decided [`ShardResp::Value`] would).
    ///
    /// # Errors
    ///
    /// The blocking multi-op's descriptor, for helping.
    pub fn peek(&self, key: &K) -> Peek<Option<V>, K, V> {
        match self.holder_of(key) {
            Some(holder) => Err(holder),
            None => Ok((self.map.get(key).cloned(), self.version)),
        }
    }

    /// [`Self::peek`] over several keys in one replica pass, for
    /// [`crate::StoreHandle::multi_get`]: every value is taken from the
    /// same observed frontier of this shard, or the first blocking
    /// holder is handed back for helping.
    ///
    /// # Errors
    ///
    /// As [`Self::peek`].
    pub fn peek_many<'k>(
        &self,
        keys: impl IntoIterator<Item = &'k K>,
    ) -> Peek<Vec<Option<V>>, K, V>
    where
        K: 'k,
    {
        let mut vals = Vec::new();
        for key in keys {
            match self.holder_of(key) {
                Some(holder) => return Err(holder),
                None => vals.push(self.map.get(key).cloned()),
            }
        }
        Ok((vals, self.version))
    }

    fn apply_writes_of(&mut self, desc: &MultiDesc<K, V>) {
        for (k, w) in &desc.writes {
            if route(self.seed, self.nshards, k) != self.shard {
                continue;
            }
            match w {
                Some(v) => {
                    self.map.insert(k.clone(), v.clone());
                }
                None => {
                    self.map.remove(k);
                }
            }
        }
    }

    fn prepare(&mut self, desc: &MultiDesc<K, V>) -> ShardResp<K, V> {
        let id = desc.id;
        if self.applied.contains(&id) {
            return ShardResp::Resolved { commit: true, version: self.version };
        }
        if self.aborted.contains(&id) {
            return ShardResp::Resolved { commit: false, version: self.version };
        }
        if let Some(pm) = self.pending.get(&id) {
            return ShardResp::Vote { ok: pm.vote, version: self.version };
        }
        let local = desc.local_keys(self.seed, self.nshards, self.shard);
        for k in &local {
            if let Some(holder) = self.locks.get(*k) {
                if *holder != id {
                    let holder = self
                        .holder_of(*k)
                        .expect("locked key has a pending holder");
                    return ShardResp::Blocked { holder, version: self.version };
                }
            }
        }
        let vote = desc
            .expects
            .iter()
            .filter(|(k, _)| route(self.seed, self.nshards, k) == self.shard)
            .all(|(k, expect)| self.map.get(k) == expect.as_ref());
        for k in local {
            self.locks.insert(k.clone(), id);
        }
        self.pending.insert(id, PendingMulti { desc: desc.clone(), vote });
        self.version += 1;
        ShardResp::Vote { ok: vote, version: self.version }
    }

    fn resolve(&mut self, id: MultiId, commit: bool) -> ShardResp<K, V> {
        if self.applied.contains(&id) || self.aborted.contains(&id) {
            return ShardResp::Ack { version: self.version };
        }
        let Some(pm) = self.pending.remove(&id) else {
            // A resolve is only ever sent after a prepare decided on
            // this same log, so the id is pending or tombstoned; keep
            // the machine total anyway (apply never panics the log).
            return ShardResp::Ack { version: self.version };
        };
        for k in pm.desc.local_keys(self.seed, self.nshards, self.shard) {
            if self.locks.get(k) == Some(&id) {
                self.locks.remove(k);
            }
        }
        if commit {
            self.apply_writes_of(&pm.desc);
            self.applied.insert(id);
            self.unsettled.insert(id, pm.desc.shards.clone());
        } else {
            self.aborted.insert(id);
        }
        self.version += 1;
        ShardResp::Ack { version: self.version }
    }

    fn settle(&mut self, id: MultiId) -> ShardResp<K, V> {
        if self.unsettled.remove(&id).is_some() {
            self.version += 1;
        }
        ShardResp::Ack { version: self.version }
    }

    fn marker(&mut self, e: u64) -> ShardResp<K, V> {
        let part = match self.early.remove(&e) {
            Some(p) => p,
            None => self.part_now(e),
        };
        if e > self.snap_floor && !self.snap_done.contains(e) {
            self.snap_done.insert(e);
            if let Some(end) = self.snap_done.take_run(self.snap_floor + 1) {
                self.snap_floor = end;
            }
            // No `early` cleanup is needed at the floor: an early
            // capture exists only for an epoch whose marker has not
            // been applied here, and the floor only ever advances over
            // marker-applied epochs — so every `early` key is already
            // strictly above the floor.
        }
        ShardResp::Part(Box::new(part))
    }
}

impl<K, V, M> ObjectSpec for ShardState<K, V, M>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    type Op = ShardOp<K, V, M>;
    type Resp = ShardResp<K, V>;

    fn apply(&mut self, _pid: Pid, op: &Self::Op) -> Self::Resp {
        match op {
            ShardOp::Get { key } => {
                // Reads must respect multi-op locks: the holder's
                // resolve lands shard by shard, so a read slipping past
                // the lock here could combine with a read on another
                // shard to observe the multi half-applied. Hand the
                // reader the descriptor to help instead.
                if let Some(holder) = self.holder_of(key) {
                    return ShardResp::Blocked { holder, version: self.version };
                }
                ShardResp::Value {
                    val: self.map.get(key).cloned(),
                    version: self.version,
                }
            }
            ShardOp::Put { key, val, ctx } => {
                self.absorb(ctx);
                if let Some(holder) = self.holder_of(key) {
                    return ShardResp::Blocked { holder, version: self.version };
                }
                let prev = match val {
                    Some(v) => self.map.insert(key.clone(), v.clone()),
                    None => self.map.remove(key),
                };
                self.version += 1;
                ShardResp::Prev { prev, version: self.version }
            }
            ShardOp::Cas { key, expect, new, ctx } => {
                self.absorb(ctx);
                if let Some(holder) = self.holder_of(key) {
                    return ShardResp::Blocked { holder, version: self.version };
                }
                let prev = self.map.get(key).cloned();
                let ok = prev == *expect;
                if ok {
                    match new {
                        Some(v) => {
                            self.map.insert(key.clone(), v.clone());
                        }
                        None => {
                            self.map.remove(key);
                        }
                    }
                    self.version += 1;
                }
                ShardResp::CasResult { ok, prev, version: self.version }
            }
            ShardOp::Update { key, merge, ctx } => {
                self.absorb(ctx);
                if let Some(holder) = self.holder_of(key) {
                    return ShardResp::Blocked { holder, version: self.version };
                }
                let prev = self.map.get(key).cloned();
                match merge.merge(prev.as_ref()) {
                    Some(v) => {
                        self.map.insert(key.clone(), v);
                    }
                    None => {
                        self.map.remove(key);
                    }
                }
                self.version += 1;
                ShardResp::Prev { prev, version: self.version }
            }
            ShardOp::Prepare { desc, ctx } => {
                self.absorb(ctx);
                self.prepare(desc)
            }
            ShardOp::Resolve { id, commit, ctx } => {
                self.absorb(ctx);
                self.resolve(*id, *commit)
            }
            ShardOp::Settle { id, ctx } => {
                self.absorb(ctx);
                self.settle(*id)
            }
            ShardOp::Marker { epoch } => self.marker(*epoch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_set_compresses_adjacent_runs() {
        let mut s = EpochSet::default();
        for e in [1u64, 2, 3, 5, 6, 10] {
            s.insert(e);
        }
        assert_eq!(s.ranges(), 3, "{s:?}");
        s.insert(4); // bridges [1,3] and [5,6]
        assert_eq!(s.ranges(), 2, "{s:?}");
        for e in 1..=6 {
            assert!(s.contains(e));
        }
        assert!(!s.contains(7));
        assert!(s.contains(10));
        s.insert(10); // idempotent
        assert_eq!(s.ranges(), 2);
        assert_eq!(s.take_run(1), Some(6));
        assert!(!s.contains(3));
        assert_eq!(s.take_run(7), None);
    }

    type St = ShardState<u64, i64, ()>;

    fn ctx(epoch: u64) -> Ctx {
        Ctx { epoch, know: Vec::new() }
    }

    fn desc(id: u64, writes: &[(u64, i64)]) -> MultiDesc<u64, i64> {
        MultiDesc {
            id: MultiId(id),
            expects: BTreeMap::new(),
            writes: writes.iter().map(|&(k, v)| (k, Some(v))).collect(),
            shards: vec![0],
        }
    }

    fn part(resp: ShardResp<u64, i64>) -> SnapPart<u64, i64> {
        match resp {
            ShardResp::Part(p) => *p,
            r => panic!("marker answered {r:?}"),
        }
    }

    /// A settled commit leaves the capture window (so snapshot size
    /// tracks in-flight multis, not history) while its tombstone keeps
    /// answering stragglers.
    #[test]
    fn settle_retires_commits_from_captures_but_not_tombstones() {
        let mut st = St::new(0, 1, 0);
        let d = desc(9, &[(1, 10), (2, 20)]);
        st.apply(Pid(0), &ShardOp::Prepare { desc: d.clone(), ctx: ctx(0) });
        st.apply(Pid(0), &ShardOp::Resolve { id: d.id, commit: true, ctx: ctx(0) });
        let p = part(st.apply(Pid(0), &ShardOp::Marker { epoch: 1 }));
        assert!(p.unsettled.contains_key(&d.id), "unsettled commit rides the capture");
        st.apply(Pid(0), &ShardOp::Settle { id: d.id, ctx: ctx(0) });
        let p = part(st.apply(Pid(0), &ShardOp::Marker { epoch: 2 }));
        assert!(p.unsettled.is_empty(), "settled commit dropped from the capture");
        assert_eq!(p.map.get(&1), Some(&10));
        // The tombstone survives settling: a straggling helper's
        // prepare still gets the verdict, not a fresh lock.
        match st.apply(Pid(0), &ShardOp::Prepare { desc: d, ctx: ctx(0) }) {
            ShardResp::Resolved { commit: true, .. } => {}
            r => panic!("straggler prepare answered {r:?}"),
        }
    }

    /// A permanently open epoch (crashed snapshotter) must not make
    /// later mutations re-walk the epoch range, must keep later marker
    /// bookkeeping compressed, and must keep its own early capture
    /// claimable forever.
    #[test]
    fn stuck_epoch_costs_are_bounded() {
        let mut st = St::new(0, 1, 0);
        st.apply(Pid(0), &ShardOp::Put { key: 1, val: Some(1), ctx: ctx(0) });
        // Epochs 1..=4 open; markers for 2..=4 arrive (epoch 1 crashed
        // before reaching this shard). A mutation stamped 4 reveals all
        // four and early-captures them once.
        st.apply(Pid(0), &ShardOp::Put { key: 1, val: Some(2), ctx: ctx(4) });
        assert_eq!(st.early.len(), 4);
        assert_eq!(st.stamp_hi, 4);
        for e in 2..=4 {
            part(st.apply(Pid(0), &ShardOp::Marker { epoch: e }));
        }
        assert_eq!(st.early.len(), 1, "markers claimed their captures");
        assert_eq!(st.snap_floor, 0, "epoch 1's hole pins the floor");
        assert_eq!(st.snap_done.ranges(), 1, "done epochs stay one range");
        // Later mutations at the same stamp do no epoch work at all.
        st.apply(Pid(0), &ShardOp::Put { key: 1, val: Some(3), ctx: ctx(4) });
        assert_eq!(st.early.len(), 1);
        // The stalled snapshotter finally lands its marker: it claims
        // the early capture (pre-mutation state, excluding every write
        // stamped >= 1) and the floor snaps forward over the whole run.
        let p = part(st.apply(Pid(0), &ShardOp::Marker { epoch: 1 }));
        assert_eq!(p.map.get(&1), Some(&1), "early capture excluded stamped writes");
        assert_eq!(st.early.len(), 0);
        assert_eq!(st.snap_floor, 4);
        assert_eq!(st.snap_done.ranges(), 0);
    }

    /// Reads on a locked key hand back the holder instead of a value —
    /// the spec-level half of the no-torn-reads guarantee.
    #[test]
    fn get_blocks_on_a_locked_key() {
        let mut st = St::new(0, 1, 0);
        let d = desc(3, &[(1, 10)]);
        st.apply(Pid(0), &ShardOp::Prepare { desc: d.clone(), ctx: ctx(0) });
        match st.apply(Pid(0), &ShardOp::Get { key: 1 }) {
            ShardResp::Blocked { holder, .. } => assert_eq!(holder.id, d.id),
            r => panic!("get on a locked key answered {r:?}"),
        }
        // An unrelated key still reads freely.
        match st.apply(Pid(0), &ShardOp::Get { key: 2 }) {
            ShardResp::Value { val: None, .. } => {}
            r => panic!("get on a free key answered {r:?}"),
        }
    }
}
