//! # waitfree-store — a sharded universal KV store
//!
//! One universal object serializes every operation through one
//! consensus log (Herlihy §4); this crate scales that construction out:
//! a [`ShardedStore`] composes N **independent** `WfUniversal` logs
//! behind a seeded key→shard router ([`router::route`]). Three op
//! classes, three protocols:
//!
//! * **Single-key mutations** (`put`/`remove`/`cas`/`fetch_update`)
//!   decide into exactly one shard's log — one decided op in the
//!   uncontended case — inheriting that log's wait-free helping bound
//!   unchanged. Keys on different shards no longer contend on a CAS
//!   point at all. **Reads are log-free**: `get` (and the batched
//!   `multi_get`) answer from the caller's shard replica caught up to
//!   an observed decided frontier (`WfHandle::read`), linearized at
//!   the frontier load — zero log appends, zero shared-log RMWs, so
//!   readers never contend with writers for log positions. §4.1 needs
//!   consensus only to order mutations; a read linearizes wherever its
//!   observed frontier sits. The decided-read path survives as
//!   [`StoreHandle::get_decided`] (a log-ordered linearization
//!   witness, and the before/after benchmark baseline).
//!
//! * **Multi-key atomic ops** (`multi_put`/`multi_cas`) run a
//!   two-phase protocol *through the logs*: a full descriptor is
//!   decide-ordered (`Prepare`) into every involved shard's log in
//!   **canonical ascending shard order**, votes are gathered, then the
//!   unanimous verdict is decided (`Resolve`) into the same logs.
//!   Locks are acquired whole-shard-atomically and only in ascending
//!   order, so no hold-and-wait cycle can form (DESIGN §13). Because
//!   the descriptor is replicated to every involved shard, *any*
//!   client that runs into its locks can finish it: conflicting ops
//!   receive the full holder descriptor and **help** the stalled
//!   multi-op to resolution before retrying, so a client that crashes
//!   mid-multi-op never wedges a key.
//!
//! * **Consistent global snapshots** ([`StoreHandle::snapshot`])
//!   decide a `Marker{epoch}` entry into every shard's log through the
//!   ordinary consensus CAS — the same way PR 7's checkpoints enter
//!   the log — and assemble the per-shard captures. Cross-shard
//!   consistency comes from an epoch stamp rule (every mutation
//!   carries the epoch its client read before invoking; a mutation
//!   stamped at-or-after an open snapshot that reaches a shard before
//!   that snapshot's marker triggers a pre-mutation *early capture*)
//!   plus a torn-multi repair pass at assembly. In debug builds the
//!   assembled cut is verified with a vector-clock consistency check
//!   (`know[s][t] <= version[t]`, the same invariant
//!   `waitfree_sched::hb` enforces on memory traces).
//!
//! Shards are built on the dynamic-membership registry (PR 6) —
//! [`ShardedStore::handle`] registers on every shard, handles retire —
//! and can be individually checkpointed/truncated (PR 7) via
//! [`StoreConfig::checkpoint_every`], so the store exercises every
//! prior subsystem at once.
//!
//! ## Progress guarantees, stated honestly
//!
//! Single-key mutations on keys not touched by any in-flight multi-op
//! are wait-free with the per-shard `O(n)` helping bound; uncontended
//! reads are wait-free with *no* helping at all (the replay gap is
//! fixed at the frontier load). Any op — reads included — that hits a
//! multi-op's lock helps that multi-op to completion first (itself a
//! bounded number of decides over its involved shards) and retries;
//! under a *continuous* adversarial stream of conflicting multi-ops
//! this degrades to lock-freedom (some multi-op always completes), the
//! standard trade for multi-object atomicity without a global log.
//! `get` cannot be exempted from this, log-free or not: a committed
//! multi-op's writes land on its shards at different log positions, so
//! a reader that ignored the locks could see one shard after the
//! resolve and another before it — a half-applied multi-op no
//! linearization of the flat-map spec allows. The local read path
//! keeps the rule because the replica it reads *is* the decided
//! prefix: a lock visible at the observed frontier blocks the read
//! ([`ShardState::peek`]), and DESIGN §14 gives the happens-before
//! argument for why a frontier that shows one shard's resolve always
//! shows every sibling shard's prepare.
//!
//! ## Failpoints
//!
//! With the `failpoints` feature the front-end exposes `store::route`
//! (before every single-key routing decision — one per op; a
//! helped-multi retry re-stamps the context but does not re-route),
//! `store::multi` (before every per-shard step of a multi-op, prepares
//! and resolves), and `store::snapshot` (before every per-shard marker
//! decide), composing with the `universal::*` sites underneath —
//! including `universal::read` on the log-free `get`/`multi_get` path.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

use waitfree_faults::failpoint;
use waitfree_sched::atomic::{AtomicU64, Ordering};
use waitfree_sync::universal::{WfHandle, WfUniversal};

pub mod model;
pub mod router;
pub mod spec;

pub use model::{StoreModel, StoreOp, StoreResp};
pub use router::route;
pub use spec::{Bump, Ctx, Merge, MultiDesc, MultiId, Peek, PendingMulti, ShardOp, ShardResp, ShardState, SnapPart};

/// Construction parameters for a [`ShardedStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Number of independent shard logs. Must be at least 1.
    pub shards: usize,
    /// Router seed: determines the key partition (stable across
    /// processes — see [`router`]).
    pub seed: u64,
    /// Per-shard op budget for each registered [`StoreHandle`]
    /// (multi-key ops and helping consume several per shard).
    pub ops_per_handle: usize,
    /// Decide a checkpoint image into each shard's log every this many
    /// positions (PR 7 truncation machinery). `None` = unbounded logs.
    pub checkpoint_every: Option<usize>,
    /// Hard per-shard log capacity (`LogFull` beyond it). `None` =
    /// grow on demand. Mutually exclusive with `checkpoint_every`.
    pub capacity: Option<usize>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 4,
            seed: 0x5eed_5709_e5ca_1ab1,
            ops_per_handle: 1 << 20,
            checkpoint_every: None,
            capacity: None,
        }
    }
}

/// The sharded store: N independent consensus logs plus the two shared
/// counters (snapshot epoch, multi-op ids) the cross-shard protocols
/// need. Cheap to clone (`Arc`-shared); per-thread access goes through
/// [`ShardedStore::handle`].
pub struct ShardedStore<K, V, M = ()>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    shards: Vec<WfUniversal<ShardState<K, V, M>>>,
    /// Global snapshot epoch. `snapshot()` opens epoch `e` by
    /// fetch-add; every mutating op stamps the value it read *before*
    /// invoking (the stamp rule, see `spec` module docs).
    epoch: Arc<AtomicU64>,
    /// Multi-op id allocator.
    multi_seq: Arc<AtomicU64>,
    seed: u64,
}

impl<K, V, M> Clone for ShardedStore<K, V, M>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    fn clone(&self) -> Self {
        ShardedStore {
            shards: self.shards.clone(),
            epoch: Arc::clone(&self.epoch),
            multi_seq: Arc::clone(&self.multi_seq),
            seed: self.seed,
        }
    }
}

impl<K, V, M> ShardedStore<K, V, M>
where
    K: Clone + Ord + Hash + Debug + Send + Sync + 'static,
    V: Clone + Eq + Hash + Debug + Send + Sync + 'static,
    M: Merge<V> + Send + Sync + 'static,
{
    /// Build a store per `cfg`. Every shard is a dynamic-membership
    /// universal object (PR 6), checkpointed at the configured cadence
    /// (PR 7) or capacity-capped if requested.
    ///
    /// # Panics
    /// If `cfg.shards == 0`, or both `checkpoint_every` and `capacity`
    /// are set (a capped log cannot also truncate).
    #[must_use]
    pub fn new(cfg: &StoreConfig) -> Self {
        assert!(cfg.shards > 0, "a store has at least one shard");
        assert!(
            cfg.checkpoint_every.is_none() || cfg.capacity.is_none(),
            "checkpoint_every and capacity are mutually exclusive"
        );
        let shards = (0..cfg.shards)
            .map(|s| {
                let init = ShardState::new(s, cfg.shards, cfg.seed);
                match (cfg.checkpoint_every, cfg.capacity) {
                    (Some(every), None) => {
                        WfUniversal::new_dynamic_checkpointed(init, cfg.ops_per_handle, every)
                    }
                    (None, Some(cap)) => {
                        WfUniversal::with_capacity_dynamic(init, cfg.ops_per_handle, cap)
                    }
                    _ => WfUniversal::new_dynamic(init, cfg.ops_per_handle),
                }
            })
            .collect();
        ShardedStore {
            shards,
            epoch: Arc::new(AtomicU64::new(0)),
            multi_seq: Arc::new(AtomicU64::new(0)),
            seed: cfg.seed,
        }
    }

    /// Number of shard logs.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The router seed (fixed at construction).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard owning `key`.
    #[must_use]
    pub fn shard_of(&self, key: &K) -> usize {
        route(self.seed, self.shards.len(), key)
    }

    /// Direct access to one shard's universal object (diagnostics,
    /// tests).
    #[must_use]
    pub fn shard(&self, s: usize) -> &WfUniversal<ShardState<K, V, M>> {
        &self.shards[s]
    }

    /// Register on every shard and return a per-thread handle.
    /// Wait-free (N wait-free registrations).
    #[must_use]
    pub fn handle(&self) -> StoreHandle<K, V, M> {
        StoreHandle {
            shards: self.shards.iter().map(WfUniversal::register).collect(),
            epoch: Arc::clone(&self.epoch),
            multi_seq: Arc::clone(&self.multi_seq),
            seed: self.seed,
            seen: vec![0; self.shards.len()],
        }
    }
}

/// The result of one consistent global snapshot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Snapshot<K: Ord, V> {
    /// The snapshot epoch (unique per snapshot, monotonically
    /// increasing).
    pub epoch: u64,
    /// The assembled, torn-multi-repaired global map.
    pub map: BTreeMap<K, V>,
    /// Per-shard log position at which this snapshot's marker was
    /// decided (via `WfHandle::last_decided_position`).
    pub marker_positions: Vec<Option<usize>>,
}

/// Per-thread access to a [`ShardedStore`]: one registered `WfHandle`
/// per shard plus this client's observed-version vector. Not `Sync` —
/// one handle per thread, like `WfHandle` itself.
pub struct StoreHandle<K, V, M = ()>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    shards: Vec<WfHandle<ShardState<K, V, M>>>,
    epoch: Arc<AtomicU64>,
    multi_seq: Arc<AtomicU64>,
    seed: u64,
    /// Highest shard versions observed in responses, indexed by shard;
    /// stamped onto every mutating op for the snapshot cut check. A
    /// flat vector (shard count is fixed at construction): stamping is
    /// a memcpy per mutating op, where the former `BTreeMap` re-built
    /// O(shards) nodes on every `put`/`cas`/`fetch_update`.
    seen: Vec<u64>,
}

impl<K, V, M> StoreHandle<K, V, M>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// The stamp every mutating op carries: epoch read *now* (before
    /// the invoke — the ordering the snapshot argument needs) plus the
    /// observed-version vector.
    fn ctx(&self) -> Ctx {
        Ctx { epoch: self.epoch.load(Ordering::SeqCst), know: self.seen.clone() }
    }

    fn observe(&mut self, shard: usize, version: u64) {
        if version > self.seen[shard] {
            self.seen[shard] = version;
        }
    }

    /// Decide `op` into `shard`'s log and record the observed version.
    fn invoke(&mut self, shard: usize, op: ShardOp<K, V, M>) -> ShardResp<K, V> {
        let resp = self.shards[shard].invoke(op);
        self.observe(shard, resp_version(&resp));
        resp
    }

    /// [`Self::invoke`] over a borrowed op, for the retry loops: the op
    /// is built once and re-proposed on helped-multi retries without
    /// re-cloning its key/value payload (`WfHandle::invoke_ref` clones
    /// it exactly once, into the announce entry).
    fn invoke_ref(&mut self, shard: usize, op: &ShardOp<K, V, M>) -> ShardResp<K, V> {
        let resp = self.shards[shard].invoke_ref(op);
        self.observe(shard, resp_version(&resp));
        resp
    }

    /// Read one key — **log-free**. The value comes from this handle's
    /// shard replica caught up to the decided frontier observed on
    /// entry ([`WfHandle::read`]): no log append, no shared-log RMW, no
    /// allocation, linearized at the frontier load. Wait-free with no
    /// helping when the key is not under a multi-op lock; a key locked
    /// at the observed frontier hands back the holder descriptor — the
    /// reader helps that multi-op to completion and retries, exactly
    /// like every mutator, so a cross-shard multi-op can never be
    /// observed half-applied (module docs; DESIGN §14).
    ///
    /// For a read that is *decide-ordered* into the shard log (a
    /// linearization witness at a known log position), see
    /// [`Self::get_decided`].
    pub fn get(&mut self, key: &K) -> Option<V> {
        failpoint!("store::route");
        let s = route(self.seed, self.nshards(), key);
        // progress: wait-free — a retry only follows helping the blocking
        // multi-op to completion, so iterations are bounded by the multi-ops
        // admitted before this read's frontier (DESIGN §14).
        loop {
            match self.shards[s].read(|st| st.peek(key)) {
                Ok((val, version)) => {
                    self.observe(s, version);
                    return val;
                }
                Err(holder) => {
                    self.run_multi(&holder);
                }
            }
        }
    }

    /// Read several keys, log-free, with one frontier read per involved
    /// shard: keys routed to the same shard are read from the *same*
    /// observed frontier (mutually consistent), keys on different
    /// shards are independent reads — semantically a sequence of
    /// [`Self::get`]s, one per shard, in ascending shard order. For a
    /// consistent cross-shard cut use [`Self::snapshot`]. Returns
    /// values in input-key order. Helps and retries past conflicting
    /// multi-ops like `get`.
    pub fn multi_get(&mut self, keys: &[K]) -> Vec<Option<V>> {
        let n = self.nshards();
        let mut out: Vec<Option<V>> = vec![None; keys.len()];
        // Group key indices by shard so each shard is read once.
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, k) in keys.iter().enumerate() {
            failpoint!("store::route");
            by_shard.entry(route(self.seed, n, k)).or_default().push(i);
        }
        for (s, idxs) in by_shard {
            // progress: wait-free — as in `get`: each retry first completes the
            // blocking multi-op, bounding iterations by the admitted multi-ops.
            loop {
                let r = self.shards[s].read(|st| st.peek_many(idxs.iter().map(|&i| &keys[i])));
                match r {
                    Ok((vals, version)) => {
                        self.observe(s, version);
                        for (&i, v) in idxs.iter().zip(vals) {
                            out[i] = v;
                        }
                        break;
                    }
                    Err(holder) => {
                        self.run_multi(&holder);
                    }
                }
            }
        }
        out
    }

    /// Read one key through the shard's consensus log: decides a `Get`
    /// entry, so the read occupies a log position and is linearized by
    /// its decide — the path `get` took before the log-free replica
    /// read existed. Kept for callers that want a log-ordered
    /// linearization witness (`last_decided_position` names the read's
    /// position) and as the decided-read baseline the benchmarks
    /// compare against. Same lock/help/retry discipline as `get`.
    pub fn get_decided(&mut self, key: &K) -> Option<V> {
        failpoint!("store::route");
        let s = route(self.seed, self.nshards(), key);
        let op = ShardOp::Get { key: key.clone() };
        // progress: wait-free — each retry first completes the blocking
        // multi-op (helping), bounding iterations by the admitted multi-ops.
        loop {
            match self.invoke_ref(s, &op) {
                ShardResp::Value { val, .. } => return val,
                ShardResp::Blocked { holder, .. } => {
                    self.run_multi(&holder);
                }
                r => unreachable!("get answered {r:?}"),
            }
        }
    }

    /// Write one key, returning the previous value. Helps and retries
    /// past conflicting multi-ops.
    pub fn put(&mut self, key: K, val: V) -> Option<V> {
        self.put_opt(key, Some(val))
    }

    /// Remove one key, returning the previous value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.put_opt(key.clone(), None)
    }

    fn put_opt(&mut self, key: K, val: Option<V>) -> Option<V> {
        failpoint!("store::route");
        let s = route(self.seed, self.nshards(), &key);
        // Built once — a helped-multi retry re-stamps the ctx in place
        // instead of re-cloning key and value.
        let mut op = ShardOp::Put { key, val, ctx: self.ctx() };
        // progress: wait-free — each retry first completes the blocking
        // multi-op (helping), bounding iterations by the admitted multi-ops.
        loop {
            match self.invoke_ref(s, &op) {
                ShardResp::Prev { prev, .. } => return prev,
                ShardResp::Blocked { holder, .. } => {
                    self.run_multi(&holder);
                    // The stamp rule needs the epoch/knowledge read
                    // immediately before each attempt — helping just
                    // moved both.
                    let ShardOp::Put { ctx, .. } = &mut op else { unreachable!() };
                    *ctx = self.ctx();
                }
                r => unreachable!("put answered {r:?}"),
            }
        }
    }

    /// Compare-and-set one key (`None` = absent on either side).
    /// Returns `(succeeded, previous value)`.
    pub fn cas(
        &mut self,
        key: K,
        expect: Option<V>,
        new: Option<V>,
    ) -> (bool, Option<V>) {
        failpoint!("store::route");
        let s = route(self.seed, self.nshards(), &key);
        let mut op = ShardOp::Cas { key, expect, new, ctx: self.ctx() };
        // progress: wait-free — each retry first completes the blocking
        // multi-op (helping), bounding iterations by the admitted multi-ops.
        loop {
            match self.invoke_ref(s, &op) {
                ShardResp::CasResult { ok, prev, .. } => return (ok, prev),
                ShardResp::Blocked { holder, .. } => {
                    self.run_multi(&holder);
                    let ShardOp::Cas { ctx, .. } = &mut op else { unreachable!() };
                    *ctx = self.ctx();
                }
                r => unreachable!("cas answered {r:?}"),
            }
        }
    }

    /// Atomically replace one key's value with `merge(current)`,
    /// returning the previous value.
    pub fn fetch_update(&mut self, key: K, merge: M) -> Option<V> {
        failpoint!("store::route");
        let s = route(self.seed, self.nshards(), &key);
        let mut op = ShardOp::Update { key, merge, ctx: self.ctx() };
        // progress: wait-free — each retry first completes the blocking
        // multi-op (helping), bounding iterations by the admitted multi-ops.
        loop {
            match self.invoke_ref(s, &op) {
                ShardResp::Prev { prev, .. } => return prev,
                ShardResp::Blocked { holder, .. } => {
                    self.run_multi(&holder);
                    let ShardOp::Update { ctx, .. } = &mut op else { unreachable!() };
                    *ctx = self.ctx();
                }
                r => unreachable!("fetch_update answered {r:?}"),
            }
        }
    }

    /// Atomically write (`Some`) or remove (`None`) every key in
    /// `writes`, across any number of shards. Always commits.
    pub fn multi_put<I>(&mut self, writes: I)
    where
        I: IntoIterator<Item = (K, Option<V>)>,
    {
        let writes: BTreeMap<K, Option<V>> = writes.into_iter().collect();
        if writes.is_empty() {
            return;
        }
        let desc = self.describe(BTreeMap::new(), writes);
        let committed = self.run_multi(&desc);
        debug_assert!(committed, "an expectation-free multi-op always commits");
    }

    /// Atomically: if every key in `expects` has the expected value
    /// (`None` = absent), apply every write in `writes`. Returns
    /// whether it committed. All-or-nothing across shards.
    pub fn multi_cas<I, J>(&mut self, expects: I, writes: J) -> bool
    where
        I: IntoIterator<Item = (K, Option<V>)>,
        J: IntoIterator<Item = (K, Option<V>)>,
    {
        let expects: BTreeMap<K, Option<V>> = expects.into_iter().collect();
        let writes: BTreeMap<K, Option<V>> = writes.into_iter().collect();
        if expects.is_empty() && writes.is_empty() {
            return true;
        }
        let desc = self.describe(expects, writes);
        self.run_multi(&desc)
    }

    fn describe(
        &mut self,
        expects: BTreeMap<K, Option<V>>,
        writes: BTreeMap<K, Option<V>>,
    ) -> MultiDesc<K, V> {
        let n = self.nshards();
        let mut shards: Vec<usize> = expects
            .keys()
            .chain(writes.keys())
            .map(|k| route(self.seed, n, k))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        MultiDesc {
            id: MultiId(self.multi_seq.fetch_add(1, Ordering::SeqCst)),
            expects,
            writes,
            shards,
        }
    }

    /// Drive `desc` to resolution — as initiator or helper; the
    /// protocol is identical and every step idempotent.
    ///
    /// Phase 1 prepares in ascending shard order (the canonical lock
    /// order — see DESIGN §13 for why no cycle of blocked multi-ops
    /// can form). `Resolved` short-circuits: someone finished the
    /// verdict already, but phase 2 still visits every shard because
    /// the finisher may have crashed mid-resolve. A `Blocked` prepare
    /// recursively helps the older holder first. Phase 2 decides the
    /// unanimous verdict everywhere; `Resolve` acks are idempotent.
    /// After a commit's resolves are all acknowledged, a settle sweep
    /// retires the id from every shard's possibly-torn capture window
    /// (snapshot-cost bookkeeping, not correctness: a crash anywhere in
    /// the sweep just leaves the id in some windows until the next
    /// helper of the same multi re-settles).
    fn run_multi(&mut self, desc: &MultiDesc<K, V>) -> bool {
        let mut verdict: Option<bool> = None;
        let mut all = true;
        for &s in &desc.shards {
            if verdict.is_some() {
                break;
            }
            // One descriptor clone per shard, not per attempt; retries
            // re-stamp the ctx only.
            let mut op = ShardOp::Prepare { desc: desc.clone(), ctx: self.ctx() };
            // progress: wait-free — a `Blocked` answer is followed by helping
            // the holder to completion, so each shard's prepare retries are
            // bounded by the multi-ops admitted ahead of this one.
            loop {
                failpoint!("store::multi");
                match self.invoke_ref(s, &op) {
                    ShardResp::Vote { ok, .. } => {
                        all &= ok;
                        break;
                    }
                    ShardResp::Resolved { commit, .. } => {
                        verdict = Some(commit);
                        break;
                    }
                    ShardResp::Blocked { holder, .. } => {
                        self.run_multi(&holder);
                        let ShardOp::Prepare { ctx, .. } = &mut op else { unreachable!() };
                        *ctx = self.ctx();
                    }
                    r => unreachable!("prepare answered {r:?}"),
                }
            }
        }
        let commit = verdict.unwrap_or(all);
        for &s in &desc.shards {
            failpoint!("store::multi");
            let op = ShardOp::Resolve { id: desc.id, commit, ctx: self.ctx() };
            match self.invoke(s, op) {
                ShardResp::Ack { .. } => {}
                r => unreachable!("resolve answered {r:?}"),
            }
        }
        if commit {
            // Every involved shard has acknowledged the resolve (the
            // loop above returned), so this commit can no longer be
            // torn: tell each shard to drop it from its capture window.
            // The ctx makes the settle obey the stamp rule, which is
            // what licenses the drop (see `ShardState::unsettled`).
            for &s in &desc.shards {
                failpoint!("store::multi");
                let op = ShardOp::Settle { id: desc.id, ctx: self.ctx() };
                match self.invoke(s, op) {
                    ShardResp::Ack { .. } => {}
                    r => unreachable!("settle answered {r:?}"),
                }
            }
        }
        commit
    }

    /// Take a consistent global snapshot: open a fresh epoch, decide a
    /// marker into every shard's log (ascending — any fixed order
    /// works; consistency comes from the stamp rule, not marker
    /// order), repair torn multi-ops, and assemble the union map.
    ///
    /// Wait-free: one epoch fetch-add plus one wait-free decide per
    /// shard; assembly is local. A client that crashes mid-snapshot
    /// costs a bounded, one-time amount per shard it never reached:
    /// one retained early capture (claimable if the straggler is
    /// merely stalled and its marker eventually lands) and one range
    /// split in the shard's interval-compressed epoch bookkeeping.
    /// Later mutations and snapshots are unaffected — each epoch is
    /// swept into a capture at most once (a per-shard stamp watermark),
    /// so a permanently open epoch does not tax subsequent writes.
    pub fn snapshot(&mut self) -> Snapshot<K, V> {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let mut parts: Vec<SnapPart<K, V>> = Vec::with_capacity(self.nshards());
        let mut marker_positions = Vec::with_capacity(self.nshards());
        for s in 0..self.nshards() {
            failpoint!("store::snapshot");
            match self.invoke(s, ShardOp::Marker { epoch }) {
                ShardResp::Part(p) => {
                    parts.push(*p);
                    marker_positions.push(self.shards[s].last_decided_position());
                }
                r => unreachable!("marker answered {r:?}"),
            }
        }
        repair_torn(&mut parts, self.seed);
        #[cfg(debug_assertions)]
        check_cut(&parts);
        let mut map = BTreeMap::new();
        for p in &mut parts {
            map.append(&mut p.map);
        }
        Snapshot { epoch, map, marker_positions }
    }

    /// Retire every per-shard registration (PR 6 dynamic membership).
    /// Idempotent; later ops panic with `Retired`.
    pub fn retire(&mut self) {
        for h in &mut self.shards {
            h.retire();
        }
    }

    /// Worst single-invoke threading-step count over all shard handles
    /// (the helping-bound diagnostic, max across shards).
    #[must_use]
    pub fn max_threading_steps(&self) -> usize {
        self.shards.iter().map(WfHandle::max_threading_steps).max().unwrap_or(0)
    }

    /// Total consensus decides across all shard handles.
    #[must_use]
    pub fn decides(&self) -> usize {
        self.shards.iter().map(WfHandle::decides).sum()
    }

    /// The underlying per-shard handle (diagnostics, tests).
    #[must_use]
    pub fn shard_handle(&self, s: usize) -> &WfHandle<ShardState<K, V, M>> {
        &self.shards[s]
    }
}

fn resp_version<K: Ord, V>(resp: &ShardResp<K, V>) -> u64 {
    match resp {
        ShardResp::Value { version, .. }
        | ShardResp::Prev { version, .. }
        | ShardResp::CasResult { version, .. }
        | ShardResp::Vote { version, .. }
        | ShardResp::Resolved { version, .. }
        | ShardResp::Blocked { version, .. }
        | ShardResp::Ack { version } => *version,
        ShardResp::Part(p) => p.version,
    }
}

/// Torn-multi repair: a multi-op committed in one part must be applied
/// in every involved part of the same cut.
///
/// Why the needed data is always there: `Resolve(commit)` is only sent
/// after `Prepare` decided on *every* involved shard, so if a part
/// shows the commit, the cut's stamp-rule consistency guarantees every
/// other involved part contains at least the `Prepare` (pending) if
/// not the commit itself. The repair applies the pending descriptor's
/// local writes, which is exactly what that shard's `Resolve` will do
/// after the cut. Multi-ops pending in every part are consistently
/// *excluded*.
///
/// Captures carry only the *unsettled* commit window, so the scan here
/// is over in-flight multi-ops, not all commits ever. A part that has
/// an id in neither `pending` nor `unsettled` already settled it —
/// its writes are in the part's map — and is skipped; a settle cannot
/// reach a part whose cut-mates still show the multi pending, because
/// settles obey the stamp rule and are decided only after every
/// involved resolve (see `ShardState::unsettled`).
fn repair_torn<K, V>(parts: &mut [SnapPart<K, V>], seed: u64)
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
{
    let nshards = parts.len();
    // Commit verdicts still repair-relevant in the cut: id → involved
    // shards.
    let mut committed: BTreeMap<MultiId, Vec<usize>> = BTreeMap::new();
    for p in parts.iter() {
        for (id, shards) in &p.unsettled {
            committed.entry(*id).or_insert_with(|| shards.clone());
        }
    }
    for (id, shards) in &committed {
        for &t in shards {
            let part = &mut parts[t];
            let Some(pm) = part.pending.remove(id) else {
                // Already resolved here (settled or not): the writes
                // are in `part.map`.
                continue;
            };
            for (k, w) in &pm.desc.writes {
                if route(seed, nshards, k) != t {
                    continue;
                }
                match w {
                    Some(v) => {
                        part.map.insert(k.clone(), v.clone());
                    }
                    None => {
                        part.map.remove(k);
                    }
                }
            }
            part.unsettled.insert(*id, pm.desc.shards.clone());
        }
    }
}

/// Debug-mode vector-clock cut check: for every pair of shards, the
/// knowledge shard `s` had of shard `t` at its capture must not exceed
/// what shard `t`'s capture actually contains — `know[s][t] <=
/// version[t]`, the classic consistent-cut condition (the same
/// invariant `waitfree_sched::hb`'s vector clocks enforce on memory
/// traces, applied at shard granularity).
#[cfg(debug_assertions)]
fn check_cut<K: Ord, V>(parts: &[SnapPart<K, V>]) {
    for (s, p) in parts.iter().enumerate() {
        for (t, &known) in p.know.iter().enumerate() {
            let actual = parts.get(t).map_or(0, |q| q.version);
            assert!(
                known <= actual,
                "inconsistent cut: shard {s} captured knowledge of shard {t} \
                 at version {known}, but shard {t}'s capture is at version \
                 {actual}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(shards: usize) -> ShardedStore<u64, i64, Bump> {
        ShardedStore::new(&StoreConfig { shards, ..StoreConfig::default() })
    }

    #[test]
    fn single_key_ops_roundtrip() {
        let st = store(4);
        let mut h = st.handle();
        assert_eq!(h.get(&1), None);
        assert_eq!(h.put(1, 10), None);
        assert_eq!(h.put(1, 11), Some(10));
        assert_eq!(h.get(&1), Some(11));
        assert_eq!(h.remove(&1), Some(11));
        assert_eq!(h.get(&1), None);
    }

    #[test]
    fn cas_semantics() {
        let st = store(4);
        let mut h = st.handle();
        assert_eq!(h.cas(7, None, Some(1)), (true, None));
        assert_eq!(h.cas(7, None, Some(2)), (false, Some(1)));
        assert_eq!(h.cas(7, Some(1), Some(2)), (true, Some(1)));
        assert_eq!(h.cas(7, Some(2), None), (true, Some(2)));
        assert_eq!(h.get(&7), None);
    }

    #[test]
    fn fetch_update_bumps() {
        let st = store(4);
        let mut h = st.handle();
        assert_eq!(h.fetch_update(3, Bump(5)), None);
        assert_eq!(h.fetch_update(3, Bump(-2)), Some(5));
        assert_eq!(h.get(&3), Some(3));
    }

    #[test]
    fn multi_put_spans_shards() {
        let st = store(4);
        let mut h = st.handle();
        // 0..16 covers all 4 shards with high probability under any seed.
        h.multi_put((0..16u64).map(|k| (k, Some(k as i64 * 100))));
        for k in 0..16u64 {
            assert_eq!(h.get(&k), Some(k as i64 * 100));
        }
        h.multi_put((0..16u64).map(|k| (k, None)));
        for k in 0..16u64 {
            assert_eq!(h.get(&k), None);
        }
    }

    #[test]
    fn multi_cas_commits_and_aborts_atomically() {
        let st = store(4);
        let mut h = st.handle();
        h.multi_put([(1u64, Some(1i64)), (2, Some(2)), (3, Some(3))]);
        // Abort: one expectation wrong → nothing applied.
        assert!(!h.multi_cas(
            [(1, Some(1)), (2, Some(99))],
            [(1, Some(-1)), (2, Some(-2))],
        ));
        assert_eq!(h.get(&1), Some(1));
        assert_eq!(h.get(&2), Some(2));
        // Commit: all expectations hold → all writes applied.
        assert!(h.multi_cas(
            [(1, Some(1)), (2, Some(2)), (3, Some(3))],
            [(1, Some(-1)), (2, None), (3, Some(-3))],
        ));
        assert_eq!(h.get(&1), Some(-1));
        assert_eq!(h.get(&2), None);
        assert_eq!(h.get(&3), Some(-3));
    }

    #[test]
    fn snapshot_sees_all_prior_writes() {
        let st = store(4);
        let mut h = st.handle();
        for k in 0..32u64 {
            h.put(k, k as i64);
        }
        let snap = h.snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.map.len(), 32);
        for k in 0..32u64 {
            assert_eq!(snap.map.get(&k), Some(&(k as i64)));
        }
        assert_eq!(snap.marker_positions.len(), 4);
        assert!(snap.marker_positions.iter().all(Option::is_some));
        // A later snapshot gets a later epoch and the same data.
        let snap2 = h.snapshot();
        assert_eq!(snap2.epoch, 2);
        assert_eq!(snap2.map, snap.map);
    }

    #[test]
    fn snapshot_excludes_later_writes_from_other_handles() {
        let st = store(4);
        let mut a = st.handle();
        let mut b = st.handle();
        a.put(1, 1);
        let snap = a.snapshot();
        b.put(2, 2);
        assert_eq!(snap.map.get(&1), Some(&1));
        assert_eq!(snap.map.get(&2), None);
        let snap2 = b.snapshot();
        assert_eq!(snap2.map.get(&2), Some(&2));
    }

    #[test]
    fn single_shard_store_works() {
        let st = store(1);
        let mut h = st.handle();
        h.multi_put([(1u64, Some(1i64)), (2, Some(2))]);
        assert!(h.multi_cas([(1, Some(1))], [(1, Some(10)), (2, Some(20))]));
        let snap = h.snapshot();
        assert_eq!(snap.map.get(&1), Some(&10));
        assert_eq!(snap.map.get(&2), Some(&20));
    }

    #[test]
    fn handles_retire_cleanly() {
        let st = store(2);
        let mut h = st.handle();
        h.put(1, 1);
        h.retire();
        for s in 0..2 {
            assert!(st.shard(s).active_handles() == 0);
        }
    }

    /// Acceptance gate for the log-free read path: a burst of `get`s
    /// moves no invoke/decide diagnostic and appends nothing to any
    /// shard log.
    #[test]
    fn local_reads_leave_no_trace_in_any_shard_log() {
        let st = store(4);
        let mut w = st.handle();
        for k in 0..32u64 {
            w.put(k, k as i64);
        }
        let mut r = st.handle();
        // Warm the reader on every shard so the burst below starts
        // caught up (the first read per shard legitimately replays the
        // decided prefix into the replica).
        for k in 0..32u64 {
            assert_eq!(r.get(&k), Some(k as i64));
        }
        let snap_diag: Vec<_> = (0..4)
            .map(|s| {
                let h = r.shard_handle(s);
                (h.invokes(), h.decides(), h.last_decided_position(), h.replayed())
            })
            .collect();
        let writer_pos: Vec<_> =
            (0..4).map(|s| w.shard_handle(s).last_decided_position()).collect();
        for k in 0..32u64 {
            assert_eq!(r.get(&k), Some(k as i64));
            assert_eq!(r.multi_get(&[k, (k + 1) % 32]), vec![
                Some(k as i64),
                Some(((k + 1) % 32) as i64)
            ]);
        }
        for s in 0..4 {
            let h = r.shard_handle(s);
            assert_eq!(h.invokes(), snap_diag[s].0, "shard {s}: read counted as invoke");
            assert_eq!(h.decides(), snap_diag[s].1, "shard {s}: read attempted a decide");
            assert_eq!(h.last_decided_position(), snap_diag[s].2);
            assert_eq!(
                h.replayed(),
                snap_diag[s].3,
                "shard {s}: nothing new was decided, so reads replayed nothing"
            );
            assert_eq!(w.shard_handle(s).last_decided_position(), writer_pos[s]);
        }
        // The next write lands exactly where it would have without the
        // 96 reads in between: the log grew by zero positions.
        let k0 = (0..32u64).find(|k| st.shard_of(k) == 0).unwrap();
        w.put(k0, -1);
        assert_eq!(
            w.shard_handle(0).last_decided_position(),
            writer_pos[0].map(|p| p + 1).or(Some(0)),
        );
    }

    #[test]
    fn get_decided_still_reads_through_the_log() {
        let st = store(2);
        let mut h = st.handle();
        h.put(5, 50);
        let decides = h.decides();
        assert_eq!(h.get_decided(&5), Some(50));
        assert!(h.decides() > decides, "a decided read occupies a log position");
        assert_eq!(h.get(&5), Some(50), "both paths agree");
    }

    #[test]
    fn multi_get_orders_results_by_input_key() {
        let st = store(4);
        let mut h = st.handle();
        h.multi_put((0..16u64).map(|k| (k, Some(k as i64 * 3))));
        let keys: Vec<u64> = vec![15, 0, 7, 99, 7, 3];
        let got = h.multi_get(&keys);
        assert_eq!(got, vec![Some(45), Some(0), Some(21), None, Some(21), Some(9)]);
        assert_eq!(h.multi_get(&[]), Vec::<Option<i64>>::new());
    }

    /// The local read observes every write the *same handle* completed
    /// and every write another handle completed before the read began
    /// (the completed-invoke frontier guarantee).
    #[test]
    fn local_reads_see_completed_writes_across_handles() {
        let st = store(4);
        let mut a = st.handle();
        let mut b = st.handle();
        for k in 0..64u64 {
            a.put(k, k as i64);
            assert_eq!(b.get(&k), Some(k as i64), "b reads a's completed put");
        }
    }

    #[test]
    fn checkpointed_shards_truncate() {
        let st: ShardedStore<u64, i64, Bump> = ShardedStore::new(&StoreConfig {
            shards: 2,
            checkpoint_every: Some(8),
            ..StoreConfig::default()
        });
        let mut h = st.handle();
        for i in 0..2000u64 {
            h.put(i % 64, i as i64);
        }
        let total_ckpts: usize = (0..2).map(|s| st.shard(s).checkpoints()).sum();
        assert!(total_ckpts > 0, "checkpoint cadence never fired");
        h.retire();
        let mut h2 = st.handle();
        let reclaimed: usize = (0..2).map(|s| st.shard(s).reclaimed_segments()).sum();
        assert!(reclaimed > 0, "no shard segment was ever reclaimed");
        // A late joiner adopting a checkpoint still reads everything.
        for i in 1936..2000u64 {
            assert_eq!(h2.get(&(i % 64)), Some(i as i64));
        }
    }
}
