//! # waitfree-store — a sharded universal KV store
//!
//! One universal object serializes every operation through one
//! consensus log (Herlihy §4); this crate scales that construction out:
//! a [`ShardedStore`] composes N **independent** `WfUniversal` logs
//! behind a seeded key→shard router ([`router::route`]). Three op
//! classes, three protocols:
//!
//! * **Single-key ops** (`get`/`put`/`remove`/`cas`/`fetch_update`)
//!   decide into exactly one shard's log — one decided op in the
//!   uncontended case — inheriting that log's wait-free helping bound
//!   unchanged. Keys on different shards no longer contend on a CAS
//!   point at all.
//!
//! * **Multi-key atomic ops** (`multi_put`/`multi_cas`) run a
//!   two-phase protocol *through the logs*: a full descriptor is
//!   decide-ordered (`Prepare`) into every involved shard's log in
//!   **canonical ascending shard order**, votes are gathered, then the
//!   unanimous verdict is decided (`Resolve`) into the same logs.
//!   Locks are acquired whole-shard-atomically and only in ascending
//!   order, so no hold-and-wait cycle can form (DESIGN §13). Because
//!   the descriptor is replicated to every involved shard, *any*
//!   client that runs into its locks can finish it: conflicting ops
//!   receive the full holder descriptor and **help** the stalled
//!   multi-op to resolution before retrying, so a client that crashes
//!   mid-multi-op never wedges a key.
//!
//! * **Consistent global snapshots** ([`StoreHandle::snapshot`])
//!   decide a `Marker{epoch}` entry into every shard's log through the
//!   ordinary consensus CAS — the same way PR 7's checkpoints enter
//!   the log — and assemble the per-shard captures. Cross-shard
//!   consistency comes from an epoch stamp rule (every mutation
//!   carries the epoch its client read before invoking; a mutation
//!   stamped at-or-after an open snapshot that reaches a shard before
//!   that snapshot's marker triggers a pre-mutation *early capture*)
//!   plus a torn-multi repair pass at assembly. In debug builds the
//!   assembled cut is verified with a vector-clock consistency check
//!   (`know[s][t] <= version[t]`, the same invariant
//!   `waitfree_sched::hb` enforces on memory traces).
//!
//! Shards are built on the dynamic-membership registry (PR 6) —
//! [`ShardedStore::handle`] registers on every shard, handles retire —
//! and can be individually checkpointed/truncated (PR 7) via
//! [`StoreConfig::checkpoint_every`], so the store exercises every
//! prior subsystem at once.
//!
//! ## Progress guarantees, stated honestly
//!
//! Single-key ops on keys not touched by any in-flight multi-op are
//! wait-free with the per-shard `O(n)` helping bound. Any op — reads
//! included — that hits a multi-op's lock helps that multi-op to
//! completion first (itself a bounded number of decides over its
//! involved shards) and retries; under a *continuous* adversarial
//! stream of conflicting multi-ops this degrades to lock-freedom (some
//! multi-op always completes), the standard trade for multi-object
//! atomicity without a global log. `get` cannot be exempted from this:
//! a committed multi-op's writes land on its shards at different log
//! positions, so a reader that ignored the locks could see one shard
//! after the resolve and another before it — a half-applied multi-op
//! no linearization of the flat-map spec allows.
//!
//! ## Failpoints
//!
//! With the `failpoints` feature the front-end exposes `store::route`
//! (before every single-key routing decision), `store::multi` (before
//! every per-shard step of a multi-op, prepares and resolves), and
//! `store::snapshot` (before every per-shard marker decide), composing
//! with the `universal::*` sites underneath.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

use waitfree_faults::failpoint;
use waitfree_sched::atomic::{AtomicU64, Ordering};
use waitfree_sync::universal::{WfHandle, WfUniversal};

pub mod model;
pub mod router;
pub mod spec;

pub use model::{StoreModel, StoreOp, StoreResp};
pub use router::route;
pub use spec::{Bump, Ctx, Merge, MultiDesc, MultiId, PendingMulti, ShardOp, ShardResp, ShardState, SnapPart};

/// Construction parameters for a [`ShardedStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Number of independent shard logs. Must be at least 1.
    pub shards: usize,
    /// Router seed: determines the key partition (stable across
    /// processes — see [`router`]).
    pub seed: u64,
    /// Per-shard op budget for each registered [`StoreHandle`]
    /// (multi-key ops and helping consume several per shard).
    pub ops_per_handle: usize,
    /// Decide a checkpoint image into each shard's log every this many
    /// positions (PR 7 truncation machinery). `None` = unbounded logs.
    pub checkpoint_every: Option<usize>,
    /// Hard per-shard log capacity (`LogFull` beyond it). `None` =
    /// grow on demand. Mutually exclusive with `checkpoint_every`.
    pub capacity: Option<usize>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 4,
            seed: 0x5eed_5709_e5ca_1ab1,
            ops_per_handle: 1 << 20,
            checkpoint_every: None,
            capacity: None,
        }
    }
}

/// The sharded store: N independent consensus logs plus the two shared
/// counters (snapshot epoch, multi-op ids) the cross-shard protocols
/// need. Cheap to clone (`Arc`-shared); per-thread access goes through
/// [`ShardedStore::handle`].
pub struct ShardedStore<K, V, M = ()>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    shards: Vec<WfUniversal<ShardState<K, V, M>>>,
    /// Global snapshot epoch. `snapshot()` opens epoch `e` by
    /// fetch-add; every mutating op stamps the value it read *before*
    /// invoking (the stamp rule, see `spec` module docs).
    epoch: Arc<AtomicU64>,
    /// Multi-op id allocator.
    multi_seq: Arc<AtomicU64>,
    seed: u64,
}

impl<K, V, M> Clone for ShardedStore<K, V, M>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    fn clone(&self) -> Self {
        ShardedStore {
            shards: self.shards.clone(),
            epoch: Arc::clone(&self.epoch),
            multi_seq: Arc::clone(&self.multi_seq),
            seed: self.seed,
        }
    }
}

impl<K, V, M> ShardedStore<K, V, M>
where
    K: Clone + Ord + Hash + Debug + Send + Sync + 'static,
    V: Clone + Eq + Hash + Debug + Send + Sync + 'static,
    M: Merge<V> + Send + Sync + 'static,
{
    /// Build a store per `cfg`. Every shard is a dynamic-membership
    /// universal object (PR 6), checkpointed at the configured cadence
    /// (PR 7) or capacity-capped if requested.
    ///
    /// # Panics
    /// If `cfg.shards == 0`, or both `checkpoint_every` and `capacity`
    /// are set (a capped log cannot also truncate).
    #[must_use]
    pub fn new(cfg: &StoreConfig) -> Self {
        assert!(cfg.shards > 0, "a store has at least one shard");
        assert!(
            cfg.checkpoint_every.is_none() || cfg.capacity.is_none(),
            "checkpoint_every and capacity are mutually exclusive"
        );
        let shards = (0..cfg.shards)
            .map(|s| {
                let init = ShardState::new(s, cfg.shards, cfg.seed);
                match (cfg.checkpoint_every, cfg.capacity) {
                    (Some(every), None) => {
                        WfUniversal::new_dynamic_checkpointed(init, cfg.ops_per_handle, every)
                    }
                    (None, Some(cap)) => {
                        WfUniversal::with_capacity_dynamic(init, cfg.ops_per_handle, cap)
                    }
                    _ => WfUniversal::new_dynamic(init, cfg.ops_per_handle),
                }
            })
            .collect();
        ShardedStore {
            shards,
            epoch: Arc::new(AtomicU64::new(0)),
            multi_seq: Arc::new(AtomicU64::new(0)),
            seed: cfg.seed,
        }
    }

    /// Number of shard logs.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The router seed (fixed at construction).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard owning `key`.
    #[must_use]
    pub fn shard_of(&self, key: &K) -> usize {
        route(self.seed, self.shards.len(), key)
    }

    /// Direct access to one shard's universal object (diagnostics,
    /// tests).
    #[must_use]
    pub fn shard(&self, s: usize) -> &WfUniversal<ShardState<K, V, M>> {
        &self.shards[s]
    }

    /// Register on every shard and return a per-thread handle.
    /// Wait-free (N wait-free registrations).
    #[must_use]
    pub fn handle(&self) -> StoreHandle<K, V, M> {
        StoreHandle {
            shards: self.shards.iter().map(WfUniversal::register).collect(),
            epoch: Arc::clone(&self.epoch),
            multi_seq: Arc::clone(&self.multi_seq),
            seed: self.seed,
            seen: BTreeMap::new(),
        }
    }
}

/// The result of one consistent global snapshot.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Snapshot<K: Ord, V> {
    /// The snapshot epoch (unique per snapshot, monotonically
    /// increasing).
    pub epoch: u64,
    /// The assembled, torn-multi-repaired global map.
    pub map: BTreeMap<K, V>,
    /// Per-shard log position at which this snapshot's marker was
    /// decided (via `WfHandle::last_decided_position`).
    pub marker_positions: Vec<Option<usize>>,
}

/// Per-thread access to a [`ShardedStore`]: one registered `WfHandle`
/// per shard plus this client's observed-version vector. Not `Sync` —
/// one handle per thread, like `WfHandle` itself.
pub struct StoreHandle<K, V, M = ()>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    shards: Vec<WfHandle<ShardState<K, V, M>>>,
    epoch: Arc<AtomicU64>,
    multi_seq: Arc<AtomicU64>,
    seed: u64,
    /// Highest shard versions observed in responses; stamped onto every
    /// mutating op for the snapshot cut check.
    seen: BTreeMap<usize, u64>,
}

impl<K, V, M> StoreHandle<K, V, M>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    fn nshards(&self) -> usize {
        self.shards.len()
    }

    /// The stamp every mutating op carries: epoch read *now* (before
    /// the invoke — the ordering the snapshot argument needs) plus the
    /// observed-version vector.
    fn ctx(&self) -> Ctx {
        Ctx { epoch: self.epoch.load(Ordering::SeqCst), know: self.seen.clone() }
    }

    fn observe(&mut self, shard: usize, version: u64) {
        let e = self.seen.entry(shard).or_insert(0);
        if version > *e {
            *e = version;
        }
    }

    /// Decide `op` into `shard`'s log and record the observed version.
    fn invoke(&mut self, shard: usize, op: ShardOp<K, V, M>) -> ShardResp<K, V> {
        let resp = self.shards[shard].invoke(op);
        self.observe(shard, resp_version(&resp));
        resp
    }

    /// Read one key. Wait-free when the key is not under a multi-op
    /// lock; otherwise helps the locking multi-op to completion and
    /// retries, like every mutator — a read that skipped the lock
    /// could observe a cross-shard multi-op half-applied.
    pub fn get(&mut self, key: &K) -> Option<V> {
        loop {
            failpoint!("store::route");
            let s = route(self.seed, self.nshards(), key);
            match self.invoke(s, ShardOp::Get { key: key.clone() }) {
                ShardResp::Value { val, .. } => return val,
                ShardResp::Blocked { holder, .. } => {
                    self.run_multi(&holder);
                }
                r => unreachable!("get answered {r:?}"),
            }
        }
    }

    /// Write one key, returning the previous value. Helps and retries
    /// past conflicting multi-ops.
    pub fn put(&mut self, key: K, val: V) -> Option<V> {
        self.put_opt(key, Some(val))
    }

    /// Remove one key, returning the previous value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.put_opt(key.clone(), None)
    }

    fn put_opt(&mut self, key: K, val: Option<V>) -> Option<V> {
        loop {
            failpoint!("store::route");
            let s = route(self.seed, self.nshards(), &key);
            let op = ShardOp::Put { key: key.clone(), val: val.clone(), ctx: self.ctx() };
            match self.invoke(s, op) {
                ShardResp::Prev { prev, .. } => return prev,
                ShardResp::Blocked { holder, .. } => {
                    self.run_multi(&holder);
                }
                r => unreachable!("put answered {r:?}"),
            }
        }
    }

    /// Compare-and-set one key (`None` = absent on either side).
    /// Returns `(succeeded, previous value)`.
    pub fn cas(
        &mut self,
        key: K,
        expect: Option<V>,
        new: Option<V>,
    ) -> (bool, Option<V>) {
        loop {
            failpoint!("store::route");
            let s = route(self.seed, self.nshards(), &key);
            let op = ShardOp::Cas {
                key: key.clone(),
                expect: expect.clone(),
                new: new.clone(),
                ctx: self.ctx(),
            };
            match self.invoke(s, op) {
                ShardResp::CasResult { ok, prev, .. } => return (ok, prev),
                ShardResp::Blocked { holder, .. } => {
                    self.run_multi(&holder);
                }
                r => unreachable!("cas answered {r:?}"),
            }
        }
    }

    /// Atomically replace one key's value with `merge(current)`,
    /// returning the previous value.
    pub fn fetch_update(&mut self, key: K, merge: M) -> Option<V> {
        loop {
            failpoint!("store::route");
            let s = route(self.seed, self.nshards(), &key);
            let op = ShardOp::Update { key: key.clone(), merge: merge.clone(), ctx: self.ctx() };
            match self.invoke(s, op) {
                ShardResp::Prev { prev, .. } => return prev,
                ShardResp::Blocked { holder, .. } => {
                    self.run_multi(&holder);
                }
                r => unreachable!("fetch_update answered {r:?}"),
            }
        }
    }

    /// Atomically write (`Some`) or remove (`None`) every key in
    /// `writes`, across any number of shards. Always commits.
    pub fn multi_put<I>(&mut self, writes: I)
    where
        I: IntoIterator<Item = (K, Option<V>)>,
    {
        let writes: BTreeMap<K, Option<V>> = writes.into_iter().collect();
        if writes.is_empty() {
            return;
        }
        let desc = self.describe(BTreeMap::new(), writes);
        let committed = self.run_multi(&desc);
        debug_assert!(committed, "an expectation-free multi-op always commits");
    }

    /// Atomically: if every key in `expects` has the expected value
    /// (`None` = absent), apply every write in `writes`. Returns
    /// whether it committed. All-or-nothing across shards.
    pub fn multi_cas<I, J>(&mut self, expects: I, writes: J) -> bool
    where
        I: IntoIterator<Item = (K, Option<V>)>,
        J: IntoIterator<Item = (K, Option<V>)>,
    {
        let expects: BTreeMap<K, Option<V>> = expects.into_iter().collect();
        let writes: BTreeMap<K, Option<V>> = writes.into_iter().collect();
        if expects.is_empty() && writes.is_empty() {
            return true;
        }
        let desc = self.describe(expects, writes);
        self.run_multi(&desc)
    }

    fn describe(
        &mut self,
        expects: BTreeMap<K, Option<V>>,
        writes: BTreeMap<K, Option<V>>,
    ) -> MultiDesc<K, V> {
        let n = self.nshards();
        let mut shards: Vec<usize> = expects
            .keys()
            .chain(writes.keys())
            .map(|k| route(self.seed, n, k))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        MultiDesc {
            id: MultiId(self.multi_seq.fetch_add(1, Ordering::SeqCst)),
            expects,
            writes,
            shards,
        }
    }

    /// Drive `desc` to resolution — as initiator or helper; the
    /// protocol is identical and every step idempotent.
    ///
    /// Phase 1 prepares in ascending shard order (the canonical lock
    /// order — see DESIGN §13 for why no cycle of blocked multi-ops
    /// can form). `Resolved` short-circuits: someone finished the
    /// verdict already, but phase 2 still visits every shard because
    /// the finisher may have crashed mid-resolve. A `Blocked` prepare
    /// recursively helps the older holder first. Phase 2 decides the
    /// unanimous verdict everywhere; `Resolve` acks are idempotent.
    /// After a commit's resolves are all acknowledged, a settle sweep
    /// retires the id from every shard's possibly-torn capture window
    /// (snapshot-cost bookkeeping, not correctness: a crash anywhere in
    /// the sweep just leaves the id in some windows until the next
    /// helper of the same multi re-settles).
    fn run_multi(&mut self, desc: &MultiDesc<K, V>) -> bool {
        let mut verdict: Option<bool> = None;
        let mut all = true;
        for &s in &desc.shards {
            if verdict.is_some() {
                break;
            }
            loop {
                failpoint!("store::multi");
                let op = ShardOp::Prepare { desc: desc.clone(), ctx: self.ctx() };
                match self.invoke(s, op) {
                    ShardResp::Vote { ok, .. } => {
                        all &= ok;
                        break;
                    }
                    ShardResp::Resolved { commit, .. } => {
                        verdict = Some(commit);
                        break;
                    }
                    ShardResp::Blocked { holder, .. } => {
                        self.run_multi(&holder);
                    }
                    r => unreachable!("prepare answered {r:?}"),
                }
            }
        }
        let commit = verdict.unwrap_or(all);
        for &s in &desc.shards {
            failpoint!("store::multi");
            let op = ShardOp::Resolve { id: desc.id, commit, ctx: self.ctx() };
            match self.invoke(s, op) {
                ShardResp::Ack { .. } => {}
                r => unreachable!("resolve answered {r:?}"),
            }
        }
        if commit {
            // Every involved shard has acknowledged the resolve (the
            // loop above returned), so this commit can no longer be
            // torn: tell each shard to drop it from its capture window.
            // The ctx makes the settle obey the stamp rule, which is
            // what licenses the drop (see `ShardState::unsettled`).
            for &s in &desc.shards {
                failpoint!("store::multi");
                let op = ShardOp::Settle { id: desc.id, ctx: self.ctx() };
                match self.invoke(s, op) {
                    ShardResp::Ack { .. } => {}
                    r => unreachable!("settle answered {r:?}"),
                }
            }
        }
        commit
    }

    /// Take a consistent global snapshot: open a fresh epoch, decide a
    /// marker into every shard's log (ascending — any fixed order
    /// works; consistency comes from the stamp rule, not marker
    /// order), repair torn multi-ops, and assemble the union map.
    ///
    /// Wait-free: one epoch fetch-add plus one wait-free decide per
    /// shard; assembly is local. A client that crashes mid-snapshot
    /// costs a bounded, one-time amount per shard it never reached:
    /// one retained early capture (claimable if the straggler is
    /// merely stalled and its marker eventually lands) and one range
    /// split in the shard's interval-compressed epoch bookkeeping.
    /// Later mutations and snapshots are unaffected — each epoch is
    /// swept into a capture at most once (a per-shard stamp watermark),
    /// so a permanently open epoch does not tax subsequent writes.
    pub fn snapshot(&mut self) -> Snapshot<K, V> {
        let epoch = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let mut parts: Vec<SnapPart<K, V>> = Vec::with_capacity(self.nshards());
        let mut marker_positions = Vec::with_capacity(self.nshards());
        for s in 0..self.nshards() {
            failpoint!("store::snapshot");
            match self.invoke(s, ShardOp::Marker { epoch }) {
                ShardResp::Part(p) => {
                    parts.push(*p);
                    marker_positions.push(self.shards[s].last_decided_position());
                }
                r => unreachable!("marker answered {r:?}"),
            }
        }
        repair_torn(&mut parts, self.seed);
        #[cfg(debug_assertions)]
        check_cut(&parts);
        let mut map = BTreeMap::new();
        for p in &mut parts {
            map.append(&mut p.map);
        }
        Snapshot { epoch, map, marker_positions }
    }

    /// Retire every per-shard registration (PR 6 dynamic membership).
    /// Idempotent; later ops panic with `Retired`.
    pub fn retire(&mut self) {
        for h in &mut self.shards {
            h.retire();
        }
    }

    /// Worst single-invoke threading-step count over all shard handles
    /// (the helping-bound diagnostic, max across shards).
    #[must_use]
    pub fn max_threading_steps(&self) -> usize {
        self.shards.iter().map(WfHandle::max_threading_steps).max().unwrap_or(0)
    }

    /// Total consensus decides across all shard handles.
    #[must_use]
    pub fn decides(&self) -> usize {
        self.shards.iter().map(WfHandle::decides).sum()
    }

    /// The underlying per-shard handle (diagnostics, tests).
    #[must_use]
    pub fn shard_handle(&self, s: usize) -> &WfHandle<ShardState<K, V, M>> {
        &self.shards[s]
    }
}

fn resp_version<K: Ord, V>(resp: &ShardResp<K, V>) -> u64 {
    match resp {
        ShardResp::Value { version, .. }
        | ShardResp::Prev { version, .. }
        | ShardResp::CasResult { version, .. }
        | ShardResp::Vote { version, .. }
        | ShardResp::Resolved { version, .. }
        | ShardResp::Blocked { version, .. }
        | ShardResp::Ack { version } => *version,
        ShardResp::Part(p) => p.version,
    }
}

/// Torn-multi repair: a multi-op committed in one part must be applied
/// in every involved part of the same cut.
///
/// Why the needed data is always there: `Resolve(commit)` is only sent
/// after `Prepare` decided on *every* involved shard, so if a part
/// shows the commit, the cut's stamp-rule consistency guarantees every
/// other involved part contains at least the `Prepare` (pending) if
/// not the commit itself. The repair applies the pending descriptor's
/// local writes, which is exactly what that shard's `Resolve` will do
/// after the cut. Multi-ops pending in every part are consistently
/// *excluded*.
///
/// Captures carry only the *unsettled* commit window, so the scan here
/// is over in-flight multi-ops, not all commits ever. A part that has
/// an id in neither `pending` nor `unsettled` already settled it —
/// its writes are in the part's map — and is skipped; a settle cannot
/// reach a part whose cut-mates still show the multi pending, because
/// settles obey the stamp rule and are decided only after every
/// involved resolve (see `ShardState::unsettled`).
fn repair_torn<K, V>(parts: &mut [SnapPart<K, V>], seed: u64)
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
{
    let nshards = parts.len();
    // Commit verdicts still repair-relevant in the cut: id → involved
    // shards.
    let mut committed: BTreeMap<MultiId, Vec<usize>> = BTreeMap::new();
    for p in parts.iter() {
        for (id, shards) in &p.unsettled {
            committed.entry(*id).or_insert_with(|| shards.clone());
        }
    }
    for (id, shards) in &committed {
        for &t in shards {
            let part = &mut parts[t];
            let Some(pm) = part.pending.remove(id) else {
                // Already resolved here (settled or not): the writes
                // are in `part.map`.
                continue;
            };
            for (k, w) in &pm.desc.writes {
                if route(seed, nshards, k) != t {
                    continue;
                }
                match w {
                    Some(v) => {
                        part.map.insert(k.clone(), v.clone());
                    }
                    None => {
                        part.map.remove(k);
                    }
                }
            }
            part.unsettled.insert(*id, pm.desc.shards.clone());
        }
    }
}

/// Debug-mode vector-clock cut check: for every pair of shards, the
/// knowledge shard `s` had of shard `t` at its capture must not exceed
/// what shard `t`'s capture actually contains — `know[s][t] <=
/// version[t]`, the classic consistent-cut condition (the same
/// invariant `waitfree_sched::hb`'s vector clocks enforce on memory
/// traces, applied at shard granularity).
#[cfg(debug_assertions)]
fn check_cut<K: Ord, V>(parts: &[SnapPart<K, V>]) {
    for (s, p) in parts.iter().enumerate() {
        for (&t, &known) in &p.know {
            let actual = parts.get(t).map_or(0, |q| q.version);
            assert!(
                known <= actual,
                "inconsistent cut: shard {s} captured knowledge of shard {t} \
                 at version {known}, but shard {t}'s capture is at version \
                 {actual}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(shards: usize) -> ShardedStore<u64, i64, Bump> {
        ShardedStore::new(&StoreConfig { shards, ..StoreConfig::default() })
    }

    #[test]
    fn single_key_ops_roundtrip() {
        let st = store(4);
        let mut h = st.handle();
        assert_eq!(h.get(&1), None);
        assert_eq!(h.put(1, 10), None);
        assert_eq!(h.put(1, 11), Some(10));
        assert_eq!(h.get(&1), Some(11));
        assert_eq!(h.remove(&1), Some(11));
        assert_eq!(h.get(&1), None);
    }

    #[test]
    fn cas_semantics() {
        let st = store(4);
        let mut h = st.handle();
        assert_eq!(h.cas(7, None, Some(1)), (true, None));
        assert_eq!(h.cas(7, None, Some(2)), (false, Some(1)));
        assert_eq!(h.cas(7, Some(1), Some(2)), (true, Some(1)));
        assert_eq!(h.cas(7, Some(2), None), (true, Some(2)));
        assert_eq!(h.get(&7), None);
    }

    #[test]
    fn fetch_update_bumps() {
        let st = store(4);
        let mut h = st.handle();
        assert_eq!(h.fetch_update(3, Bump(5)), None);
        assert_eq!(h.fetch_update(3, Bump(-2)), Some(5));
        assert_eq!(h.get(&3), Some(3));
    }

    #[test]
    fn multi_put_spans_shards() {
        let st = store(4);
        let mut h = st.handle();
        // 0..16 covers all 4 shards with high probability under any seed.
        h.multi_put((0..16u64).map(|k| (k, Some(k as i64 * 100))));
        for k in 0..16u64 {
            assert_eq!(h.get(&k), Some(k as i64 * 100));
        }
        h.multi_put((0..16u64).map(|k| (k, None)));
        for k in 0..16u64 {
            assert_eq!(h.get(&k), None);
        }
    }

    #[test]
    fn multi_cas_commits_and_aborts_atomically() {
        let st = store(4);
        let mut h = st.handle();
        h.multi_put([(1u64, Some(1i64)), (2, Some(2)), (3, Some(3))]);
        // Abort: one expectation wrong → nothing applied.
        assert!(!h.multi_cas(
            [(1, Some(1)), (2, Some(99))],
            [(1, Some(-1)), (2, Some(-2))],
        ));
        assert_eq!(h.get(&1), Some(1));
        assert_eq!(h.get(&2), Some(2));
        // Commit: all expectations hold → all writes applied.
        assert!(h.multi_cas(
            [(1, Some(1)), (2, Some(2)), (3, Some(3))],
            [(1, Some(-1)), (2, None), (3, Some(-3))],
        ));
        assert_eq!(h.get(&1), Some(-1));
        assert_eq!(h.get(&2), None);
        assert_eq!(h.get(&3), Some(-3));
    }

    #[test]
    fn snapshot_sees_all_prior_writes() {
        let st = store(4);
        let mut h = st.handle();
        for k in 0..32u64 {
            h.put(k, k as i64);
        }
        let snap = h.snapshot();
        assert_eq!(snap.epoch, 1);
        assert_eq!(snap.map.len(), 32);
        for k in 0..32u64 {
            assert_eq!(snap.map.get(&k), Some(&(k as i64)));
        }
        assert_eq!(snap.marker_positions.len(), 4);
        assert!(snap.marker_positions.iter().all(Option::is_some));
        // A later snapshot gets a later epoch and the same data.
        let snap2 = h.snapshot();
        assert_eq!(snap2.epoch, 2);
        assert_eq!(snap2.map, snap.map);
    }

    #[test]
    fn snapshot_excludes_later_writes_from_other_handles() {
        let st = store(4);
        let mut a = st.handle();
        let mut b = st.handle();
        a.put(1, 1);
        let snap = a.snapshot();
        b.put(2, 2);
        assert_eq!(snap.map.get(&1), Some(&1));
        assert_eq!(snap.map.get(&2), None);
        let snap2 = b.snapshot();
        assert_eq!(snap2.map.get(&2), Some(&2));
    }

    #[test]
    fn single_shard_store_works() {
        let st = store(1);
        let mut h = st.handle();
        h.multi_put([(1u64, Some(1i64)), (2, Some(2))]);
        assert!(h.multi_cas([(1, Some(1))], [(1, Some(10)), (2, Some(20))]));
        let snap = h.snapshot();
        assert_eq!(snap.map.get(&1), Some(&10));
        assert_eq!(snap.map.get(&2), Some(&20));
    }

    #[test]
    fn handles_retire_cleanly() {
        let st = store(2);
        let mut h = st.handle();
        h.put(1, 1);
        h.retire();
        for s in 0..2 {
            assert!(st.shard(s).active_handles() == 0);
        }
    }

    #[test]
    fn checkpointed_shards_truncate() {
        let st: ShardedStore<u64, i64, Bump> = ShardedStore::new(&StoreConfig {
            shards: 2,
            checkpoint_every: Some(8),
            ..StoreConfig::default()
        });
        let mut h = st.handle();
        for i in 0..2000u64 {
            h.put(i % 64, i as i64);
        }
        let total_ckpts: usize = (0..2).map(|s| st.shard(s).checkpoints()).sum();
        assert!(total_ckpts > 0, "checkpoint cadence never fired");
        h.retire();
        let mut h2 = st.handle();
        let reclaimed: usize = (0..2).map(|s| st.shard(s).reclaimed_segments()).sum();
        assert!(reclaimed > 0, "no shard segment was ever reclaimed");
        // A late joiner adopting a checkpoint still reads everything.
        for i in 1936..2000u64 {
            assert_eq!(h2.get(&(i % 64)), Some(i as i64));
        }
    }
}
