//! Sequential whole-store reference model.
//!
//! [`StoreModel`] is the *specification* a `ShardedStore` must be
//! linearizable against: one flat map, every op (including multi-key
//! ops and whole-store snapshots) atomic. The sched campaigns in
//! `tests/sched_linearizability.rs` record store-API-granularity
//! histories against the real sharded implementation and hand them to
//! the Wing–Gong checker with this model — so a torn multi-op or an
//! inconsistent snapshot shows up directly as a non-linearizable
//! history, not just as a bespoke assertion.

use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::marker::PhantomData;

use waitfree_model::{ObjectSpec, Pid};

use crate::spec::Merge;

/// Whole-store operations at the public API granularity.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum StoreOp<K: Ord, V, M> {
    Get(K),
    Put(K, V),
    Remove(K),
    Cas { key: K, expect: Option<V>, new: Option<V> },
    Update(K, M),
    /// Unconditional multi-key write (`None` = remove).
    MultiPut(BTreeMap<K, Option<V>>),
    /// All-or-nothing conditional multi-key write.
    MultiCas {
        expects: BTreeMap<K, Option<V>>,
        writes: BTreeMap<K, Option<V>>,
    },
    Snapshot,
}

/// Whole-store responses.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum StoreResp<K: Ord, V> {
    Value(Option<V>),
    Prev(Option<V>),
    Cas { ok: bool, prev: Option<V> },
    Done(bool),
    Snap(BTreeMap<K, V>),
}

/// The atomic flat-map state. See module docs.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StoreModel<K: Ord, V, M = ()> {
    pub map: BTreeMap<K, V>,
    _merge: PhantomData<M>,
}

impl<K: Ord, V, M> Default for StoreModel<K, V, M> {
    fn default() -> Self {
        StoreModel { map: BTreeMap::new(), _merge: PhantomData }
    }
}

impl<K: Ord, V, M> StoreModel<K, V, M> {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl<K, V, M> StoreModel<K, V, M>
where
    K: Clone + Ord,
    V: Clone,
{
    fn write(&mut self, key: &K, val: &Option<V>) {
        match val {
            Some(v) => {
                self.map.insert(key.clone(), v.clone());
            }
            None => {
                self.map.remove(key);
            }
        }
    }
}

impl<K, V, M> ObjectSpec for StoreModel<K, V, M>
where
    K: Clone + Ord + Hash + Debug,
    V: Clone + Eq + Hash + Debug,
    M: Merge<V>,
{
    type Op = StoreOp<K, V, M>;
    type Resp = StoreResp<K, V>;

    fn apply(&mut self, _pid: Pid, op: &Self::Op) -> Self::Resp {
        match op {
            StoreOp::Get(k) => StoreResp::Value(self.map.get(k).cloned()),
            StoreOp::Put(k, v) => {
                StoreResp::Prev(self.map.insert(k.clone(), v.clone()))
            }
            StoreOp::Remove(k) => StoreResp::Prev(self.map.remove(k)),
            StoreOp::Cas { key, expect, new } => {
                let prev = self.map.get(key).cloned();
                let ok = prev == *expect;
                if ok {
                    self.write(key, new);
                }
                StoreResp::Cas { ok, prev }
            }
            StoreOp::Update(k, m) => {
                let prev = self.map.get(k).cloned();
                match m.merge(prev.as_ref()) {
                    Some(v) => {
                        self.map.insert(k.clone(), v);
                    }
                    None => {
                        self.map.remove(k);
                    }
                }
                StoreResp::Prev(prev)
            }
            StoreOp::MultiPut(writes) => {
                for (k, w) in writes {
                    self.write(k, w);
                }
                StoreResp::Done(true)
            }
            StoreOp::MultiCas { expects, writes } => {
                let ok = expects.iter().all(|(k, e)| self.map.get(k) == e.as_ref());
                if ok {
                    for (k, w) in writes {
                        self.write(k, w);
                    }
                }
                StoreResp::Done(ok)
            }
            StoreOp::Snapshot => StoreResp::Snap(self.map.clone()),
        }
    }
}
