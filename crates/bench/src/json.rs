//! A minimal JSON tree — parser and printer — so bench binaries can
//! *merge* into their recorded result files instead of overwriting them.
//! Hand-rolled because the workspace deliberately carries no external
//! dependencies; it supports exactly the JSON this repo writes (objects,
//! arrays, strings with escapes, numbers, booleans, null).

use std::fmt;

/// A parsed JSON value. Object keys keep insertion order so re-rendered
/// files diff cleanly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its source token so values round-trip exactly.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// An integer number value.
    #[must_use]
    pub fn num(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// Member lookup on an object; `None` for other variants.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage"));
        }
        Ok(v)
    }

    /// Render as pretty-printed JSON (two-space indent, trailing
    /// newline), the house style of this repo's result files.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.pos, msg: msg.to_string() }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates never appear in this repo's
                            // files; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied verbatim).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii number token")
            .to_string();
        // Validate the token is a number (reject "-", "1.2.3", ...).
        if token.parse::<f64>().is_err() {
            return Err(self.err("malformed number"));
        }
        Ok(Json::Num(token))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let src = r#"{"schema": 2, "runs": [{"timestamp": "t0", "config": {"ops": 64}, "report": {"rows": [["a", "1"]], "pass": true, "x": null}}]}"#;
        let v = Json::parse(src).unwrap();
        let again = Json::parse(&v.pretty()).unwrap();
        assert_eq!(v, again);
        assert_eq!(v.get("schema"), Some(&Json::num(2)));
        let runs = v.get("runs").and_then(Json::as_array).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(
            runs[0].get("timestamp").and_then(Json::as_str),
            Some("t0")
        );
    }

    #[test]
    fn parses_report_to_json_output() {
        let mut r = crate::Report::new("x\"y", "a\\b\nc", &["col"]);
        r.row(&["cell".into()]);
        r.note("n\tote");
        let v = Json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_str), Some("x\"y"));
        assert_eq!(v.get("title").and_then(Json::as_str), Some("a\\b\nc"));
        assert_eq!(v.get("pass"), Some(&Json::Bool(true)));
    }

    #[test]
    fn escapes_and_unicode_survive() {
        let v = Json::Str("quote\" slash\\ tab\t nl\n unit\u{1}é".to_string());
        let parsed = Json::parse(&v.pretty()).unwrap();
        assert_eq!(v, parsed);
    }

    #[test]
    fn numbers_round_trip_verbatim() {
        let v = Json::parse("[0, -1, 3.25, 1e9]").unwrap();
        assert_eq!(
            v,
            Json::Arr(vec![
                Json::Num("0".into()),
                Json::Num("-1".into()),
                Json::Num("3.25".into()),
                Json::Num("1e9".into()),
            ])
        );
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}
