//! # waitfree-bench
//!
//! The experiment harness: one binary per figure/theorem of the paper
//! (see DESIGN.md's per-experiment index and EXPERIMENTS.md for recorded
//! outcomes), plus self-contained timing benches (`benches/`, run with
//! `cargo bench`) for the performance comparisons.
//!
//! Each binary prints a human-readable table and writes a JSON record
//! under `results/` so EXPERIMENTS.md can be regenerated and diffed.
//!
//! Run everything:
//!
//! ```text
//! for b in fig_1_1_hierarchy thm_02_registers thm_04_rmw thm_06_interfering \
//!          thm_07_cas thm_09_queue thm_11_queue_three thm_12_augmented_queue \
//!          thm_15_move thm_16_swap thm_19_assignment thm_22_assignment_impossible \
//!          fig_4_3_swap_cons fig_4_5_consensus_cons sec_4_1_universal sec_3_1_channels \
//!          sec_5_randomized; do
//!   cargo run --release -p waitfree-bench --bin $b
//! done
//! ```

#![warn(missing_docs)]

use std::fs;
use std::path::Path;

pub mod json;
pub mod timing;
pub mod trajectory;

/// A machine- and human-readable experiment report.
#[derive(Clone, Debug)]
pub struct Report {
    /// Experiment id (e.g. `"thm_07_cas"`).
    pub id: String,
    /// One-line title quoting the paper artifact.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Table rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (bounds, caveats, certificate semantics).
    pub notes: Vec<String>,
    /// Whether the experiment's claim was confirmed.
    pub pass: bool,
}

impl Report {
    /// Start a report.
    #[must_use]
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            pass: true,
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Record a failed expectation (marks the whole report failed).
    pub fn fail(&mut self, text: impl Into<String>) {
        self.pass = false;
        self.notes.push(format!("FAIL: {}", text.into()));
    }

    /// Print the table and write `results/<id>.json`. Exits the process
    /// with a non-zero status if the experiment failed.
    pub fn finish(self) {
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(c.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        println!("== {} — {}", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
            .collect();
        println!("  {}", header.join(" | "));
        println!(
            "  {}",
            widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-")
        );
        for r in &self.rows {
            let cells: Vec<String> = r
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            println!("  {}", cells.join(" | "));
        }
        for n in &self.notes {
            println!("  note: {n}");
        }
        println!("  verdict: {}", if self.pass { "CONFIRMED" } else { "FAILED" });

        let dir = Path::new("results");
        if fs::create_dir_all(dir).is_ok() {
            let path = dir.join(format!("{}.json", self.id));
            if let Err(e) = fs::write(&path, self.to_json()) {
                eprintln!("could not write {}: {e}", path.display());
            } else {
                println!("  wrote {}", path.display());
            }
        }
        if !self.pass {
            std::process::exit(1);
        }
    }

    /// Serialize the report as pretty-printed JSON (hand-rolled: the
    /// workspace carries no serialization dependency).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn str_array(items: &[String], indent: &str) -> String {
            if items.is_empty() {
                return "[]".to_string();
            }
            let cells: Vec<String> = items.iter().map(|s| esc(s)).collect();
            format!("[\n{indent}  {}\n{indent}]", cells.join(&format!(",\n{indent}  ")))
        }
        let rows = if self.rows.is_empty() {
            "[]".to_string()
        } else {
            let rendered: Vec<String> =
                self.rows.iter().map(|r| str_array(r, "    ")).collect();
            format!("[\n    {}\n  ]", rendered.join(",\n    "))
        };
        format!(
            "{{\n  \"id\": {},\n  \"title\": {},\n  \"columns\": {},\n  \"rows\": {},\n  \"notes\": {},\n  \"pass\": {}\n}}\n",
            esc(&self.id),
            esc(&self.title),
            str_array(&self.columns, "  "),
            rows,
            str_array(&self.notes, "  "),
            self.pass
        )
    }
}

/// Format a [`waitfree_explorer::check::CheckReport`] verdict cell.
#[must_use]
pub fn verdict(report: &waitfree_explorer::check::CheckReport) -> String {
    match &report.violation {
        None => format!("ok ({} configs)", report.configs),
        Some(v) => format!("violated: {v}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rows_must_match_columns() {
        let mut r = Report::new("x", "t", &["a", "b"]);
        r.row(&["1".into(), "2".into()]);
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn report_arity_enforced() {
        let mut r = Report::new("x", "t", &["a", "b"]);
        r.row(&["1".into()]);
    }

    #[test]
    fn json_escapes_specials_and_renders_all_fields() {
        let mut r = Report::new("id\"1", "a\\b\nc", &["col"]);
        r.row(&["cell".into()]);
        r.note("n\tote");
        let json = r.to_json();
        assert!(json.contains("\"id\\\"1\""));
        assert!(json.contains("\"a\\\\b\\nc\""));
        assert!(json.contains("\"cell\""));
        assert!(json.contains("\"n\\tote\""));
        assert!(json.contains("\"pass\": true"));
    }

    #[test]
    fn fail_flips_verdict() {
        let mut r = Report::new("x", "t", &["a"]);
        assert!(r.pass);
        r.fail("nope");
        assert!(!r.pass);
        assert_eq!(r.notes.len(), 1);
    }
}
