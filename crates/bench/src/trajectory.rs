//! The recorded perf-trajectory file (`BENCH_universal.json`): shared
//! merge logic for every bench binary that appends runs to it
//! (`bench_universal`, `bench_store`), and the `--timestamp` CLI
//! convention for reproducible records.
//!
//! Schema 2 is `{"schema": 2, "runs": [...]}` where each run carries a
//! timestamp, the run's configuration object (the trend gate groups
//! runs by its rendered JSON — see `bench_trend`), and the full report.
//! A pre-schema-2 file (a bare report object) is wrapped as the first
//! run with timestamp `"pre-merge"`.

use crate::json::Json;

/// Merge one run into the recorded trajectory: read the existing
/// document (wrapping a pre-schema-2 bare report as the first run),
/// append `{timestamp, config, report}`, and render the schema-2
/// document.
///
/// A *missing* prior is a fresh start (new clone, new trajectory). An
/// *unparseable* prior is an error: overwriting it would silently
/// discard the recorded history, so the caller must fail instead.
///
/// # Errors
///
/// When `prior` is present but not valid JSON.
pub fn merged_trajectory(
    prior: Option<&str>,
    report_json: &str,
    timestamp: &str,
    config: Json,
) -> Result<String, String> {
    let mut runs: Vec<Json> = match prior.map(Json::parse) {
        Some(Ok(doc)) => match doc.get("runs").and_then(Json::as_array) {
            Some(existing) => existing.to_vec(),
            // A bare report from before the merge schema: keep it as
            // the trajectory's first entry.
            None if doc.get("id").is_some() => vec![Json::Obj(vec![
                ("timestamp".into(), Json::Str("pre-merge".into())),
                ("config".into(), Json::Obj(Vec::new())),
                ("report".into(), doc),
            ])],
            None => Vec::new(),
        },
        Some(Err(e)) => {
            return Err(format!(
                "existing trajectory is not valid JSON ({e}); refusing to \
                 overwrite the recorded history — fix or remove the file"
            ))
        }
        None => Vec::new(),
    };
    let report = Json::parse(report_json).expect("Report::to_json emits valid JSON");
    runs.push(Json::Obj(vec![
        ("timestamp".into(), Json::Str(timestamp.into())),
        ("config".into(), config),
        ("report".into(), report),
    ]));
    Ok(Json::Obj(vec![
        ("schema".into(), Json::num(2)),
        ("runs".into(), Json::Arr(runs)),
    ])
    .pretty())
}

/// `--timestamp <tag>` / `--timestamp=<tag>` from the process args,
/// else wall-clock epoch seconds (`unix:<secs>`).
#[must_use]
pub fn cli_timestamp() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--timestamp" {
            if let Some(v) = args.next() {
                return v;
            }
        } else if let Some(v) = a.strip_prefix("--timestamp=") {
            return v.to_string();
        }
    }
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!("unix:{secs}")
}

/// Read the prior trajectory at `path`, merge this run, and write it
/// back, exiting the process on an unmergeable or unwritable file (the
/// conventions every recording binary shares).
pub fn merge_into_file(path: &str, report_json: &str, timestamp: &str, config: Json) {
    let prior = std::fs::read_to_string(path).ok();
    let merged = match merged_trajectory(prior.as_deref(), report_json, timestamp, config) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = std::fs::write(path, merged) {
        eprintln!("could not write {path}: {e}");
        std::process::exit(1);
    }
    println!("  merged into {path} (run timestamp: {timestamp})");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Report;

    fn report_json() -> String {
        let mut r = Report::new("bench_universal", "t", &["workload", "impl", "n"]);
        r.row(&["counter".into(), "cell".into(), "1".into()]);
        r.to_json()
    }

    #[test]
    fn legacy_file_is_wrapped_then_appended() {
        // First merge over a pre-schema-2 bare report.
        let merged =
            merged_trajectory(Some(&report_json()), &report_json(), "t1", Json::Obj(vec![]))
                .unwrap();
        let doc = Json::parse(&merged).unwrap();
        assert_eq!(doc.get("schema"), Some(&Json::num(2)));
        let runs = doc.get("runs").and_then(Json::as_array).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("timestamp").and_then(Json::as_str), Some("pre-merge"));
        assert_eq!(runs[1].get("timestamp").and_then(Json::as_str), Some("t1"));

        // Second merge over the schema-2 file appends.
        let merged2 =
            merged_trajectory(Some(&merged), &report_json(), "t2", Json::Obj(vec![])).unwrap();
        let doc2 = Json::parse(&merged2).unwrap();
        let runs2 = doc2.get("runs").and_then(Json::as_array).unwrap();
        assert_eq!(runs2.len(), 3);
        assert_eq!(runs2[2].get("timestamp").and_then(Json::as_str), Some("t2"));
        assert!(runs2[2].get("report").unwrap().get("rows").is_some());
    }

    #[test]
    fn missing_prior_starts_fresh() {
        let merged = merged_trajectory(None, &report_json(), "t", Json::Obj(vec![])).unwrap();
        let doc = Json::parse(&merged).unwrap();
        assert_eq!(doc.get("runs").and_then(Json::as_array).unwrap().len(), 1);
    }

    #[test]
    fn garbage_prior_is_an_error_not_a_silent_restart() {
        let err = merged_trajectory(Some("not json at all"), &report_json(), "t", Json::Obj(vec![]))
            .unwrap_err();
        assert!(
            err.contains("refusing to overwrite"),
            "error must explain the refusal: {err}"
        );
    }
}
