//! Regression gate over the recorded benchmark trajectory: compare the
//! latest `BENCH_universal.json` run against the *median* prior run
//! with the same configuration and fail (exit 1) if any row's ns/op
//! regressed by more than the threshold (default 25%, override with
//! `BENCH_TREND_THRESHOLD_PCT` or `--threshold-pct <n>`). The median —
//! not the minimum — is the bar: on a single-core CI runner the
//! recorded medians themselves wobble (the churn rows by 2x between
//! identical builds), and gating against the best run ever seen turns
//! one lucky schedule into a permanently unreachable target. A genuine
//! regression still lifts the latest run above the *typical* prior.
//! Churn rows use their own wider bar ([`CHURN_THRESHOLD_PCT`]) — see
//! that constant for why their medians cannot carry a tight gate.
//!
//! Rows are keyed by (workload, impl, n) and the `ns/op` column is
//! located by name, so column additions don't break old trajectories.
//! Rows carrying a parseable `rss_mib` cell (the steady-state legs) are
//! gated the same way, with one extra guard: an RSS regression only
//! fires when the absolute growth also exceeds [`RSS_SLACK_MIB`], so a
//! 3 MiB reading wobbling to 4 MiB doesn't fail the build while a
//! truncation bug that re-grows the log by hundreds of MiB does.
//! Runs whose `config` object renders differently (different ops per
//! thread, sample count, or construction-hoisting marker) are never
//! compared against each other — a CI smoke run at 64 ops can't
//! invalidate a full 2000-op record, and pre-hoisting figures (which
//! billed object construction to ns/op) can't masquerade as
//! regressions.
//!
//! While a configuration group holds fewer than three runs the gate is
//! a no-op: it prints a warning and exits 0, because a single prior
//! sample is as likely to be the outlier as the new one. A *missing or
//! unparseable* trajectory file is a hard failure (exit 2, message
//! naming the file): the history is committed, so not finding it means
//! the gate is misconfigured, not that there is nothing to gate. Usage:
//!
//! ```text
//! cargo run -p waitfree-bench --bin bench_trend [--] [path] [--threshold-pct <n>]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use waitfree_bench::json::Json;

/// Minimum same-config runs (including the latest) before the gate arms.
const MIN_RUNS: usize = 3;
/// Default allowed regression, percent.
const DEFAULT_THRESHOLD_PCT: f64 = 25.0;
/// Absolute MiB an RSS reading must grow by — on top of the percentage
/// threshold — before it counts as a regression.
const RSS_SLACK_MIB: f64 = 8.0;
/// Threshold for the churn rows, percent. Churn medians are
/// *structurally* bimodal on a single-core runner: the registry
/// high-water mark is set by the first few claim races and then prices
/// every helping scan for the rest of the run, so whole-run medians
/// swing ~2x between identical builds (observed even at 27 samples).
/// The per-run step-count bound inside `bench_universal` is the
/// structural guard for this workload; the trend gate keeps only an
/// order-of-magnitude backstop.
const CHURN_THRESHOLD_PCT: f64 = 150.0;

/// The identity of one report row: `(workload, impl, n)`.
type RowKey = (String, String, String);

/// One row-level comparison: latest vs the median prior value.
#[derive(Debug, Clone, PartialEq)]
struct Check {
    key: RowKey,
    latest: f64,
    prior: f64,
}

impl Check {
    fn ratio(&self) -> f64 {
        if self.prior > 0.0 { self.latest / self.prior } else { 1.0 }
    }
}

/// Median of a non-empty sample set (mean of the middle two when even).
fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 { v[mid] } else { (v[mid - 1] + v[mid]) / 2.0 }
}

/// The gate's verdict for one trajectory document.
#[derive(Debug, PartialEq)]
enum Trend {
    /// Fewer than [`MIN_RUNS`] runs share the latest run's config.
    TooFewRuns { have: usize },
    /// Every comparable row, with the ones past the threshold split out.
    Compared {
        checks: Vec<Check>,
        regressions: Vec<Check>,
        rss_checks: Vec<Check>,
        rss_regressions: Vec<Check>,
    },
}

/// Extract `(key -> value)` from the named value column of one run's
/// report. Rows without a parseable cell are skipped (a "-" placeholder
/// is not a measurement). `Ok(None)` when the column itself is absent —
/// trajectories recorded before a column existed still parse; only the
/// identity columns (workload/impl/n) and `ns/op` are mandatory, which
/// [`evaluate`] enforces at its call sites.
fn row_values(
    run: &Json,
    value_col: &str,
) -> Result<Option<HashMap<RowKey, f64>>, String> {
    let report = run.get("report").ok_or("run without a report")?;
    let columns: Vec<&str> = report
        .get("columns")
        .and_then(Json::as_array)
        .ok_or("report without columns")?
        .iter()
        .map(|c| c.as_str().unwrap_or(""))
        .collect();
    let idx = |name: &str| {
        columns
            .iter()
            .position(|c| *c == name)
            .ok_or_else(|| format!("report has no {name:?} column"))
    };
    let (wi, ii, ni) = (idx("workload")?, idx("impl")?, idx("n")?);
    let Ok(vi) = idx(value_col) else { return Ok(None) };
    let mut out = HashMap::new();
    for row in report.get("rows").and_then(Json::as_array).unwrap_or(&[]) {
        let cells = row.as_array().ok_or("row is not an array")?;
        let cell = |i: usize| cells.get(i).and_then(Json::as_str).unwrap_or("").to_string();
        if let Ok(v) = cell(vi).parse::<f64>() {
            out.insert((cell(wi), cell(ii), cell(ni)), v);
        }
    }
    Ok(Some(out))
}

/// `(key -> ns/op)` for every row; the ns/op column is mandatory.
fn row_medians(run: &Json) -> Result<HashMap<RowKey, f64>, String> {
    row_values(run, "ns/op")?.ok_or_else(|| "report has no \"ns/op\" column".to_string())
}

/// `(key -> rss_mib)` for the rows that record one; empty for runs
/// predating the column.
fn row_rss(run: &Json) -> Result<HashMap<RowKey, f64>, String> {
    Ok(row_values(run, "rss_mib")?.unwrap_or_default())
}

/// The stable identity of a run's configuration: its rendered JSON.
fn config_key(run: &Json) -> String {
    run.get("config").cloned().unwrap_or(Json::Obj(Vec::new())).pretty()
}

/// Gate the latest run in `doc` against the median prior same-config run.
fn evaluate(doc: &Json, threshold_pct: f64) -> Result<Trend, String> {
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or("not a schema-2 trajectory (no \"runs\" array)")?;
    let latest = runs.last().ok_or("trajectory has no runs")?;
    let cfg = config_key(latest);
    let group: Vec<&Json> = runs.iter().filter(|r| config_key(r) == cfg).collect();
    if group.len() < MIN_RUNS {
        return Ok(Trend::TooFewRuns { have: group.len() });
    }

    // Every prior value per row key, across every same-config run
    // except the latest (the last group member *is* the latest run).
    let mut priors: HashMap<RowKey, Vec<f64>> = HashMap::new();
    let mut priors_rss: HashMap<RowKey, Vec<f64>> = HashMap::new();
    for run in &group[..group.len() - 1] {
        for (key, v) in row_medians(run)? {
            priors.entry(key).or_default().push(v);
        }
        for (key, v) in row_rss(run)? {
            priors_rss.entry(key).or_default().push(v);
        }
    }

    // Rows with no prior same-config measurement (new impl, new
    // workload) have nothing to regress against.
    let against = |latest: HashMap<RowKey, f64>,
                   priors: &HashMap<RowKey, Vec<f64>>| {
        let mut checks: Vec<Check> = latest
            .into_iter()
            .filter_map(|(key, latest)| {
                priors
                    .get(&key)
                    .map(|p| Check { key, latest, prior: median(p.clone()) })
            })
            .collect();
        checks.sort_by(|a, b| a.key.cmp(&b.key));
        checks
    };
    let checks = against(row_medians(latest)?, &priors);
    let rss_checks = against(row_rss(latest)?, &priors_rss);
    let limit = 1.0 + threshold_pct / 100.0;
    // Churn rows gate against their own (wider) threshold; a user-set
    // threshold above it still wins.
    let limit_for = |c: &Check| {
        if c.key.0 == "churn" {
            1.0 + threshold_pct.max(CHURN_THRESHOLD_PCT) / 100.0
        } else {
            limit
        }
    };
    let regressions: Vec<Check> =
        checks.iter().filter(|c| c.ratio() > limit_for(c)).cloned().collect();
    let rss_regressions: Vec<Check> = rss_checks
        .iter()
        .filter(|c| c.ratio() > limit && c.latest - c.prior > RSS_SLACK_MIB)
        .cloned()
        .collect();
    Ok(Trend::Compared { checks, regressions, rss_checks, rss_regressions })
}

fn threshold_pct() -> f64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threshold-pct" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        } else if let Some(v) = a.strip_prefix("--threshold-pct=").and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    std::env::var("BENCH_TREND_THRESHOLD_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_THRESHOLD_PCT)
}

fn trajectory_path() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threshold-pct" {
            let _ = args.next();
        } else if !a.starts_with("--") {
            return a;
        }
    }
    "BENCH_universal.json".to_string()
}

fn main() -> ExitCode {
    let path = trajectory_path();
    let pct = threshold_pct();

    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            // The trajectory is committed at the repo root; a missing
            // file means the gate is running somewhere it can't see the
            // history, and silently passing would disable the gate.
            eprintln!(
                "bench_trend: cannot read trajectory {path}: {e} \
                 (run from the repo root, or pass the trajectory path)"
            );
            return ExitCode::from(2);
        }
    };
    let doc = match Json::parse(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_trend: {path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    match evaluate(&doc, pct) {
        Err(e) => {
            eprintln!("bench_trend: {path}: {e}");
            ExitCode::from(2)
        }
        Ok(Trend::TooFewRuns { have }) => {
            println!(
                "bench_trend: WARNING: only {have} run(s) share the latest config \
                 (need {MIN_RUNS}); not gating"
            );
            ExitCode::SUCCESS
        }
        Ok(Trend::Compared { checks, regressions, rss_checks, rss_regressions }) => {
            println!(
                "bench_trend: latest vs median prior same-config run (threshold +{pct:.0}%)"
            );
            for c in &checks {
                let (w, i, n) = &c.key;
                println!(
                    "  {w}/{i}/n={n}: {:.1} ns/op vs median prior {:.1} ({:+.1}%)",
                    c.latest,
                    c.prior,
                    (c.ratio() - 1.0) * 100.0
                );
            }
            for c in &rss_checks {
                let (w, i, n) = &c.key;
                println!(
                    "  {w}/{i}/n={n}: {:.1} MiB rss vs median prior {:.1} ({:+.1}%)",
                    c.latest,
                    c.prior,
                    (c.ratio() - 1.0) * 100.0
                );
            }
            if checks.is_empty() && rss_checks.is_empty() {
                println!("  (no comparable rows)");
            }
            for c in &regressions {
                let (w, i, n) = &c.key;
                eprintln!(
                    "bench_trend: REGRESSION {w}/{i}/n={n}: {:.1} ns/op is {:.1}% over \
                     the median recorded {:.1}",
                    c.latest,
                    (c.ratio() - 1.0) * 100.0,
                    c.prior
                );
            }
            for c in &rss_regressions {
                let (w, i, n) = &c.key;
                eprintln!(
                    "bench_trend: RSS REGRESSION {w}/{i}/n={n}: {:.1} MiB is {:.1}% and \
                     more than {RSS_SLACK_MIB:.0} MiB over the median recorded {:.1}",
                    c.latest,
                    (c.ratio() - 1.0) * 100.0,
                    c.prior
                );
            }
            if regressions.is_empty() && rss_regressions.is_empty() {
                println!("bench_trend: ok");
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A schema-2 trajectory with one run per `(config_tag, ns)` pair;
    /// each run holds a single `workload`/pointer/n=4 row at `ns` ns/op.
    fn doc_for(workload: &str, runs: &[(&str, f64)]) -> Json {
        let runs: Vec<Json> = runs
            .iter()
            .map(|(tag, ns)| {
                Json::Obj(vec![
                    ("timestamp".into(), Json::Str("t".into())),
                    (
                        "config".into(),
                        Json::Obj(vec![("ops".into(), Json::Str((*tag).into()))]),
                    ),
                    (
                        "report".into(),
                        Json::Obj(vec![
                            (
                                "columns".into(),
                                Json::Arr(
                                    // ns/op deliberately not at a fixed
                                    // index: located by name.
                                    ["workload", "impl", "n", "extra", "ns/op"]
                                        .iter()
                                        .map(|c| Json::Str((*c).into()))
                                        .collect(),
                                ),
                            ),
                            (
                                "rows".into(),
                                Json::Arr(vec![Json::Arr(
                                    [workload, "pointer", "4", "x", &format!("{ns}")]
                                        .iter()
                                        .map(|c| Json::Str((*c).into()))
                                        .collect(),
                                )]),
                            ),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::num(2)),
            ("runs".into(), Json::Arr(runs)),
        ])
    }

    fn doc(runs: &[(&str, f64)]) -> Json {
        doc_for("counter", runs)
    }

    fn key() -> (String, String, String) {
        ("counter".into(), "pointer".into(), "4".into())
    }

    #[test]
    fn churn_rows_use_the_wide_bar() {
        // +80% on a churn row: inside the structural-noise bar.
        let d = doc_for("churn", &[("a", 1000.0), ("a", 1000.0), ("a", 1800.0)]);
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { checks, regressions, .. } => {
                assert_eq!(checks.len(), 1);
                assert!(regressions.is_empty(), "{regressions:?}");
            }
            other => panic!("expected a comparison, got {other:?}"),
        }
        // An order-of-magnitude blowup still fails even there.
        let d = doc_for("churn", &[("a", 1000.0), ("a", 1000.0), ("a", 2600.0)]);
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { regressions, .. } => assert_eq!(regressions.len(), 1),
            other => panic!("expected a comparison, got {other:?}"),
        }
        // The same +80% on a hot-path row fails at the tight bar.
        let d = doc_for("counter", &[("a", 1000.0), ("a", 1000.0), ("a", 1800.0)]);
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { regressions, .. } => assert_eq!(regressions.len(), 1),
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    #[test]
    fn under_three_runs_is_a_warning_not_a_gate() {
        for n in 1..MIN_RUNS {
            let runs: Vec<(&str, f64)> = (0..n).map(|_| ("a", 100.0)).collect();
            assert_eq!(
                evaluate(&doc(&runs), 25.0).unwrap(),
                Trend::TooFewRuns { have: n },
            );
        }
    }

    #[test]
    fn regression_past_threshold_is_flagged() {
        let d = doc(&[("a", 100.0), ("a", 110.0), ("a", 140.0)]);
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { regressions, .. } => {
                assert_eq!(regressions.len(), 1);
                assert_eq!(regressions[0].key, key());
                // The bar is the median prior (105.0), not the minimum.
                assert_eq!(regressions[0].prior, 105.0);
            }
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    #[test]
    fn one_lucky_prior_does_not_set_the_bar() {
        // Priors 100 and 300: a min-based gate would demand ≤125
        // forever after the lucky 100; the median bar (200) accepts a
        // typical 240 and still catches a real doubling.
        let d = doc(&[("a", 100.0), ("a", 300.0), ("a", 240.0)]);
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { checks, regressions, .. } => {
                assert_eq!(checks[0].prior, 200.0);
                assert!(regressions.is_empty());
            }
            other => panic!("expected a comparison, got {other:?}"),
        }
        let d = doc(&[("a", 100.0), ("a", 300.0), ("a", 410.0)]);
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { regressions, .. } => assert_eq!(regressions.len(), 1),
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    #[test]
    fn within_threshold_passes_including_improvements() {
        for latest in [60.0, 100.0, 124.9] {
            let d = doc(&[("a", 100.0), ("a", 180.0), ("a", latest)]);
            match evaluate(&d, 25.0).unwrap() {
                Trend::Compared { checks, regressions, .. } => {
                    assert_eq!(checks.len(), 1);
                    assert!(regressions.is_empty(), "latest={latest}");
                }
                other => panic!("expected a comparison, got {other:?}"),
            }
        }
    }

    #[test]
    fn different_configs_never_compare() {
        // Two slow full runs on record; the latest is a fast smoke
        // config — its group has one member, so no gate.
        let d = doc(&[("full", 100.0), ("full", 100.0), ("smoke", 900.0)]);
        assert_eq!(evaluate(&d, 25.0).unwrap(), Trend::TooFewRuns { have: 1 });
    }

    #[test]
    fn rows_without_priors_are_skipped() {
        // The latest run also carries a row key the priors lack: only
        // the shared key is compared. (Build by hand: two runs with the
        // shared row, latest with an extra impl row.)
        let mut d = doc(&[("a", 100.0), ("a", 100.0), ("a", 101.0)]);
        if let Json::Obj(members) = &mut d {
            let runs = members.iter_mut().find(|(k, _)| k == "runs").unwrap();
            if let Json::Arr(runs) = &mut runs.1 {
                let last = runs.last_mut().unwrap();
                let report = match last {
                    Json::Obj(m) => &mut m.iter_mut().find(|(k, _)| k == "report").unwrap().1,
                    _ => unreachable!(),
                };
                if let Json::Obj(m) = report {
                    let rows = &mut m.iter_mut().find(|(k, _)| k == "rows").unwrap().1;
                    if let Json::Arr(rows) = rows {
                        rows.push(Json::Arr(
                            ["counter", "batched", "4", "x", "55.0"]
                                .iter()
                                .map(|c| Json::Str((*c).into()))
                                .collect(),
                        ));
                    }
                }
            }
        }
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { checks, regressions, .. } => {
                assert_eq!(checks.len(), 1, "only the shared key compares");
                assert!(regressions.is_empty());
            }
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    #[test]
    fn unparseable_medians_are_not_measurements() {
        // A "-" ns/op cell (the cell baseline's counter columns use the
        // same convention) is skipped rather than treated as zero.
        let mut d = doc(&[("a", 100.0), ("a", 100.0), ("a", 100.0)]);
        if let Json::Obj(members) = &mut d {
            let runs = &mut members.iter_mut().find(|(k, _)| k == "runs").unwrap().1;
            if let Json::Arr(runs) = runs {
                for run in runs.iter_mut().take(2) {
                    if let Json::Obj(m) = run {
                        let report = &mut m.iter_mut().find(|(k, _)| k == "report").unwrap().1;
                        if let Json::Obj(m) = report {
                            let rows = &mut m.iter_mut().find(|(k, _)| k == "rows").unwrap().1;
                            *rows = Json::Arr(vec![Json::Arr(
                                ["counter", "pointer", "4", "x", "-"]
                                    .iter()
                                    .map(|c| Json::Str((*c).into()))
                                    .collect(),
                            )]);
                        }
                    }
                }
            }
        }
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { checks, .. } => assert!(checks.is_empty()),
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    /// A trajectory whose runs carry an `rss_mib` column: one steady
    /// row at `(ns, rss)` per run.
    fn doc_rss(runs: &[(f64, f64)]) -> Json {
        let runs: Vec<Json> = runs
            .iter()
            .map(|(ns, rss)| {
                Json::Obj(vec![
                    ("timestamp".into(), Json::Str("t".into())),
                    ("config".into(), Json::Obj(vec![])),
                    (
                        "report".into(),
                        Json::Obj(vec![
                            (
                                "columns".into(),
                                Json::Arr(
                                    ["workload", "impl", "n", "ns/op", "rss_mib"]
                                        .iter()
                                        .map(|c| Json::Str((*c).into()))
                                        .collect(),
                                ),
                            ),
                            (
                                "rows".into(),
                                Json::Arr(vec![Json::Arr(
                                    [
                                        "steady",
                                        "checkpointed",
                                        "4",
                                        &format!("{ns}"),
                                        &format!("{rss}"),
                                    ]
                                    .iter()
                                    .map(|c| Json::Str((*c).into()))
                                    .collect(),
                                )]),
                            ),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::num(2)),
            ("runs".into(), Json::Arr(runs)),
        ])
    }

    #[test]
    fn rss_regression_needs_both_ratio_and_absolute_growth() {
        // +50% but only 1.5 MiB absolute: inside the slack, no gate.
        let d = doc_rss(&[(100.0, 3.0), (100.0, 3.0), (100.0, 4.5)]);
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { rss_checks, rss_regressions, .. } => {
                assert_eq!(rss_checks.len(), 1);
                assert!(rss_regressions.is_empty(), "{rss_regressions:?}");
            }
            other => panic!("expected a comparison, got {other:?}"),
        }
        // +50% and 150 MiB absolute: a real truncation failure, gated.
        let d = doc_rss(&[(100.0, 300.0), (100.0, 300.0), (100.0, 450.0)]);
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { rss_regressions, .. } => {
                assert_eq!(rss_regressions.len(), 1);
                assert_eq!(
                    rss_regressions[0].key,
                    ("steady".into(), "checkpointed".into(), "4".into())
                );
            }
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    #[test]
    fn runs_without_an_rss_column_still_gate_ns_only() {
        // The pre-column trajectory shape must keep parsing and gating
        // exactly as before the column existed.
        let d = doc(&[("a", 100.0), ("a", 100.0), ("a", 300.0)]);
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { regressions, rss_checks, rss_regressions, .. } => {
                assert_eq!(regressions.len(), 1);
                assert!(rss_checks.is_empty());
                assert!(rss_regressions.is_empty());
            }
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    #[test]
    fn malformed_documents_are_errors() {
        assert!(evaluate(&Json::Obj(vec![]), 25.0).is_err());
        let no_runs = Json::Obj(vec![("runs".into(), Json::Arr(vec![]))]);
        assert!(evaluate(&no_runs, 25.0).is_err());
    }
}
