//! Regression gate over the recorded benchmark trajectory: compare the
//! latest `BENCH_universal.json` run against the best prior run *with
//! the same configuration* and fail (exit 1) if any row's median ns/op
//! regressed by more than the threshold (default 25%, override with
//! `BENCH_TREND_THRESHOLD_PCT` or `--threshold-pct <n>`).
//!
//! Rows are keyed by (workload, impl, n) and the `ns/op` column is
//! located by name, so column additions don't break old trajectories.
//! Runs whose `config` object renders differently (different ops per
//! thread, sample count, or construction-hoisting marker) are never
//! compared against each other — a CI smoke run at 64 ops can't
//! invalidate a full 2000-op record, and pre-hoisting figures (which
//! billed object construction to ns/op) can't masquerade as
//! regressions.
//!
//! While a configuration group holds fewer than three runs the gate is
//! a no-op: it prints a warning and exits 0, because a single prior
//! sample is as likely to be the outlier as the new one. A *missing or
//! unparseable* trajectory file is a hard failure (exit 2, message
//! naming the file): the history is committed, so not finding it means
//! the gate is misconfigured, not that there is nothing to gate. Usage:
//!
//! ```text
//! cargo run -p waitfree-bench --bin bench_trend [--] [path] [--threshold-pct <n>]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use waitfree_bench::json::Json;

/// Minimum same-config runs (including the latest) before the gate arms.
const MIN_RUNS: usize = 3;
/// Default allowed regression, percent.
const DEFAULT_THRESHOLD_PCT: f64 = 25.0;

/// One row-level comparison: latest vs the best (minimum) prior median.
#[derive(Debug, Clone, PartialEq)]
struct Check {
    key: (String, String, String),
    latest: f64,
    best_prior: f64,
}

impl Check {
    fn ratio(&self) -> f64 {
        if self.best_prior > 0.0 { self.latest / self.best_prior } else { 1.0 }
    }
}

/// The gate's verdict for one trajectory document.
#[derive(Debug, PartialEq)]
enum Trend {
    /// Fewer than [`MIN_RUNS`] runs share the latest run's config.
    TooFewRuns { have: usize },
    /// Every comparable row, with the ones past the threshold split out.
    Compared { checks: Vec<Check>, regressions: Vec<Check> },
}

/// Extract `(key -> ns/op)` for every row of one run's report. Rows
/// without a parseable ns/op cell are skipped (a "-" placeholder row is
/// not a measurement).
fn row_medians(run: &Json) -> Result<HashMap<(String, String, String), f64>, String> {
    let report = run.get("report").ok_or("run without a report")?;
    let columns: Vec<&str> = report
        .get("columns")
        .and_then(Json::as_array)
        .ok_or("report without columns")?
        .iter()
        .map(|c| c.as_str().unwrap_or(""))
        .collect();
    let idx = |name: &str| {
        columns
            .iter()
            .position(|c| *c == name)
            .ok_or_else(|| format!("report has no {name:?} column"))
    };
    let (wi, ii, ni, vi) = (idx("workload")?, idx("impl")?, idx("n")?, idx("ns/op")?);
    let mut out = HashMap::new();
    for row in report.get("rows").and_then(Json::as_array).unwrap_or(&[]) {
        let cells = row.as_array().ok_or("row is not an array")?;
        let cell = |i: usize| cells.get(i).and_then(Json::as_str).unwrap_or("").to_string();
        if let Ok(v) = cell(vi).parse::<f64>() {
            out.insert((cell(wi), cell(ii), cell(ni)), v);
        }
    }
    Ok(out)
}

/// The stable identity of a run's configuration: its rendered JSON.
fn config_key(run: &Json) -> String {
    run.get("config").cloned().unwrap_or(Json::Obj(Vec::new())).pretty()
}

/// Gate the latest run in `doc` against the best prior same-config run.
fn evaluate(doc: &Json, threshold_pct: f64) -> Result<Trend, String> {
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or("not a schema-2 trajectory (no \"runs\" array)")?;
    let latest = runs.last().ok_or("trajectory has no runs")?;
    let cfg = config_key(latest);
    let group: Vec<&Json> = runs.iter().filter(|r| config_key(r) == cfg).collect();
    if group.len() < MIN_RUNS {
        return Ok(Trend::TooFewRuns { have: group.len() });
    }

    // Best prior median per row key, across every same-config run
    // except the latest (the last group member *is* the latest run).
    let mut best: HashMap<(String, String, String), f64> = HashMap::new();
    for run in &group[..group.len() - 1] {
        for (key, v) in row_medians(run)? {
            best.entry(key).and_modify(|b| *b = b.min(v)).or_insert(v);
        }
    }

    let mut checks: Vec<Check> = row_medians(latest)?
        .into_iter()
        .filter_map(|(key, latest)| {
            // Rows with no prior same-config measurement (new impl, new
            // workload) have nothing to regress against.
            best.get(&key).map(|b| Check { key, latest, best_prior: *b })
        })
        .collect();
    checks.sort_by(|a, b| a.key.cmp(&b.key));
    let limit = 1.0 + threshold_pct / 100.0;
    let regressions: Vec<Check> = checks.iter().filter(|c| c.ratio() > limit).cloned().collect();
    Ok(Trend::Compared { checks, regressions })
}

fn threshold_pct() -> f64 {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threshold-pct" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        } else if let Some(v) = a.strip_prefix("--threshold-pct=").and_then(|v| v.parse().ok()) {
            return v;
        }
    }
    std::env::var("BENCH_TREND_THRESHOLD_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_THRESHOLD_PCT)
}

fn trajectory_path() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threshold-pct" {
            let _ = args.next();
        } else if !a.starts_with("--") {
            return a;
        }
    }
    "BENCH_universal.json".to_string()
}

fn main() -> ExitCode {
    let path = trajectory_path();
    let pct = threshold_pct();

    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            // The trajectory is committed at the repo root; a missing
            // file means the gate is running somewhere it can't see the
            // history, and silently passing would disable the gate.
            eprintln!(
                "bench_trend: cannot read trajectory {path}: {e} \
                 (run from the repo root, or pass the trajectory path)"
            );
            return ExitCode::from(2);
        }
    };
    let doc = match Json::parse(&src) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench_trend: {path} is not valid JSON: {e}");
            return ExitCode::from(2);
        }
    };
    match evaluate(&doc, pct) {
        Err(e) => {
            eprintln!("bench_trend: {path}: {e}");
            ExitCode::from(2)
        }
        Ok(Trend::TooFewRuns { have }) => {
            println!(
                "bench_trend: WARNING: only {have} run(s) share the latest config \
                 (need {MIN_RUNS}); not gating"
            );
            ExitCode::SUCCESS
        }
        Ok(Trend::Compared { checks, regressions }) => {
            println!(
                "bench_trend: latest vs best prior same-config median (threshold +{pct:.0}%)"
            );
            for c in &checks {
                let (w, i, n) = &c.key;
                println!(
                    "  {w}/{i}/n={n}: {:.1} ns/op vs best {:.1} ({:+.1}%)",
                    c.latest,
                    c.best_prior,
                    (c.ratio() - 1.0) * 100.0
                );
            }
            if checks.is_empty() {
                println!("  (no comparable rows)");
            }
            if regressions.is_empty() {
                println!("bench_trend: ok");
                ExitCode::SUCCESS
            } else {
                for c in &regressions {
                    let (w, i, n) = &c.key;
                    eprintln!(
                        "bench_trend: REGRESSION {w}/{i}/n={n}: {:.1} ns/op is {:.1}% over \
                         the best recorded {:.1}",
                        c.latest,
                        (c.ratio() - 1.0) * 100.0,
                        c.best_prior
                    );
                }
                ExitCode::FAILURE
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A schema-2 trajectory with one run per `(config_tag, ns)` pair;
    /// each run holds a single counter/pointer/n=4 row at `ns` ns/op.
    fn doc(runs: &[(&str, f64)]) -> Json {
        let runs: Vec<Json> = runs
            .iter()
            .map(|(tag, ns)| {
                Json::Obj(vec![
                    ("timestamp".into(), Json::Str("t".into())),
                    (
                        "config".into(),
                        Json::Obj(vec![("ops".into(), Json::Str((*tag).into()))]),
                    ),
                    (
                        "report".into(),
                        Json::Obj(vec![
                            (
                                "columns".into(),
                                Json::Arr(
                                    // ns/op deliberately not at a fixed
                                    // index: located by name.
                                    ["workload", "impl", "n", "extra", "ns/op"]
                                        .iter()
                                        .map(|c| Json::Str((*c).into()))
                                        .collect(),
                                ),
                            ),
                            (
                                "rows".into(),
                                Json::Arr(vec![Json::Arr(
                                    ["counter", "pointer", "4", "x", &format!("{ns}")]
                                        .iter()
                                        .map(|c| Json::Str((*c).into()))
                                        .collect(),
                                )]),
                            ),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::num(2)),
            ("runs".into(), Json::Arr(runs)),
        ])
    }

    fn key() -> (String, String, String) {
        ("counter".into(), "pointer".into(), "4".into())
    }

    #[test]
    fn under_three_runs_is_a_warning_not_a_gate() {
        for n in 1..MIN_RUNS {
            let runs: Vec<(&str, f64)> = (0..n).map(|_| ("a", 100.0)).collect();
            assert_eq!(
                evaluate(&doc(&runs), 25.0).unwrap(),
                Trend::TooFewRuns { have: n },
            );
        }
    }

    #[test]
    fn regression_past_threshold_is_flagged() {
        let d = doc(&[("a", 100.0), ("a", 110.0), ("a", 126.0)]);
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { regressions, .. } => {
                assert_eq!(regressions.len(), 1);
                assert_eq!(regressions[0].key, key());
                // Best prior is the min (100.0), not the previous run.
                assert_eq!(regressions[0].best_prior, 100.0);
            }
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    #[test]
    fn within_threshold_passes_including_improvements() {
        for latest in [60.0, 100.0, 124.9] {
            let d = doc(&[("a", 100.0), ("a", 180.0), ("a", latest)]);
            match evaluate(&d, 25.0).unwrap() {
                Trend::Compared { checks, regressions } => {
                    assert_eq!(checks.len(), 1);
                    assert!(regressions.is_empty(), "latest={latest}");
                }
                other => panic!("expected a comparison, got {other:?}"),
            }
        }
    }

    #[test]
    fn different_configs_never_compare() {
        // Two slow full runs on record; the latest is a fast smoke
        // config — its group has one member, so no gate.
        let d = doc(&[("full", 100.0), ("full", 100.0), ("smoke", 900.0)]);
        assert_eq!(evaluate(&d, 25.0).unwrap(), Trend::TooFewRuns { have: 1 });
    }

    #[test]
    fn rows_without_priors_are_skipped() {
        // The latest run also carries a row key the priors lack: only
        // the shared key is compared. (Build by hand: two runs with the
        // shared row, latest with an extra impl row.)
        let mut d = doc(&[("a", 100.0), ("a", 100.0), ("a", 101.0)]);
        if let Json::Obj(members) = &mut d {
            let runs = members.iter_mut().find(|(k, _)| k == "runs").unwrap();
            if let Json::Arr(runs) = &mut runs.1 {
                let last = runs.last_mut().unwrap();
                let report = match last {
                    Json::Obj(m) => &mut m.iter_mut().find(|(k, _)| k == "report").unwrap().1,
                    _ => unreachable!(),
                };
                if let Json::Obj(m) = report {
                    let rows = &mut m.iter_mut().find(|(k, _)| k == "rows").unwrap().1;
                    if let Json::Arr(rows) = rows {
                        rows.push(Json::Arr(
                            ["counter", "batched", "4", "x", "55.0"]
                                .iter()
                                .map(|c| Json::Str((*c).into()))
                                .collect(),
                        ));
                    }
                }
            }
        }
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { checks, regressions } => {
                assert_eq!(checks.len(), 1, "only the shared key compares");
                assert!(regressions.is_empty());
            }
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    #[test]
    fn unparseable_medians_are_not_measurements() {
        // A "-" ns/op cell (the cell baseline's counter columns use the
        // same convention) is skipped rather than treated as zero.
        let mut d = doc(&[("a", 100.0), ("a", 100.0), ("a", 100.0)]);
        if let Json::Obj(members) = &mut d {
            let runs = &mut members.iter_mut().find(|(k, _)| k == "runs").unwrap().1;
            if let Json::Arr(runs) = runs {
                for run in runs.iter_mut().take(2) {
                    if let Json::Obj(m) = run {
                        let report = &mut m.iter_mut().find(|(k, _)| k == "report").unwrap().1;
                        if let Json::Obj(m) = report {
                            let rows = &mut m.iter_mut().find(|(k, _)| k == "rows").unwrap().1;
                            *rows = Json::Arr(vec![Json::Arr(
                                ["counter", "pointer", "4", "x", "-"]
                                    .iter()
                                    .map(|c| Json::Str((*c).into()))
                                    .collect(),
                            )]);
                        }
                    }
                }
            }
        }
        match evaluate(&d, 25.0).unwrap() {
            Trend::Compared { checks, .. } => assert!(checks.is_empty()),
            other => panic!("expected a comparison, got {other:?}"),
        }
    }

    #[test]
    fn malformed_documents_are_errors() {
        assert!(evaluate(&Json::Obj(vec![]), 25.0).is_err());
        let no_runs = Json::Obj(vec![("runs".into(), Json::Arr(vec![]))]);
        assert!(evaluate(&no_runs, 25.0).is_err());
    }
}
