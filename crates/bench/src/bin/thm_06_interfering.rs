//! E4 — Theorem 6: interfering read-modify-write families cannot solve
//! three-process consensus.
//!
//! Mechanizes both halves of the theorem's hypothesis and conclusion:
//!
//! 1. **Interference analysis** — classify every pair of the classical
//!    family {read, test-and-set, swap, fetch-and-add}: each pair either
//!    commutes or overwrites, the premise of the theorem. Compare-and-swap
//!    pairs *interfere*, which is how CAS escapes the theorem (and indeed
//!    solves n-process consensus, Theorem 7).
//! 2. **Bounded synthesis at n = 3** — enumerate all symmetric protocols
//!    (depth 2 over test-and-set; depth 1 over the full classical
//!    alphabet) and verify none solves 3-process consensus, while the
//!    same machinery rediscovers Theorem 4's protocol at n = 2.

use waitfree_bench::Report;
use waitfree_core::interfering::{analyze_family, classical_family, standard_domain, PairRelation};
use waitfree_explorer::check::CheckSettings;
use waitfree_explorer::synthesis::{search_symmetric, SymbolicOp, SymbolicVal, SynthSpace};
use waitfree_model::Val;
use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};

fn decisions3() -> Vec<SymbolicVal> {
    vec![
        SymbolicVal::MyId,
        SymbolicVal::OtherOfTwo,
        SymbolicVal::Const(0),
        SymbolicVal::Const(1),
        SymbolicVal::Const(2),
    ]
}

/// Test-and-set only: binary response (saw 0 / saw nonzero).
fn tas_space() -> SynthSpace<RmwRegister> {
    SynthSpace {
        ops: vec![SymbolicOp {
            name: "test-and-set".into(),
            make: Box::new(|_| RmwOp(RmwFn::TestAndSet)),
            slots: 2,
            classify: Box::new(|_, r: &Val| usize::from(*r != 0)),
        }],
        decisions: decisions3(),
    }
}

/// The full classical alphabet, responses coarsened to {0, 1, other}.
fn classical_space() -> SynthSpace<RmwRegister> {
    let classify = |_: waitfree_model::Pid, r: &Val| -> usize {
        match r {
            0 => 0,
            1 => 1,
            _ => 2,
        }
    };
    SynthSpace {
        ops: vec![
            SymbolicOp {
                name: "test-and-set".into(),
                make: Box::new(|_| RmwOp(RmwFn::TestAndSet)),
                slots: 3,
                classify: Box::new(classify),
            },
            SymbolicOp {
                name: "swap(my-id+2)".into(),
                make: Box::new(|p| RmwOp(RmwFn::Swap(p.as_val() + 2))),
                slots: 3,
                classify: Box::new(classify),
            },
            SymbolicOp {
                name: "fetch-and-add(1)".into(),
                make: Box::new(|_| RmwOp(RmwFn::FetchAndAdd(1))),
                slots: 3,
                classify: Box::new(classify),
            },
            SymbolicOp {
                name: "read".into(),
                make: Box::new(|_| RmwOp(RmwFn::Identity)),
                slots: 3,
                classify: Box::new(classify),
            },
        ],
        decisions: decisions3(),
    }
}

fn main() {
    let mut report = Report::new(
        "thm_06_interfering",
        "Theorem 6: interfering RMW families cap at consensus number 2",
        &["analysis", "result"],
    );

    // Part 1: interference classification.
    let domain = standard_domain();
    let family = classical_family();
    let analysis = analyze_family(&family, &domain);
    report.row(&[
        "classical family {read, TAS, swap, FAA} interfering".into(),
        analysis.interfering.to_string(),
    ]);
    if !analysis.interfering {
        report.fail("classical family must be interfering");
    }
    let interfering_pairs = analysis
        .pairs
        .iter()
        .filter(|(_, _, r)| *r == PairRelation::Interferes)
        .count();
    report.row(&["non-benign pairs in classical family".into(), interfering_pairs.to_string()]);

    let mut with_cas = classical_family();
    with_cas.push(RmwFn::CompareAndSwap(0, 1));
    with_cas.push(RmwFn::CompareAndSwap(1, 2));
    let cas_analysis = analyze_family(&with_cas, &domain);
    report.row(&[
        "family + compare-and-swap interfering".into(),
        cas_analysis.interfering.to_string(),
    ]);
    if cas_analysis.interfering {
        report.fail("CAS must break the interference condition");
    }

    // Part 2: bounded synthesis at n = 3.
    let settings = CheckSettings::default();
    for (label, space, depth) in [
        ("TAS alphabet", tas_space(), 1),
        ("TAS alphabet", tas_space(), 2),
        ("classical alphabet", classical_space(), 1),
    ] {
        let out = search_symmetric(&space, &RmwRegister::new(0), 3, depth, &settings);
        report.row(&[
            format!("symmetric synthesis n=3 over {label}, depth {depth}: trees/survivors"),
            format!("{} / {}", out.tree_count, out.survivors.len()),
        ]);
        if !out.is_impossible() {
            report.fail(format!("{label} depth {depth}: unexpected survivor {:?}", out.survivors));
        }
    }

    // Positive control: the TAS alphabet must solve n = 2 at depth 1.
    let control = search_symmetric(&tas_space(), &RmwRegister::new(0), 2, 1, &settings);
    report.row(&[
        "control: TAS alphabet at n=2 (depth 1) survivors".into(),
        control.survivors.len().to_string(),
    ]);
    if control.is_impossible() {
        report.fail("control search must rediscover Theorem 4 at n=2");
    }

    report.note("interference checked over a sampled i64 domain; pairs are algebraically uniform");
    report.note("disproves the Gottlieb et al. conjecture that fetch-and-add is universal");
    report.finish();
}
