//! E10 — Theorem 16 / Corollaries 17–18: memory-to-memory `swap` solves
//! n-process consensus; the single token `1` moves from `r` into the
//! first swapper's slot and can never leave.

use waitfree_bench::{verdict, Report};
use waitfree_core::protocols::mem_swap::SwapConsensusN;
use waitfree_explorer::check::{check_consensus, CheckSettings};
use waitfree_explorer::random::{run_random, RandomSettings};
use waitfree_explorer::valency;

fn main() {
    let mut report = Report::new(
        "thm_16_swap",
        "Theorem 16: memory-to-memory swap solves n-process consensus",
        &["n", "method", "result"],
    );

    for n in [2, 3] {
        let (p, o) = SwapConsensusN::setup(n);
        let check = check_consensus(&p, &o, n, &CheckSettings::default());
        if !check.is_ok() {
            report.fail(format!("n={n}: {:?}", check.violation));
        }
        report.row(&[n.to_string(), "exhaustive (with crashes)".into(), verdict(&check)]);
    }

    for n in [6, 10, 16] {
        let (p, o) = SwapConsensusN::setup(n);
        let settings = RandomSettings { runs: 1500, ..RandomSettings::default() };
        let r = run_random(&p, &o, n, &settings);
        if !r.is_ok() {
            report.fail(format!("n={n}: {:?}", r.violation));
        }
        report.row(&[
            n.to_string(),
            format!("randomized ({} runs)", settings.runs),
            if r.is_ok() { "ok".into() } else { "violated".into() },
        ]);
    }

    // The decisive-step structure: critical configurations precede the
    // first swap (the swap is the decision step).
    let (p, o) = SwapConsensusN::setup(2);
    let val = valency::analyze(&p, &o, 2, 1_000_000);
    report.row(&[
        "2".into(),
        "valency analysis".into(),
        format!(
            "{} bivalent / {} univalent / {} critical",
            val.bivalent, val.univalent, val.critical.len()
        ),
    ]);

    report.note("footnote 3: memory-to-memory swap exchanges two shared cells —");
    report.note("not the read-modify-write swap of §3.2, which is interfering (level 2)");
    report.finish();
}
