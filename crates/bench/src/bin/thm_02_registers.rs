//! E2 — Theorem 2: no wait-free two-process consensus from atomic
//! read/write registers.
//!
//! Two mechanical certificates:
//!
//! 1. **Bounded synthesis**: enumerate *every* deterministic protocol pair
//!    up to depth 3 over one binary register (and depth 2 over two
//!    registers) and model-check each — none satisfies agreement +
//!    validity + wait-freedom.
//! 2. **Positive control**: the identical search over a test-and-set
//!    alphabet *does* find Theorem 4's protocol, so the search is not
//!    vacuously rejecting everything.

use waitfree_bench::Report;
use waitfree_explorer::check::CheckSettings;
use waitfree_explorer::synthesis::{
    search_pairs, SymbolicOp, SymbolicVal, SynthSpace,
};
use waitfree_model::Val;
use waitfree_objects::register::{BankOp, RegResp, RegisterBank};
use waitfree_objects::rmw::{RmwFn, RmwOp, RmwRegister};

/// Read/write alphabet over `regs` binary registers.
fn reg_space(regs: usize) -> SynthSpace<RegisterBank> {
    let mut ops = Vec::new();
    for r in 0..regs {
        ops.push(SymbolicOp {
            name: format!("read r{r}"),
            make: Box::new(move |_| BankOp::Read(r)),
            slots: 2,
            classify: Box::new(|_, resp: &RegResp| match resp {
                RegResp::Read(v) => usize::from(*v != 0),
                RegResp::Written => unreachable!(),
            }),
        });
        for v in 0..2 {
            ops.push(SymbolicOp {
                name: format!("write r{r} := {v}"),
                make: Box::new(move |_| BankOp::Write(r, v)),
                slots: 1,
                classify: Box::new(|_, _| 0),
            });
        }
    }
    SynthSpace {
        ops,
        decisions: vec![SymbolicVal::Const(0), SymbolicVal::Const(1)],
    }
}

fn tas_space() -> SynthSpace<RmwRegister> {
    SynthSpace {
        ops: vec![SymbolicOp {
            name: "test-and-set".into(),
            make: Box::new(|_| RmwOp(RmwFn::TestAndSet)),
            slots: 2,
            classify: Box::new(|_, r: &Val| usize::from(*r != 0)),
        }],
        decisions: vec![SymbolicVal::Const(0), SymbolicVal::Const(1)],
    }
}

fn main() {
    let mut report = Report::new(
        "thm_02_registers",
        "Theorem 2: registers cannot solve 2-process consensus",
        &["alphabet", "depth", "trees", "pairs", "survivors", "verdict"],
    );
    let settings = CheckSettings::default();

    for (label, regs, depth) in [("1 binary register", 1, 2), ("1 binary register", 1, 3), ("2 binary registers", 2, 2)] {
        let space = reg_space(regs);
        let bank = RegisterBank::new(regs, 0);
        let out = search_pairs(&space, &bank, depth, &settings);
        report.row(&[
            label.to_string(),
            depth.to_string(),
            out.tree_count.to_string(),
            out.candidates.to_string(),
            out.survivors.len().to_string(),
            if out.is_impossible() { "impossible (bounded)".into() } else { "SOLVED?!".into() },
        ]);
        if !out.is_impossible() {
            report.fail(format!("{label} depth {depth}: survivors {:?}", out.survivors));
        }
    }

    // Positive control: same machinery, test-and-set alphabet.
    let out = search_pairs(&tas_space(), &RmwRegister::new(0), 1, &settings);
    report.row(&[
        "test-and-set (control)".into(),
        "1".into(),
        out.tree_count.to_string(),
        out.candidates.to_string(),
        out.survivors.len().to_string(),
        if out.is_impossible() { "MISSED?!".into() } else { "solves (Theorem 4)".into() },
    ]);
    if out.is_impossible() {
        report.fail("the search failed to find Theorem 4's protocol — search is broken");
    }

    report.note("bounded certificate: quantifies over all protocols within the stated depth");
    report.note("the unbounded claim is Theorem 2's valency argument; see also the valency stats in thm_04_rmw");
    report.finish();
}
