//! Sharded KV store (`waitfree-store`) throughput: the same key space
//! and op mix at 1, 2, 4 and 8 shards, so the recorded trajectory
//! shows what partitioning the universal log buys (and what the
//! cross-shard protocols — multi-key atomics, marker snapshots — cost
//! as the shard count grows).
//!
//! Four workloads, each `threads` OS threads over a fixed key universe:
//!
//! * `zipf` — 50/50 get/put with Zipf(θ)-skewed keys: the contended
//!   head of the distribution lands on one shard, the tail spreads —
//!   the standard KV sharding story.
//! * `read_heavy` — 90/10 get/put, uniform keys, no multi-key traffic
//!   (no multi-op locks to help past, so this is the wait-free fast
//!   path).
//! * `write_heavy` — 10/90 get/put, uniform keys (every put is one
//!   decide on one shard log).
//! * `snap_load` — 90% put, 8% two-key `multi_put`, 2% `snapshot()`:
//!   consistent global cuts and cross-shard atomics riding on ordinary
//!   write traffic.
//!
//! Rows are keyed `(workload, impl="sharded", n=shards)` — the shard
//! count takes the `n` column so `bench_trend` gates each shard count
//! separately — with the OS-thread count and ops/thread alongside, and
//! the worst per-op threading-step count observed on any shard log.
//! Construction (all shard logs) is hoisted out of the timed region
//! via `timing::measure_with_setup`, exactly like `bench_universal`.
//!
//! Reads run through **both paths**, recorded as two config groups:
//!
//! * the original `"store": "sharded"` group keeps its reads on the
//!   decided path (`get_decided`, byte-for-byte the pre-PR-9 `get`:
//!   one consensus decide per read), so the recorded trajectory
//!   continues unbroken across the semantics change;
//! * a `"reads": "local"` group (zipf, read_heavy, snap_load) runs the
//!   same workloads with the log-free replica path (`get`) — the
//!   `bench_trend` gate groups by config, so it never compares a
//!   local-read row against a decided-read baseline.
//!
//! Merges each run into `BENCH_universal.json` under those config
//! groups (schema 2; see `waitfree_bench::trajectory`), so store
//! figures and universal-object figures never gate each other. Env
//! knobs for the CI smoke job: `BENCH_STORE_OPS` (ops per thread,
//! default 2000), `BENCH_STORE_SAMPLES` (median-of samples, default 9),
//! `BENCH_STORE_THREADS` (default 4).

use waitfree_bench::json::Json;
use waitfree_bench::timing::measure_with_setup;
use waitfree_bench::trajectory::{cli_timestamp, merge_into_file};
use waitfree_bench::Report;
use waitfree_sched::thread;
use waitfree_store::{ShardedStore, StoreConfig};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Distinct keys in play; small enough that snapshot assembly stays
/// cheap, large enough that uniform traffic spreads over every shard.
const UNIVERSE: u64 = 256;
/// Zipf exponent for the skewed workload (θ ≈ 1 is the classic
/// YCSB-style hotspot shape).
const ZIPF_THETA: f64 = 1.1;

/// `splitmix64` — the per-thread deterministic op/key stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Inverse-CDF Zipf sampler over `0..UNIVERSE`: a cumulative weight
/// table built once, binary-searched per draw. Hand-rolled — the
/// workspace carries no external dependencies.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, theta: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        for w in &mut cdf {
            *w /= acc;
        }
        Zipf { cdf }
    }

    fn draw(&self, rng: &mut Rng) -> u64 {
        let u = rng.unit();
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// One measured cell: `threads` OS threads each run `ops` operations of
/// `workload` against a fresh `shards`-shard store (constructed in the
/// untimed setup). `local_reads` selects the read path: the log-free
/// replica fast path (`get`) or the decided-read witness
/// (`get_decided`, one consensus decide per read — the pre-PR-9
/// behaviour). Returns (median ns/op, worst threading steps).
fn run_cell(
    workload: &str,
    local_reads: bool,
    shards: usize,
    threads: usize,
    ops: usize,
    samples: usize,
) -> (f64, usize) {
    let mut max_steps = 0;
    let median = measure_with_setup(
        samples,
        || {
            ShardedStore::<u64, i64>::new(&StoreConfig {
                shards,
                ..StoreConfig::default()
            })
        },
        |store| {
            let joins: Vec<_> = (0..threads)
                .map(|t| {
                    let store = store.clone();
                    let workload = workload.to_string();
                    thread::spawn(move || {
                        let mut h = store.handle();
                        let mut rng = Rng(0x5eed_0000_0000_0000 | t as u64);
                        let zipf = Zipf::new(UNIVERSE, ZIPF_THETA);
                        let read =
                            |h: &mut waitfree_store::StoreHandle<u64, i64>, k: &u64| {
                                if local_reads {
                                    h.get(k)
                                } else {
                                    h.get_decided(k)
                                }
                            };
                        for i in 0..ops {
                            match workload.as_str() {
                                "zipf" => {
                                    let k = zipf.draw(&mut rng);
                                    if rng.below(100) < 50 {
                                        let _ = read(&mut h, &k);
                                    } else {
                                        let _ = h.put(k, i as i64);
                                    }
                                }
                                "read_heavy" | "write_heavy" => {
                                    let reads = if workload == "read_heavy" { 90 } else { 10 };
                                    let k = rng.below(UNIVERSE);
                                    if rng.below(100) < reads {
                                        let _ = read(&mut h, &k);
                                    } else {
                                        let _ = h.put(k, i as i64);
                                    }
                                }
                                "snap_load" => {
                                    let roll = rng.below(100);
                                    if roll < 2 {
                                        let _ = h.snapshot();
                                    } else if roll < 10 {
                                        let a = rng.below(UNIVERSE);
                                        let b = rng.below(UNIVERSE);
                                        h.multi_put([
                                            (a, Some(i as i64)),
                                            (b, Some(-(i as i64))),
                                        ]);
                                    } else {
                                        let _ = h.put(rng.below(UNIVERSE), i as i64);
                                    }
                                }
                                other => unreachable!("unknown workload {other}"),
                            }
                        }
                        let steps = h.max_threading_steps();
                        h.retire();
                        steps
                    })
                })
                .collect();
            for j in joins {
                max_steps = max_steps.max(j.join().unwrap());
            }
        },
    );
    (
        median.as_nanos() as f64 / (threads * ops).max(1) as f64,
        max_steps,
    )
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let ops = env_usize("BENCH_STORE_OPS", 2_000);
    let samples = env_usize("BENCH_STORE_SAMPLES", 9).max(1);
    let threads = env_usize("BENCH_STORE_THREADS", 4).max(1);
    let timestamp = cli_timestamp();

    let mut report = Report::new(
        "bench_store",
        "Sharded universal KV store: one op mix across shard counts",
        &["workload", "impl", "n", "threads", "ops/thread", "ns/op", "max_steps"],
    );
    report.note(format!(
        "n is the SHARD count ({threads} OS threads throughout); ops_per_thread={ops} \
         samples={samples} (median of whole-workload runs); universe {UNIVERSE} keys, \
         zipf theta {ZIPF_THETA}; construction of all shard logs is hoisted out of \
         the timed region"
    ));
    report.note(
        "snap_load is 90% put / 8% two-key multi_put / 2% snapshot: every snapshot \
         decides one marker per shard, every multi-op runs prepare/resolve on each \
         involved shard, so its ns/op prices the cross-shard protocols",
    );

    let mut zipf_by_shards: Vec<(usize, f64)> = Vec::new();
    for workload in ["zipf", "read_heavy", "write_heavy", "snap_load"] {
        for shards in SHARD_COUNTS {
            let (ns, max_steps) = run_cell(workload, false, shards, threads, ops, samples);
            report.row(&[
                workload.to_string(),
                "sharded".to_string(),
                shards.to_string(),
                threads.to_string(),
                ops.to_string(),
                format!("{ns:.1}"),
                max_steps.to_string(),
            ]);
            if workload == "zipf" {
                zipf_by_shards.push((shards, ns));
            }
            // Per-shard-log helping stays O(active handles) regardless of
            // the shard count; the store adds no unbounded loops on top
            // (multi-op retries are bounded by the helping rule). Same
            // slack as the universal bench's churn gate.
            if max_steps > 4 * threads + 8 {
                report.fail(format!(
                    "{workload} shards={shards}: {max_steps} threading steps exceeds \
                     the O(threads) per-log bound"
                ));
            }
        }
    }

    if let (Some((_, one)), Some((most, ns))) =
        (zipf_by_shards.first(), zipf_by_shards.last())
    {
        report.note(format!(
            "zipf scaling: {:.2}x ns/op going 1 -> {most} shards (values < 1 mean the \
             partition pays for itself; on a single-core host threads serialize, so \
             the win is reduced contention/helping on the hot shard log, not \
             parallel decide throughput)",
            ns / one,
        ));
    }

    let config = Json::Obj(vec![
        ("store".into(), Json::Str("sharded".into())),
        ("ops_per_thread".into(), Json::num(ops as u64)),
        ("samples".into(), Json::num(samples as u64)),
        ("threads".into(), Json::num(threads as u64)),
        ("universe".into(), Json::num(UNIVERSE)),
        (
            "shard_counts".into(),
            Json::Arr(SHARD_COUNTS.iter().map(|n| Json::num(*n as u64)).collect()),
        ),
    ]);
    merge_into_file("BENCH_universal.json", &report.to_json(), &timestamp, config);

    // The same read-bearing workloads again with reads on the log-free
    // replica path (PR 9): a separate `"reads": "local"` config group,
    // so `bench_trend` gates these rows against their own history and
    // never against the decided-read baseline above. write_heavy is
    // omitted — its rows are 90% writes, identical on both paths.
    let mut local = Report::new(
        "bench_store_local",
        "Sharded store with log-free reads: get answered from the replica",
        &["workload", "impl", "n", "threads", "ops/thread", "ns/op", "max_steps"],
    );
    local.note(format!(
        "reads=local: `get` Acquire-loads the decided frontier, replays the handle's \
         replica to it, and answers — zero log appends, zero shared-log RMWs per \
         read; writes are unchanged. Same knobs as the decided group \
         (threads={threads} ops_per_thread={ops} samples={samples})"
    ));
    for workload in ["zipf", "read_heavy", "snap_load"] {
        for shards in SHARD_COUNTS {
            let (ns, max_steps) = run_cell(workload, true, shards, threads, ops, samples);
            local.row(&[
                workload.to_string(),
                "sharded".to_string(),
                shards.to_string(),
                threads.to_string(),
                ops.to_string(),
                format!("{ns:.1}"),
                max_steps.to_string(),
            ]);
            if max_steps > 4 * threads + 8 {
                local.fail(format!(
                    "{workload} shards={shards} (local reads): {max_steps} threading \
                     steps exceeds the O(threads) per-log bound"
                ));
            }
        }
    }
    let local_config = Json::Obj(vec![
        ("store".into(), Json::Str("sharded".into())),
        ("reads".into(), Json::Str("local".into())),
        ("ops_per_thread".into(), Json::num(ops as u64)),
        ("samples".into(), Json::num(samples as u64)),
        ("threads".into(), Json::num(threads as u64)),
        ("universe".into(), Json::num(UNIVERSE)),
        (
            "shard_counts".into(),
            Json::Arr(SHARD_COUNTS.iter().map(|n| Json::num(*n as u64)).collect()),
        ),
    ]);
    merge_into_file("BENCH_universal.json", &local.to_json(), &timestamp, local_config);

    report.finish();
    local.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_cdf_is_normalized_and_skewed() {
        let z = Zipf::new(UNIVERSE, ZIPF_THETA);
        assert!((z.cdf.last().copied().unwrap() - 1.0).abs() < 1e-9);
        // The head of the distribution carries real mass: key 0 alone
        // draws more than the uniform share by an order of magnitude.
        assert!(z.cdf[0] > 10.0 / UNIVERSE as f64);
        let mut rng = Rng(7);
        for _ in 0..1000 {
            assert!(z.draw(&mut rng) < UNIVERSE);
        }
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let (mut a, mut b) = (Rng(42), Rng(42));
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        assert_ne!(Rng(1).next(), Rng(2).next());
    }
}
