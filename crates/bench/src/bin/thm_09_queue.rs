//! E6 — Theorem 9 / Corollary 10: a FIFO queue solves two-process
//! consensus; so do the "trivial variations" for stacks and sets.

use waitfree_bench::{verdict, Report};
use waitfree_core::protocols::queue::{QueueConsensus, SetConsensus, StackConsensus};
use waitfree_explorer::check::{check_consensus, CheckSettings};
use waitfree_explorer::valency;

fn main() {
    let mut report = Report::new(
        "thm_09_queue",
        "Theorem 9: FIFO queue solves 2-process consensus (+ stack/set variants)",
        &["object", "exhaustive check", "schedules", "critical configs"],
    );
    let settings = CheckSettings::default();

    {
        let (p, o) = QueueConsensus::setup();
        let check = check_consensus(&p, &o, 2, &settings);
        if !check.is_ok() {
            report.fail(format!("queue: {:?}", check.violation));
        }
        let val = valency::analyze(&p, &o, 2, 1_000_000);
        report.row(&[
            "FIFO queue (deq race)".into(),
            verdict(&check),
            val.schedules.to_string(),
            val.critical.len().to_string(),
        ]);
    }
    {
        let (p, o) = StackConsensus::setup();
        let check = check_consensus(&p, &o, 2, &settings);
        if !check.is_ok() {
            report.fail(format!("stack: {:?}", check.violation));
        }
        let val = valency::analyze(&p, &o, 2, 1_000_000);
        report.row(&[
            "stack (pop race)".into(),
            verdict(&check),
            val.schedules.to_string(),
            val.critical.len().to_string(),
        ]);
    }
    {
        let (p, o) = SetConsensus::setup();
        let check = check_consensus(&p, &o, 2, &settings);
        if !check.is_ok() {
            report.fail(format!("set: {:?}", check.violation));
        }
        let val = valency::analyze(&p, &o, 2, 1_000_000);
        report.row(&[
            "set (insert race)".into(),
            verdict(&check),
            val.schedules.to_string(),
            val.critical.len().to_string(),
        ]);
    }

    report.note("queue initialized [first, second]; whoever dequeues `first` wins");
    report.note("Corollary 10: none of these objects is implementable from registers");
    report.finish();
}
