//! E1 — Figure 1-1: the impossibility/universality hierarchy, re-derived.
//!
//! For each object in the figure, run the paper's consensus protocol at
//! every claimed level under the exhaustive checker (agreement, validity,
//! wait-freedom, including crash schedules), and cross-reference the
//! impossibility certificate for the level above.

use waitfree_bench::Report;
use waitfree_core::hierarchy::{table, Level};

fn main() {
    let mut report = Report::new(
        "fig_1_1_hierarchy",
        "Figure 1-1: impossibility and universality hierarchy",
        &["object", "level", "verified at n", "impossibility certificate"],
    );

    for row in table() {
        // Verify at every n the row claims, up to a demonstration cap.
        let cap = 3;
        let mut verified = Vec::new();
        for n in 1..=cap {
            match (row.solves)(n) {
                Some(r) if r.is_ok() => verified.push(n.to_string()),
                Some(r) => {
                    report.fail(format!(
                        "{} failed exhaustive check at n={n}: {:?}",
                        row.object, r.violation
                    ));
                }
                None => {}
            }
        }
        report.row(&[
            row.object.to_string(),
            row.level.to_string(),
            verified.join(","),
            row.impossibility.to_string(),
        ]);
        // Sanity: infinite-level rows must verify everywhere we tried.
        if row.level == Level::Infinite && verified.len() != cap {
            report.fail(format!("{} did not verify at all n ≤ {cap}", row.object));
        }
    }

    report.note("exhaustive checks include adversarial crash schedules");
    report.note("levels above each row are refuted by the referenced experiment binaries");
    report.finish();
}
