//! E8 — Theorem 12 / Corollaries 13–14: a queue augmented with `peek`
//! solves n-process consensus for arbitrary n.

use waitfree_bench::{verdict, Report};
use waitfree_core::protocols::augmented_queue::AugQueueConsensus;
use waitfree_explorer::check::{check_consensus, CheckSettings};
use waitfree_explorer::random::{run_random, RandomSettings};

fn main() {
    let mut report = Report::new(
        "thm_12_augmented_queue",
        "Theorem 12: augmented queue (peek) solves n-process consensus",
        &["n", "method", "result", "distinct winners seen"],
    );

    for n in [2, 3, 4] {
        let (p, o) = AugQueueConsensus::setup();
        let check = check_consensus(&p, &o, n, &CheckSettings::default());
        if !check.is_ok() {
            report.fail(format!("n={n}: {:?}", check.violation));
        }
        report.row(&[
            n.to_string(),
            "exhaustive (with crashes)".into(),
            verdict(&check),
            check.decisions_seen.len().to_string(),
        ]);
    }

    for n in [8, 16] {
        let (p, o) = AugQueueConsensus::setup();
        let settings = RandomSettings { runs: 2000, ..RandomSettings::default() };
        let r = run_random(&p, &o, n, &settings);
        if !r.is_ok() {
            report.fail(format!("n={n}: {:?}", r.violation));
        }
        report.row(&[
            n.to_string(),
            format!("randomized ({} runs, crashes)", settings.runs),
            if r.is_ok() { "ok".into() } else { "violated".into() },
            r.decisions_seen.len().to_string(),
        ]);
    }

    report.note("protocol: enq(my-id); decide(peek())");
    report.note("Corollary 13: no wait-free augmented queue from read/write/TAS/swap/FAA —");
    report.note("so Herlihy-Wing's FAA+swap queue cannot be given a wait-free peek");
    report.note("Corollary 14: nor from plain FIFO queues (Theorem 11's experiment)");
    report.finish();
}
