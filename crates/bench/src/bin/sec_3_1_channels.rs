//! E16 — §3.1's message-passing comparison (after Dolev, Dwork &
//! Stockmeyer): which channel flavors solve consensus?
//!
//! * ordered broadcast — solves n-process consensus (protocol verified
//!   exhaustively);
//! * point-to-point FIFO — fails bounded synthesis at n = 2;
//! * unordered broadcast — fails bounded synthesis at n = 2 (delivery
//!   nondeterminism is resolved adversarially by the explorer).

use waitfree_bench::{verdict, Report};
use waitfree_core::protocols::broadcast::BroadcastConsensus;
use waitfree_explorer::check::{check_consensus, CheckSettings};
use waitfree_explorer::synthesis::{search_pairs, SymbolicOp, SymbolicVal, SynthSpace};
use waitfree_objects::channel::{BcastOp, ChanResp, FifoNetwork, P2pOp, UnorderedBroadcast};
use waitfree_model::Pid;

/// Point-to-point alphabet for 2 processes: send my id to peer; receive
/// from peer (classified ⊥ / 0 / 1).
fn p2p_space() -> SynthSpace<FifoNetwork> {
    SynthSpace {
        ops: vec![
            SymbolicOp {
                name: "send(peer, my-id)".into(),
                make: Box::new(|p: Pid| P2pOp::Send { to: Pid(1 - p.0), body: p.as_val() }),
                slots: 1,
                classify: Box::new(|_, _| 0),
            },
            SymbolicOp {
                name: "recv(peer)".into(),
                make: Box::new(|p: Pid| P2pOp::Recv { from: Pid(1 - p.0) }),
                slots: 3,
                classify: Box::new(|_, r: &ChanResp| match r {
                    ChanResp::Empty => 0,
                    ChanResp::Msg { body: 0, .. } => 1,
                    ChanResp::Msg { .. } => 2,
                    ChanResp::Ack => unreachable!(),
                }),
            },
        ],
        decisions: vec![SymbolicVal::Const(0), SymbolicVal::Const(1)],
    }
}

/// Unordered-broadcast alphabet for 2 processes.
fn unordered_space() -> SynthSpace<UnorderedBroadcast> {
    SynthSpace {
        ops: vec![
            SymbolicOp {
                name: "bcast(my-id)".into(),
                make: Box::new(|p: Pid| BcastOp::Bcast(p.as_val())),
                slots: 1,
                classify: Box::new(|_, _| 0),
            },
            SymbolicOp {
                name: "recv".into(),
                make: Box::new(|_| BcastOp::Recv),
                slots: 3,
                classify: Box::new(|_, r: &ChanResp| match r {
                    ChanResp::Empty => 0,
                    ChanResp::Msg { body: 0, .. } => 1,
                    ChanResp::Msg { .. } => 2,
                    ChanResp::Ack => unreachable!(),
                }),
            },
        ],
        decisions: vec![SymbolicVal::Const(0), SymbolicVal::Const(1)],
    }
}

fn main() {
    let mut report = Report::new(
        "sec_3_1_channels",
        "§3.1: message channels vs consensus (Dolev-Dwork-Stockmeyer cases)",
        &["channel", "method", "result"],
    );
    let settings = CheckSettings::default();

    // Ordered broadcast solves consensus.
    for n in [2, 3] {
        let (p, o) = BroadcastConsensus::setup(n);
        let check = check_consensus(&p, &o, n, &settings);
        if !check.is_ok() {
            report.fail(format!("ordered broadcast n={n}: {:?}", check.violation));
        }
        report.row(&[
            "ordered broadcast".into(),
            format!("protocol, exhaustive n={n}"),
            verdict(&check),
        ]);
    }

    // FIFO point-to-point fails bounded synthesis.
    for depth in [1, 2] {
        let out = search_pairs(&p2p_space(), &FifoNetwork::new(2), depth, &settings);
        report.row(&[
            "point-to-point FIFO".into(),
            format!("synthesis n=2, depth {depth}: {} trees, {} candidates", out.tree_count, out.candidates),
            if out.is_impossible() {
                "impossible (bounded)".into()
            } else {
                format!("SOLVED?! {:?}", out.survivors)
            },
        ]);
        if !out.is_impossible() {
            report.fail(format!("p2p FIFO depth {depth}: survivors"));
        }
    }

    // Unordered broadcast fails bounded synthesis.
    for depth in [1, 2] {
        let out = search_pairs(&unordered_space(), &UnorderedBroadcast::new(2), depth, &settings);
        report.row(&[
            "unordered broadcast".into(),
            format!("synthesis n=2, depth {depth}: {} trees, {} candidates", out.tree_count, out.candidates),
            if out.is_impossible() {
                "impossible (bounded)".into()
            } else {
                format!("SOLVED?! {:?}", out.survivors)
            },
        ]);
        if !out.is_impossible() {
            report.fail(format!("unordered broadcast depth {depth}: survivors"));
        }
    }

    report.note("a queue item, unlike a message, is not addressed — hence Theorem 11 ≠ DDS's result");
    report.note("unordered delivery is resolved adversarially: the explorer branches over deliveries");
    report.finish();
}
