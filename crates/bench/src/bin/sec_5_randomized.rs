//! E17 — §5's open question, implemented: randomized consensus from
//! read/write registers (after Abrahamson, cited as \[1\]).
//!
//! Theorem 2 forbids *deterministic* wait-free 2-process consensus from
//! registers. The "flip till agree" protocol keeps agreement and validity
//! absolute while termination holds only with probability 1: measured
//! here, plus the explicit adversarial lockstep schedule on which the
//! protocol runs forever — the irreducible residue of the impossibility.

use waitfree_bench::Report;
use waitfree_core::protocols::randomized::FlipConsensus2;
use waitfree_explorer::config::Config;
use waitfree_explorer::random::{run_random, RandomSettings};
use waitfree_model::Pid;

fn main() {
    let mut report = Report::new(
        "sec_5_randomized",
        "§5: randomized consensus from registers (probability-1 termination)",
        &["scenario", "runs", "result"],
    );

    // 1. Random schedules: always agree, terminate fast.
    let mut total_steps = 0u64;
    let mut total_runs = 0u64;
    let mut max_steps = 0usize;
    for trial in 0..200u64 {
        let (p, o) = FlipConsensus2::setup([trial * 2 + 1, trial * 5 + 3]);
        let settings = RandomSettings {
            runs: 25,
            seed: trial,
            crash_per_mille: 50,
            max_steps_per_run: 100_000,
        };
        let r = run_random(&p, &o, 2, &settings);
        if !r.is_ok() {
            report.fail(format!("trial {trial}: {:?}", r.violation));
        }
        total_steps += r.total_steps;
        total_runs += r.runs as u64;
        max_steps = max_steps.max(r.max_run_steps);
    }
    let avg = total_steps as f64 / total_runs as f64;
    report.row(&[
        "random schedules + crashes".into(),
        total_runs.to_string(),
        format!("all agree; avg {avg:.1} steps/run, max {max_steps}"),
    ]);
    if avg > 40.0 {
        report.fail(format!("expected steps per run too high: {avg:.1}"));
    }

    // 2. The adversarial schedule: identical coins + lockstep = forever.
    let (p, o) = FlipConsensus2::setup([42, 42]);
    let mut cfg = Config::initial(&p, o, 2);
    let rounds = 10_000;
    let mut undecided = true;
    'outer: for _ in 0..rounds {
        for pid in [0, 1, 0, 1] {
            let succs = cfg.step(&p, Pid(pid));
            if succs.is_empty() {
                undecided = false;
                break 'outer;
            }
            cfg = succs.into_iter().next().unwrap();
        }
    }
    report.row(&[
        "adversarial lockstep schedule, identical coin streams".into(),
        rounds.to_string(),
        if undecided { "no decision after 10k rounds (not wait-free)".into() } else { "decided?!".into() },
    ]);
    if !undecided {
        report.fail("the adversarial schedule should prevent termination");
    }

    report.note("agreement & validity are absolute; only termination is probabilistic");
    report.note("this is the strongest possible escape from Theorem 2 using registers");
    report.finish();
}
