//! E3 — Theorem 4 / Corollary 5: any non-trivial read-modify-write
//! operation solves two-process consensus.
//!
//! Runs the paper's `Decide_P`/`Decide_Q` protocol for each classical
//! primitive over every schedule (with crashes), and reports the valency
//! structure: initial bivalence and the critical configurations the
//! impossibility proofs revolve around.

use waitfree_bench::{verdict, Report};
use waitfree_core::protocols::rmw::RmwConsensus;
use waitfree_explorer::check::{check_consensus, CheckSettings};
use waitfree_explorer::valency;
use waitfree_objects::rmw::RmwFn;

fn main() {
    let mut report = Report::new(
        "thm_04_rmw",
        "Theorem 4: non-trivial RMW solves 2-process consensus",
        &["operation", "exhaustive check", "schedules", "bivalent", "critical"],
    );

    let cases = [
        ("test-and-set", RmwFn::TestAndSet),
        ("swap(2)", RmwFn::Swap(2)),
        ("fetch-and-add(1)", RmwFn::FetchAndAdd(1)),
        ("fetch-and-or(1)", RmwFn::FetchAndOr(1)),
        ("fetch-and-max(1)", RmwFn::FetchAndMax(1)),
        ("compare-and-swap(0,1)", RmwFn::CompareAndSwap(0, 1)),
    ];

    for (name, f) in cases {
        let (p, o) = RmwConsensus::setup(f);
        let check = check_consensus(&p, &o, 2, &CheckSettings::default());
        if !check.is_ok() {
            report.fail(format!("{name}: {:?}", check.violation));
        }
        let val = valency::analyze(&p, &o, 2, 1_000_000);
        if !val.initially_bivalent() {
            report.fail(format!("{name}: initial configuration not bivalent"));
        }
        report.row(&[
            name.to_string(),
            verdict(&check),
            val.schedules.to_string(),
            val.bivalent.to_string(),
            val.critical.len().to_string(),
        ]);
    }

    report.note("each protocol: one RMW then decide; winner = whoever saw the initial value");
    report.note("initial bivalence + critical configs = the structure Theorem 2's proof exploits");
    report.finish();
}
