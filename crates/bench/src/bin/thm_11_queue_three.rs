//! E7 — Theorem 11: FIFO queues cannot solve three-process consensus
//! (hence message-passing architectures are not universal).
//!
//! Bounded synthesis: enumerate every symmetric protocol up to depth 2
//! over a queue initialized `[FIRST, SECOND]` (the Theorem 9 setup) with
//! enq/deq operations, and verify none solves 3-process consensus — while
//! the *same* space at n = 2 contains Theorem 9's protocol (the control).

use waitfree_bench::Report;
use waitfree_core::protocols::queue::FIRST;
use waitfree_explorer::check::CheckSettings;
use waitfree_explorer::synthesis::{search_symmetric, SymbolicOp, SymbolicVal, SynthSpace};
use waitfree_objects::queue::{FifoQueue, QueueOp, QueueResp};

fn queue_space() -> SynthSpace<FifoQueue> {
    SynthSpace {
        ops: vec![
            SymbolicOp {
                name: "deq".into(),
                make: Box::new(|_| QueueOp::Deq),
                slots: 2,
                classify: Box::new(|_, r: &QueueResp| match r {
                    QueueResp::Item(v) if *v == FIRST => 0,
                    _ => 1,
                }),
            },
            SymbolicOp {
                name: "enq(my-id)".into(),
                make: Box::new(|p| QueueOp::Enq(p.as_val())),
                slots: 1,
                classify: Box::new(|_, _| 0),
            },
        ],
        decisions: vec![
            SymbolicVal::MyId,
            SymbolicVal::OtherOfTwo,
            SymbolicVal::Const(0),
            SymbolicVal::Const(1),
            SymbolicVal::Const(2),
        ],
    }
}

fn main() {
    let mut report = Report::new(
        "thm_11_queue_three",
        "Theorem 11: queues cannot solve 3-process consensus",
        &["search", "trees", "candidates", "survivors", "verdict"],
    );
    let settings = CheckSettings::default();
    let queue = FifoQueue::from_items([FIRST, FIRST + 100]);

    for depth in [1, 2] {
        let out = search_symmetric(&queue_space(), &queue, 3, depth, &settings);
        report.row(&[
            format!("symmetric n=3, depth {depth}"),
            out.tree_count.to_string(),
            out.candidates.to_string(),
            out.survivors.len().to_string(),
            if out.is_impossible() { "impossible (bounded)".into() } else { "SOLVED?!".into() },
        ]);
        if !out.is_impossible() {
            report.fail(format!("depth {depth}: survivors {:?}", out.survivors));
        }
    }

    // Control: the same space must contain Theorem 9's protocol at n = 2.
    let control = search_symmetric(&queue_space(), &queue, 2, 1, &settings);
    report.row(&[
        "control: n=2, depth 1".into(),
        control.tree_count.to_string(),
        control.candidates.to_string(),
        control.survivors.len().to_string(),
        if control.is_impossible() { "MISSED?!".into() } else { "solves (Theorem 9)".into() },
    ]);
    if control.is_impossible() {
        report.fail("control search must rediscover Theorem 9's protocol at n=2");
    }

    report.note("queue initialized [FIRST, SECOND]; deq responses classified FIRST vs other");
    report.note("the paper's full proof covers unbounded protocols via the enq/deq case analysis");
    report.note("consequence: hypercube-style message-passing (shared FIFO queues) is not universal");
    report.finish();
}
