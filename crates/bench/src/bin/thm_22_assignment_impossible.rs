//! E12 — Theorem 22: atomic m-register assignment cannot solve
//! (2m-1)-process consensus. Instance checked: m = 2, n = 3.
//!
//! Bounded synthesis over a width-2 assignment bank shared by three
//! processes (3 private + 3 pairwise-shared registers): every symmetric
//! protocol in the stated space is enumerated and model-checked; none
//! solves 3-process consensus. Two spaces are searched — depth 1 with a
//! fine response classification, depth 2 with a coarser one (the
//! enumeration is doubly exponential in depth × response slots).
//!
//! Caveat, stated plainly: the known *positive* protocol for n = 2
//! (Theorem 19) needs depth 3, so this bounded certificate covers a
//! protocol space smaller than where the positive solution lives. It
//! mechanically rules out every short protocol; the unbounded claim is
//! Theorem 22's private-register/shared-register counting argument.
//! Combined with Theorems 20/21 it yields the paper's striking corollary:
//! for even n, n-process consensus cannot be built from (n-1)-process
//! consensus — consensus is irreducible.

use waitfree_bench::Report;
use waitfree_core::protocols::assignment::UNSET;
use waitfree_explorer::check::CheckSettings;
use waitfree_explorer::synthesis::{search_symmetric, SymbolicOp, SymbolicVal, SynthSpace};
use waitfree_objects::assignment::{AssignBank, AssignOp, AssignResp};

/// Cell layout: privates 0..3; shared(i,j) for i<j at 3 + index.
fn shared_cell(i: usize, j: usize) -> usize {
    match (i.min(j), i.max(j)) {
        (0, 1) => 3,
        (0, 2) => 4,
        (1, 2) => 5,
        _ => unreachable!("three processes"),
    }
}

fn assign_ops() -> Vec<SymbolicOp<AssignBank>> {
    [1usize, 2]
        .into_iter()
        .map(|d| SymbolicOp {
            name: format!("assign(private, shared with +{d})"),
            make: Box::new(move |p: waitfree_model::Pid| {
                let me = p.0;
                let peer = (me + d) % 3;
                AssignOp::Assign(vec![
                    (me, p.as_val()),
                    (shared_cell(me, peer), p.as_val()),
                ])
            }),
            slots: 1,
            classify: Box::new(|_, _| 0),
        })
        .collect()
}

/// Depth-1 space: all reads, responses classified {⊥, mine, other}.
fn fine_space() -> SynthSpace<AssignBank> {
    let mut ops = assign_ops();
    for d in [1usize, 2] {
        ops.push(SymbolicOp {
            name: format!("read shared with +{d}"),
            make: Box::new(move |p| AssignOp::Read(shared_cell(p.0, (p.0 + d) % 3))),
            slots: 3,
            classify: Box::new(|p, r: &AssignResp| match r {
                AssignResp::Value(v) if *v == UNSET => 0,
                AssignResp::Value(v) if *v == p.as_val() => 1,
                _ => 2,
            }),
        });
        ops.push(SymbolicOp {
            name: format!("read private of +{d}"),
            make: Box::new(move |p| AssignOp::Read((p.0 + d) % 3)),
            slots: 3,
            classify: Box::new(|p, r: &AssignResp| match r {
                AssignResp::Value(v) if *v == UNSET => 0,
                AssignResp::Value(v) if *v == p.as_val() => 1,
                _ => 2,
            }),
        });
    }
    SynthSpace {
        ops,
        decisions: vec![
            SymbolicVal::MyId,
            SymbolicVal::Const(0),
            SymbolicVal::Const(1),
            SymbolicVal::Const(2),
        ],
    }
}

/// Depth-2 space: shared-register reads only, responses classified
/// {mine, not-mine}.
fn coarse_space() -> SynthSpace<AssignBank> {
    let mut ops = assign_ops();
    for d in [1usize, 2] {
        ops.push(SymbolicOp {
            name: format!("read shared with +{d} (coarse)"),
            make: Box::new(move |p| AssignOp::Read(shared_cell(p.0, (p.0 + d) % 3))),
            slots: 2,
            classify: Box::new(|p, r: &AssignResp| match r {
                AssignResp::Value(v) if *v == p.as_val() => 0,
                _ => 1,
            }),
        });
    }
    SynthSpace {
        ops,
        decisions: vec![
            SymbolicVal::MyId,
            SymbolicVal::Const(0),
            SymbolicVal::Const(1),
            SymbolicVal::Const(2),
        ],
    }
}

fn main() {
    let mut report = Report::new(
        "thm_22_assignment_impossible",
        "Theorem 22: 2-register assignment cannot solve 3-process consensus",
        &["search", "trees", "candidates", "survivors", "verdict"],
    );
    let settings = CheckSettings::default();
    let bank = AssignBank::new(6, 2, UNSET);

    for (label, space, depth) in [
        ("fine responses", fine_space(), 1),
        ("coarse responses", coarse_space(), 2),
    ] {
        let out = search_symmetric(&space, &bank, 3, depth, &settings);
        report.row(&[
            format!("symmetric n=3, width-2 assignment, {label}, depth {depth}"),
            out.tree_count.to_string(),
            out.candidates.to_string(),
            out.survivors.len().to_string(),
            if out.is_impossible() { "impossible (bounded)".into() } else { "SOLVED?!".into() },
        ]);
        if !out.is_impossible() {
            report.fail(format!("depth {depth}: survivors {:?}", out.survivors));
        }
    }

    report.note("positive side (Theorem 19/20) verified separately in thm_19_assignment");
    report.note("depth bound is below the depth of the known n=2 solution; see module docs");
    report.note("paper's proof: each default class forces k+1 assigned registers — width counting");
    report.finish();
}
