//! E5 — Theorem 7 / Corollary 8: compare-and-swap solves n-process
//! consensus for arbitrary n.
//!
//! Exhaustive verification (all schedules, with crashes) for n ≤ 4, and
//! seeded randomized verification up to n = 24. Corollary 8 — no wait-free
//! CAS from read/write/TAS/swap/FAA — follows from Theorem 6's experiment.

use waitfree_bench::{verdict, Report};
use waitfree_core::protocols::cas::CasConsensus;
use waitfree_explorer::check::{check_consensus, CheckSettings};
use waitfree_explorer::random::{run_random, RandomSettings};

fn main() {
    let mut report = Report::new(
        "thm_07_cas",
        "Theorem 7: compare-and-swap solves n-process consensus",
        &["n", "method", "result", "distinct winners seen"],
    );

    for n in [2, 3, 4] {
        let (p, o) = CasConsensus::setup();
        let check = check_consensus(&p, &o, n, &CheckSettings::default());
        if !check.is_ok() {
            report.fail(format!("n={n}: {:?}", check.violation));
        }
        report.row(&[
            n.to_string(),
            "exhaustive (with crashes)".into(),
            verdict(&check),
            check.decisions_seen.len().to_string(),
        ]);
    }

    for n in [8, 16, 24] {
        let (p, o) = CasConsensus::setup();
        let settings = RandomSettings { runs: 2000, ..RandomSettings::default() };
        let r = run_random(&p, &o, n, &settings);
        if !r.is_ok() {
            report.fail(format!("n={n}: {:?}", r.violation));
        }
        report.row(&[
            n.to_string(),
            format!("randomized ({} runs, crashes)", settings.runs),
            if r.is_ok() { format!("ok ({} steps total)", r.total_steps) } else { "violated".into() },
            r.decisions_seen.len().to_string(),
        ]);
    }

    report.note("protocol: one compare-and-swap(⊥ → my-id), then decide what the register shows");
    report.note("every process can win under some schedule (distinct winners = n for exhaustive runs)");
    report.finish();
}
