//! P2 — before/after benchmark for the universal-object hot-path
//! optimisation: the pointer-CAS segmented-log path
//! (`waitfree_sync::universal`) against the seed `ConsensusCell` arena
//! path (`waitfree_sync::universal_cell`), on a contended counter and a
//! FIFO queue at n ∈ {1, 2, 4, 8} threads.
//!
//! Each row records the median wall-clock ns per operation of the whole
//! workload (object creation + n threads × ops + join — the seed's
//! O(n²·max_ops) eager arena is part of what the optimisation removes,
//! so it is deliberately inside the timed region) and the worst
//! per-operation threading-step count, which must stay within the O(n)
//! helping bound on both paths.
//!
//! Writes `BENCH_universal.json` in the working directory (the repo root
//! when run via `cargo run -p waitfree-bench --bin bench_universal`) —
//! the recorded perf trajectory the README quotes — plus the usual
//! `results/bench_universal.json` copy. Environment knobs for the CI
//! smoke job: `BENCH_UNIVERSAL_OPS` (ops per thread, default 2000) and
//! `BENCH_UNIVERSAL_SAMPLES` (median-of samples, default 5).

use std::thread;

use waitfree_bench::timing::measure;
use waitfree_bench::Report;
use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
use waitfree_objects::queue::{FifoQueue, QueueOp};
use waitfree_sync::universal::WfUniversal;
use waitfree_sync::universal_cell::CellUniversal;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One universal-object implementation under measurement.
trait UniPath {
    const NAME: &'static str;
    type CounterH: Send + 'static;
    type QueueH: Send + 'static;

    fn counter(n: usize, max_ops: usize) -> Vec<Self::CounterH>;
    fn queue(n: usize, max_ops: usize) -> Vec<Self::QueueH>;
    fn faa(h: &mut Self::CounterH) -> i64;
    fn enq_deq(h: &mut Self::QueueH, v: i64);
    fn counter_steps(h: &Self::CounterH) -> usize;
    fn queue_steps(h: &Self::QueueH) -> usize;
}

/// The optimised pointer-CAS segmented-log path (the *after* leg).
struct PtrPath;

impl UniPath for PtrPath {
    const NAME: &'static str = "pointer";
    type CounterH = waitfree_sync::universal::WfHandle<Counter>;
    type QueueH = waitfree_sync::universal::WfHandle<FifoQueue>;

    fn counter(n: usize, max_ops: usize) -> Vec<Self::CounterH> {
        WfUniversal::new(Counter::new(0), n, max_ops)
    }
    fn queue(n: usize, max_ops: usize) -> Vec<Self::QueueH> {
        WfUniversal::new(FifoQueue::new(), n, max_ops)
    }
    fn faa(h: &mut Self::CounterH) -> i64 {
        match h.invoke(CounterOp::FetchAndAdd(1)) {
            CounterResp::Value(v) => v,
            CounterResp::Ack => unreachable!("fetch-and-add returns a value"),
        }
    }
    fn enq_deq(h: &mut Self::QueueH, v: i64) {
        let _ = h.invoke(QueueOp::Enq(v));
        let _ = h.invoke(QueueOp::Deq);
    }
    fn counter_steps(h: &Self::CounterH) -> usize {
        h.max_threading_steps()
    }
    fn queue_steps(h: &Self::QueueH) -> usize {
        h.max_threading_steps()
    }
}

/// The seed `ConsensusCell` arena path (the *before* leg).
struct CellPath;

impl UniPath for CellPath {
    const NAME: &'static str = "cell";
    type CounterH = waitfree_sync::universal_cell::CellHandle<Counter>;
    type QueueH = waitfree_sync::universal_cell::CellHandle<FifoQueue>;

    fn counter(n: usize, max_ops: usize) -> Vec<Self::CounterH> {
        CellUniversal::new(Counter::new(0), n, max_ops)
    }
    fn queue(n: usize, max_ops: usize) -> Vec<Self::QueueH> {
        CellUniversal::new(FifoQueue::new(), n, max_ops)
    }
    fn faa(h: &mut Self::CounterH) -> i64 {
        match h.invoke(CounterOp::FetchAndAdd(1)) {
            CounterResp::Value(v) => v,
            CounterResp::Ack => unreachable!("fetch-and-add returns a value"),
        }
    }
    fn enq_deq(h: &mut Self::QueueH, v: i64) {
        let _ = h.invoke(QueueOp::Enq(v));
        let _ = h.invoke(QueueOp::Deq);
    }
    fn counter_steps(h: &Self::CounterH) -> usize {
        h.max_threading_steps()
    }
    fn queue_steps(h: &Self::QueueH) -> usize {
        h.max_threading_steps()
    }
}

/// n threads each perform `ops` fetch-and-adds on one shared counter;
/// returns the worst per-op threading-step count observed.
fn counter_workload<P: UniPath>(n: usize, ops: usize) -> usize {
    let joins: Vec<_> = P::counter(n, ops + 1)
        .into_iter()
        .map(|mut h| {
            thread::spawn(move || {
                for _ in 0..ops {
                    P::faa(&mut h);
                }
                P::counter_steps(&h)
            })
        })
        .collect();
    joins.into_iter().map(|j| j.join().unwrap()).max().unwrap_or(0)
}

/// n threads each perform `ops` operations (enq/deq pairs) on one shared
/// FIFO queue; returns the worst per-op threading-step count observed.
fn queue_workload<P: UniPath>(n: usize, ops: usize) -> usize {
    let joins: Vec<_> = P::queue(n, ops + 1)
        .into_iter()
        .map(|mut h| {
            thread::spawn(move || {
                for i in 0..ops / 2 {
                    P::enq_deq(&mut h, i as i64);
                }
                P::queue_steps(&h)
            })
        })
        .collect();
    joins.into_iter().map(|j| j.join().unwrap()).max().unwrap_or(0)
}

/// ns/op and the worst threading-step count across all samples for one
/// (path, workload, n) cell. ns/op divides by the operations actually
/// executed: the queue workload issues enq/deq pairs, so an odd `ops`
/// rounds down to `2 * (ops / 2)` per thread.
fn run_one<P: UniPath>(workload: &str, n: usize, ops: usize, samples: usize) -> (f64, usize) {
    let mut steps = 0usize;
    let (median, executed) = match workload {
        "counter" => {
            (measure(samples, || steps = steps.max(counter_workload::<P>(n, ops))), n * ops)
        }
        "queue" => {
            (measure(samples, || steps = steps.max(queue_workload::<P>(n, ops))), n * 2 * (ops / 2))
        }
        other => unreachable!("unknown workload {other}"),
    };
    (median.as_nanos() as f64 / executed.max(1) as f64, steps)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let ops = env_usize("BENCH_UNIVERSAL_OPS", 2_000);
    let samples = env_usize("BENCH_UNIVERSAL_SAMPLES", 5).max(1);

    let mut report = Report::new(
        "bench_universal",
        "Universal object: pointer-CAS segmented log vs ConsensusCell arena",
        &["workload", "impl", "n", "ops/thread", "ns/op", "max_steps"],
    );
    report.note(format!("ops_per_thread={ops} samples={samples} (median of whole-workload runs)"));
    report.note(
        "timed region includes object creation: the seed path's eager \
         O(n^2*max_ops) arena allocation is part of what the segmented log removes",
    );

    for workload in ["counter", "queue"] {
        for n in THREAD_COUNTS {
            let (cell_ns, cell_steps) = run_one::<CellPath>(workload, n, ops, samples);
            let (ptr_ns, ptr_steps) = run_one::<PtrPath>(workload, n, ops, samples);
            for (name, ns, steps) in
                [(CellPath::NAME, cell_ns, cell_steps), (PtrPath::NAME, ptr_ns, ptr_steps)]
            {
                report.row(&[
                    workload.to_string(),
                    name.to_string(),
                    n.to_string(),
                    ops.to_string(),
                    format!("{ns:.1}"),
                    steps.to_string(),
                ]);
            }
            let speedup = cell_ns / ptr_ns;
            report.note(format!("speedup {workload} n={n}: {speedup:.2}x (cell -> pointer)"));
            // The helping bound must hold on both paths even while racing
            // at full speed; 2n + 8 matches the stress tests' slack.
            for (name, steps) in [(CellPath::NAME, cell_steps), (PtrPath::NAME, ptr_steps)] {
                if steps > 2 * n + 8 {
                    report.fail(format!(
                        "{workload} n={n} {name}: {steps} threading steps exceeds the O(n) bound"
                    ));
                }
            }
            if workload == "counter" && n == 4 && speedup < 1.5 {
                report.note(format!(
                    "WARNING: contended-counter speedup at n=4 is {speedup:.2}x, \
                     below the 1.5x target"
                ));
            }
        }
    }

    // The recorded perf-trajectory file at the repo root, alongside the
    // standard results/ copy written by finish().
    if let Err(e) = std::fs::write("BENCH_universal.json", report.to_json()) {
        eprintln!("could not write BENCH_universal.json: {e}");
        std::process::exit(1);
    }
    println!("  wrote BENCH_universal.json");
    report.finish();
}
