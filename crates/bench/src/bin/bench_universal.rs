//! P2 — before/after benchmark for the universal-object hot-path
//! optimisation: the pointer-CAS segmented-log path
//! (`waitfree_sync::universal`) against the seed `ConsensusCell` arena
//! path (`waitfree_sync::universal_cell`), on a contended counter and a
//! FIFO queue at n ∈ {1, 2, 4, 8} threads.
//!
//! Each row records the median wall-clock ns per operation of the whole
//! workload (object creation + n threads × ops + join — the seed's
//! O(n²·max_ops) eager arena is part of what the optimisation removes,
//! so it is deliberately inside the timed region) and the worst
//! per-operation threading-step count, which must stay within the O(n)
//! helping bound on both paths.
//!
//! Maintains `BENCH_universal.json` in the working directory (the repo
//! root when run via `cargo run -p waitfree-bench --bin bench_universal`)
//! — the recorded perf *trajectory* the README quotes. The file is
//! merged into, not overwritten: schema 2 is `{"schema": 2, "runs":
//! [...]}` where each run carries a timestamp (pass `--timestamp <tag>`
//! for reproducible records; defaults to wall-clock epoch seconds), the
//! run's configuration, and the full report. A pre-schema-2 file (a bare
//! report object) is wrapped as the first run with timestamp
//! `"pre-merge"`. The usual single-report `results/bench_universal.json`
//! copy is still written by `finish()`. Environment knobs for the CI
//! smoke job: `BENCH_UNIVERSAL_OPS` (ops per thread, default 2000) and
//! `BENCH_UNIVERSAL_SAMPLES` (median-of samples, default 5).

use std::thread;

use waitfree_bench::json::Json;
use waitfree_bench::timing::measure;
use waitfree_bench::Report;
use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
use waitfree_objects::queue::{FifoQueue, QueueOp};
use waitfree_sync::universal::WfUniversal;
use waitfree_sync::universal_cell::CellUniversal;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One universal-object implementation under measurement.
trait UniPath {
    const NAME: &'static str;
    type CounterH: Send + 'static;
    type QueueH: Send + 'static;

    fn counter(n: usize, max_ops: usize) -> Vec<Self::CounterH>;
    fn queue(n: usize, max_ops: usize) -> Vec<Self::QueueH>;
    fn faa(h: &mut Self::CounterH) -> i64;
    fn enq_deq(h: &mut Self::QueueH, v: i64);
    fn counter_steps(h: &Self::CounterH) -> usize;
    fn queue_steps(h: &Self::QueueH) -> usize;
}

/// The optimised pointer-CAS segmented-log path (the *after* leg).
struct PtrPath;

impl UniPath for PtrPath {
    const NAME: &'static str = "pointer";
    type CounterH = waitfree_sync::universal::WfHandle<Counter>;
    type QueueH = waitfree_sync::universal::WfHandle<FifoQueue>;

    fn counter(n: usize, max_ops: usize) -> Vec<Self::CounterH> {
        WfUniversal::new(Counter::new(0), n, max_ops)
    }
    fn queue(n: usize, max_ops: usize) -> Vec<Self::QueueH> {
        WfUniversal::new(FifoQueue::new(), n, max_ops)
    }
    fn faa(h: &mut Self::CounterH) -> i64 {
        match h.invoke(CounterOp::FetchAndAdd(1)) {
            CounterResp::Value(v) => v,
            CounterResp::Ack => unreachable!("fetch-and-add returns a value"),
        }
    }
    fn enq_deq(h: &mut Self::QueueH, v: i64) {
        let _ = h.invoke(QueueOp::Enq(v));
        let _ = h.invoke(QueueOp::Deq);
    }
    fn counter_steps(h: &Self::CounterH) -> usize {
        h.max_threading_steps()
    }
    fn queue_steps(h: &Self::QueueH) -> usize {
        h.max_threading_steps()
    }
}

/// The seed `ConsensusCell` arena path (the *before* leg).
struct CellPath;

impl UniPath for CellPath {
    const NAME: &'static str = "cell";
    type CounterH = waitfree_sync::universal_cell::CellHandle<Counter>;
    type QueueH = waitfree_sync::universal_cell::CellHandle<FifoQueue>;

    fn counter(n: usize, max_ops: usize) -> Vec<Self::CounterH> {
        CellUniversal::new(Counter::new(0), n, max_ops)
    }
    fn queue(n: usize, max_ops: usize) -> Vec<Self::QueueH> {
        CellUniversal::new(FifoQueue::new(), n, max_ops)
    }
    fn faa(h: &mut Self::CounterH) -> i64 {
        match h.invoke(CounterOp::FetchAndAdd(1)) {
            CounterResp::Value(v) => v,
            CounterResp::Ack => unreachable!("fetch-and-add returns a value"),
        }
    }
    fn enq_deq(h: &mut Self::QueueH, v: i64) {
        let _ = h.invoke(QueueOp::Enq(v));
        let _ = h.invoke(QueueOp::Deq);
    }
    fn counter_steps(h: &Self::CounterH) -> usize {
        h.max_threading_steps()
    }
    fn queue_steps(h: &Self::QueueH) -> usize {
        h.max_threading_steps()
    }
}

/// n threads each perform `ops` fetch-and-adds on one shared counter;
/// returns the worst per-op threading-step count observed.
fn counter_workload<P: UniPath>(n: usize, ops: usize) -> usize {
    let joins: Vec<_> = P::counter(n, ops + 1)
        .into_iter()
        .map(|mut h| {
            thread::spawn(move || {
                for _ in 0..ops {
                    P::faa(&mut h);
                }
                P::counter_steps(&h)
            })
        })
        .collect();
    joins.into_iter().map(|j| j.join().unwrap()).max().unwrap_or(0)
}

/// n threads each perform `ops` operations (enq/deq pairs) on one shared
/// FIFO queue; returns the worst per-op threading-step count observed.
fn queue_workload<P: UniPath>(n: usize, ops: usize) -> usize {
    let joins: Vec<_> = P::queue(n, ops + 1)
        .into_iter()
        .map(|mut h| {
            thread::spawn(move || {
                for i in 0..ops / 2 {
                    P::enq_deq(&mut h, i as i64);
                }
                P::queue_steps(&h)
            })
        })
        .collect();
    joins.into_iter().map(|j| j.join().unwrap()).max().unwrap_or(0)
}

/// ns/op and the worst threading-step count across all samples for one
/// (path, workload, n) cell. ns/op divides by the operations actually
/// executed: the queue workload issues enq/deq pairs, so an odd `ops`
/// rounds down to `2 * (ops / 2)` per thread.
fn run_one<P: UniPath>(workload: &str, n: usize, ops: usize, samples: usize) -> (f64, usize) {
    let mut steps = 0usize;
    let (median, executed) = match workload {
        "counter" => {
            (measure(samples, || steps = steps.max(counter_workload::<P>(n, ops))), n * ops)
        }
        "queue" => {
            (measure(samples, || steps = steps.max(queue_workload::<P>(n, ops))), n * 2 * (ops / 2))
        }
        other => unreachable!("unknown workload {other}"),
    };
    (median.as_nanos() as f64 / executed.max(1) as f64, steps)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// `--timestamp <tag>` / `--timestamp=<tag>`, else epoch seconds.
fn cli_timestamp() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--timestamp" {
            if let Some(v) = args.next() {
                return v;
            }
        } else if let Some(v) = a.strip_prefix("--timestamp=") {
            return v.to_string();
        }
    }
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    format!("unix:{secs}")
}

/// Merge this run into the recorded trajectory: read the existing
/// `BENCH_universal.json` (wrapping a pre-schema-2 bare report as the
/// first run), append `{timestamp, config, report}`, and render the
/// schema-2 document.
fn merged_trajectory(prior: Option<&str>, report_json: &str, timestamp: &str, config: Json) -> String {
    let mut runs: Vec<Json> = match prior.map(Json::parse) {
        Some(Ok(doc)) => match doc.get("runs").and_then(Json::as_array) {
            Some(existing) => existing.to_vec(),
            // A bare report from before the merge schema: keep it as
            // the trajectory's first entry.
            None if doc.get("id").is_some() => vec![Json::Obj(vec![
                ("timestamp".into(), Json::Str("pre-merge".into())),
                ("config".into(), Json::Obj(Vec::new())),
                ("report".into(), doc),
            ])],
            None => Vec::new(),
        },
        Some(Err(e)) => {
            eprintln!("ignoring unparseable BENCH_universal.json: {e}");
            Vec::new()
        }
        None => Vec::new(),
    };
    let report = Json::parse(report_json).expect("Report::to_json emits valid JSON");
    runs.push(Json::Obj(vec![
        ("timestamp".into(), Json::Str(timestamp.into())),
        ("config".into(), config),
        ("report".into(), report),
    ]));
    Json::Obj(vec![
        ("schema".into(), Json::num(2)),
        ("runs".into(), Json::Arr(runs)),
    ])
    .pretty()
}

fn main() {
    let ops = env_usize("BENCH_UNIVERSAL_OPS", 2_000);
    let samples = env_usize("BENCH_UNIVERSAL_SAMPLES", 5).max(1);
    let timestamp = cli_timestamp();

    let mut report = Report::new(
        "bench_universal",
        "Universal object: pointer-CAS segmented log vs ConsensusCell arena",
        &["workload", "impl", "n", "ops/thread", "ns/op", "max_steps"],
    );
    report.note(format!("ops_per_thread={ops} samples={samples} (median of whole-workload runs)"));
    report.note(
        "timed region includes object creation: the seed path's eager \
         O(n^2*max_ops) arena allocation is part of what the segmented log removes",
    );

    for workload in ["counter", "queue"] {
        for n in THREAD_COUNTS {
            let (cell_ns, cell_steps) = run_one::<CellPath>(workload, n, ops, samples);
            let (ptr_ns, ptr_steps) = run_one::<PtrPath>(workload, n, ops, samples);
            for (name, ns, steps) in
                [(CellPath::NAME, cell_ns, cell_steps), (PtrPath::NAME, ptr_ns, ptr_steps)]
            {
                report.row(&[
                    workload.to_string(),
                    name.to_string(),
                    n.to_string(),
                    ops.to_string(),
                    format!("{ns:.1}"),
                    steps.to_string(),
                ]);
            }
            let speedup = cell_ns / ptr_ns;
            report.note(format!("speedup {workload} n={n}: {speedup:.2}x (cell -> pointer)"));
            // The helping bound must hold on both paths even while racing
            // at full speed; 2n + 8 matches the stress tests' slack.
            for (name, steps) in [(CellPath::NAME, cell_steps), (PtrPath::NAME, ptr_steps)] {
                if steps > 2 * n + 8 {
                    report.fail(format!(
                        "{workload} n={n} {name}: {steps} threading steps exceeds the O(n) bound"
                    ));
                }
            }
            if workload == "counter" && n == 4 && speedup < 1.5 {
                report.note(format!(
                    "WARNING: contended-counter speedup at n=4 is {speedup:.2}x, \
                     below the 1.5x target"
                ));
            }
        }
    }

    // The recorded perf-trajectory file at the repo root: merge this run
    // into the prior runs (never overwrite the history), alongside the
    // standard single-report results/ copy written by finish().
    let config = Json::Obj(vec![
        ("ops_per_thread".into(), Json::num(ops as u64)),
        ("samples".into(), Json::num(samples as u64)),
        (
            "thread_counts".into(),
            Json::Arr(THREAD_COUNTS.iter().map(|n| Json::num(*n as u64)).collect()),
        ),
    ]);
    let prior = std::fs::read_to_string("BENCH_universal.json").ok();
    let merged = merged_trajectory(prior.as_deref(), &report.to_json(), &timestamp, config);
    if let Err(e) = std::fs::write("BENCH_universal.json", merged) {
        eprintln!("could not write BENCH_universal.json: {e}");
        std::process::exit(1);
    }
    println!("  merged into BENCH_universal.json (run timestamp: {timestamp})");
    report.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_json() -> String {
        let mut r = Report::new("bench_universal", "t", &["workload", "impl", "n"]);
        r.row(&["counter".into(), "cell".into(), "1".into()]);
        r.to_json()
    }

    #[test]
    fn legacy_file_is_wrapped_then_appended() {
        // First merge over a pre-schema-2 bare report.
        let merged = merged_trajectory(Some(&report_json()), &report_json(), "t1", Json::Obj(vec![]));
        let doc = Json::parse(&merged).unwrap();
        assert_eq!(doc.get("schema"), Some(&Json::num(2)));
        let runs = doc.get("runs").and_then(Json::as_array).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("timestamp").and_then(Json::as_str), Some("pre-merge"));
        assert_eq!(runs[1].get("timestamp").and_then(Json::as_str), Some("t1"));

        // Second merge over the schema-2 file appends.
        let merged2 = merged_trajectory(Some(&merged), &report_json(), "t2", Json::Obj(vec![]));
        let doc2 = Json::parse(&merged2).unwrap();
        let runs2 = doc2.get("runs").and_then(Json::as_array).unwrap();
        assert_eq!(runs2.len(), 3);
        assert_eq!(runs2[2].get("timestamp").and_then(Json::as_str), Some("t2"));
        assert!(runs2[2].get("report").unwrap().get("rows").is_some());
    }

    #[test]
    fn missing_or_garbage_prior_starts_fresh() {
        for prior in [None, Some("not json at all")] {
            let merged = merged_trajectory(prior, &report_json(), "t", Json::Obj(vec![]));
            let doc = Json::parse(&merged).unwrap();
            assert_eq!(doc.get("runs").and_then(Json::as_array).unwrap().len(), 1);
        }
    }
}
