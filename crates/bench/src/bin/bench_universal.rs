//! P2/P4 — benchmark for the universal-object hot path: the seed
//! `ConsensusCell` arena path (`waitfree_sync::universal_cell`) against
//! the pointer-CAS segmented-log path (`waitfree_sync::universal`) in
//! both decide modes — per-op (`new_per_op`) and batch combining
//! (`new`, the default) — on a contended counter and a FIFO queue at
//! n ∈ {1, 2, 4, 8} threads.
//!
//! Each row records the median wall-clock ns per operation of the
//! workload body (n threads × ops + join). Object construction is
//! *hoisted out of the timed region* (`timing::measure_with_setup`): the
//! seed path's eager O(n²·max_ops) arena is billed to setup, so ns/op
//! compares the hot paths alone. Rows also carry the worst per-op
//! threading-step count (must stay within the O(n) helping bound on
//! every path) and, for the pointer paths, the consensus-decide and
//! CAS-failure counters per completed invoke — the step-complexity
//! numbers the combining layer exists to shrink.
//!
//! Maintains `BENCH_universal.json` in the working directory (the repo
//! root when run via `cargo run -p waitfree-bench --bin bench_universal`)
//! — the recorded perf *trajectory* the README quotes and
//! `bench_trend` gates on. The file is merged into, not overwritten:
//! schema 2 is `{"schema": 2, "runs": [...]}` where each run carries a
//! timestamp (pass `--timestamp <tag>` for reproducible records;
//! defaults to wall-clock epoch seconds), the run's configuration
//! (including a `"construction": "hoisted"` marker so trend comparisons
//! never mix pre- and post-hoisting runs), and the full report. A
//! pre-schema-2 file (a bare report object) is wrapped as the first run
//! with timestamp `"pre-merge"`. The usual single-report
//! `results/bench_universal.json` copy is still written by `finish()`.
//! Environment knobs for the CI smoke job: `BENCH_UNIVERSAL_OPS` (ops
//! per thread, default 2000) and `BENCH_UNIVERSAL_SAMPLES` (median-of
//! samples, default 5).
//!
//! The steady-state rows (`workload == "steady"`) are the checkpointed-
//! truncation before/after: a long fixed op count (default ten million,
//! `BENCH_UNIVERSAL_STEADY_OPS`; `BENCH_UNIVERSAL_STEADY_SAMPLES`
//! medians the checkpointed leg, default 3) on one dynamic object,
//! unbounded log vs checkpointed truncation, with the process RSS
//! *delta* across the timed region recorded in the `rss_mib` column.
//! The unbounded leg retains every decided entry, so its delta grows
//! with total ops; the checkpointed leg must stay flat at the frontier
//! spread. The unbounded leg's ns/op is recorded as `-`: its wall-clock
//! is dominated by page-faulting the whole retained log into existence
//! — the pathology the row's `rss_mib` cell exists to demonstrate — so
//! a ns/op gate on it would gate kernel fault behavior, not this code.
//! Non-steady rows carry `-` in `rss_mib` — one process runs every leg,
//! so only the first allocation surge per sample is attributable, and
//! attributing it per-row would be noise.

use waitfree_bench::json::Json;
use waitfree_bench::timing::measure_with_setup;
use waitfree_bench::trajectory::{cli_timestamp, merge_into_file};
use waitfree_bench::Report;
use waitfree_sched::thread;
use waitfree_objects::counter::{Counter, CounterOp, CounterResp};
use waitfree_objects::queue::{FifoQueue, QueueOp};
use waitfree_sync::universal::{WfHandle, WfUniversal, SEGMENT_SIZE};
use waitfree_sync::universal_cell::CellUniversal;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Checkpoint cadence for the steady-state leg: one checkpoint per
/// segment keeps the truncation overhead at a 1/SEGMENT_SIZE factor
/// while still reclaiming every segment behind the frontier.
const STEADY_EVERY: usize = SEGMENT_SIZE;
/// Thread count for the steady-state rows (one contended object).
const STEADY_THREADS: usize = 4;

/// Resident-set size in MiB read from `/proc/self/status` (`VmRSS:` is
/// reported in kB). `None` off Linux or when the field is absent; the
/// report renders that as `-`.
fn rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Per-thread hot-path counters (pointer paths only; the cell baseline
/// does not instrument its decide loop).
#[derive(Clone, Copy, Default)]
struct HotCounters {
    decides: usize,
    cas_failures: usize,
    invokes: usize,
}

/// Aggregated stats for one workload run (or several merged runs):
/// worst per-op threading steps, plus summed hot-path counters when the
/// path exposes them.
#[derive(Clone, Copy, Default)]
struct WorkStats {
    max_steps: usize,
    hot: Option<HotCounters>,
}

impl WorkStats {
    fn merge(&mut self, other: WorkStats) {
        self.max_steps = self.max_steps.max(other.max_steps);
        match (self.hot.as_mut(), other.hot) {
            (Some(a), Some(b)) => {
                a.decides += b.decides;
                a.cas_failures += b.cas_failures;
                a.invokes += b.invokes;
            }
            (None, Some(b)) => self.hot = Some(b),
            _ => {}
        }
    }

    /// `"x.xxx"` per-invoke rendering of one hot counter, `"-"` when
    /// the path doesn't expose it.
    fn per_invoke(&self, pick: impl Fn(&HotCounters) -> usize) -> String {
        match &self.hot {
            Some(h) => format!("{:.3}", pick(h) as f64 / h.invokes.max(1) as f64),
            None => "-".to_string(),
        }
    }
}

fn wf_stats<S: waitfree_model::ObjectSpec>(h: &WfHandle<S>) -> WorkStats {
    WorkStats {
        max_steps: h.max_threading_steps(),
        hot: Some(HotCounters {
            decides: h.decides(),
            cas_failures: h.cas_failures(),
            invokes: h.invokes(),
        }),
    }
}

/// One universal-object implementation under measurement.
trait UniPath {
    const NAME: &'static str;
    type CounterH: Send + 'static;
    type QueueH: Send + 'static;

    fn counter(n: usize, max_ops: usize) -> Vec<Self::CounterH>;
    fn queue(n: usize, max_ops: usize) -> Vec<Self::QueueH>;
    fn faa(h: &mut Self::CounterH) -> i64;
    fn enq_deq(h: &mut Self::QueueH, v: i64);
    fn counter_stats(h: &Self::CounterH) -> WorkStats;
    fn queue_stats(h: &Self::QueueH) -> WorkStats;
}

/// The pointer-CAS segmented-log path, one decide per op.
struct PtrPath;

impl UniPath for PtrPath {
    const NAME: &'static str = "pointer";
    type CounterH = WfHandle<Counter>;
    type QueueH = WfHandle<FifoQueue>;

    fn counter(n: usize, max_ops: usize) -> Vec<Self::CounterH> {
        WfUniversal::new_per_op(Counter::new(0), n, max_ops)
    }
    fn queue(n: usize, max_ops: usize) -> Vec<Self::QueueH> {
        WfUniversal::new_per_op(FifoQueue::new(), n, max_ops)
    }
    fn faa(h: &mut Self::CounterH) -> i64 {
        match h.invoke(CounterOp::FetchAndAdd(1)) {
            CounterResp::Value(v) => v,
            CounterResp::Ack => unreachable!("fetch-and-add returns a value"),
        }
    }
    fn enq_deq(h: &mut Self::QueueH, v: i64) {
        let _ = h.invoke(QueueOp::Enq(v));
        let _ = h.invoke(QueueOp::Deq);
    }
    fn counter_stats(h: &Self::CounterH) -> WorkStats {
        wf_stats(h)
    }
    fn queue_stats(h: &Self::QueueH) -> WorkStats {
        wf_stats(h)
    }
}

/// The pointer-CAS path with batch combining (the `WfUniversal::new`
/// default): one winning decide threads every pending announced op.
struct BatchedPath;

impl UniPath for BatchedPath {
    const NAME: &'static str = "batched";
    type CounterH = WfHandle<Counter>;
    type QueueH = WfHandle<FifoQueue>;

    fn counter(n: usize, max_ops: usize) -> Vec<Self::CounterH> {
        WfUniversal::new(Counter::new(0), n, max_ops)
    }
    fn queue(n: usize, max_ops: usize) -> Vec<Self::QueueH> {
        WfUniversal::new(FifoQueue::new(), n, max_ops)
    }
    fn faa(h: &mut Self::CounterH) -> i64 {
        PtrPath::faa(h)
    }
    fn enq_deq(h: &mut Self::QueueH, v: i64) {
        PtrPath::enq_deq(h, v);
    }
    fn counter_stats(h: &Self::CounterH) -> WorkStats {
        wf_stats(h)
    }
    fn queue_stats(h: &Self::QueueH) -> WorkStats {
        wf_stats(h)
    }
}

/// The seed `ConsensusCell` arena path (the *before* leg).
struct CellPath;

impl UniPath for CellPath {
    const NAME: &'static str = "cell";
    type CounterH = waitfree_sync::universal_cell::CellHandle<Counter>;
    type QueueH = waitfree_sync::universal_cell::CellHandle<FifoQueue>;

    fn counter(n: usize, max_ops: usize) -> Vec<Self::CounterH> {
        CellUniversal::new(Counter::new(0), n, max_ops)
    }
    fn queue(n: usize, max_ops: usize) -> Vec<Self::QueueH> {
        CellUniversal::new(FifoQueue::new(), n, max_ops)
    }
    fn faa(h: &mut Self::CounterH) -> i64 {
        match h.invoke(CounterOp::FetchAndAdd(1)) {
            CounterResp::Value(v) => v,
            CounterResp::Ack => unreachable!("fetch-and-add returns a value"),
        }
    }
    fn enq_deq(h: &mut Self::QueueH, v: i64) {
        let _ = h.invoke(QueueOp::Enq(v));
        let _ = h.invoke(QueueOp::Deq);
    }
    fn counter_stats(h: &Self::CounterH) -> WorkStats {
        WorkStats { max_steps: h.max_threading_steps(), hot: None }
    }
    fn queue_stats(h: &Self::QueueH) -> WorkStats {
        WorkStats { max_steps: h.max_threading_steps(), hot: None }
    }
}

/// n threads each perform `ops` fetch-and-adds on one shared counter
/// (handles pre-built by the caller, outside the timed region).
fn counter_workload<P: UniPath>(handles: Vec<P::CounterH>, ops: usize) -> WorkStats {
    let joins: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            thread::spawn(move || {
                for _ in 0..ops {
                    P::faa(&mut h);
                }
                P::counter_stats(&h)
            })
        })
        .collect();
    let mut agg = WorkStats::default();
    for j in joins {
        agg.merge(j.join().unwrap());
    }
    agg
}

/// n threads each perform `ops` operations (enq/deq pairs) on one shared
/// FIFO queue (handles pre-built by the caller).
fn queue_workload<P: UniPath>(handles: Vec<P::QueueH>, ops: usize) -> WorkStats {
    let joins: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            thread::spawn(move || {
                for i in 0..ops / 2 {
                    P::enq_deq(&mut h, i as i64);
                }
                P::queue_stats(&h)
            })
        })
        .collect();
    let mut agg = WorkStats::default();
    for j in joins {
        agg.merge(j.join().unwrap());
    }
    agg
}

/// ns/op plus merged stats across all samples for one (path, workload,
/// n) cell. Construction runs in `measure_with_setup`'s untimed setup;
/// ns/op divides by the operations actually executed (the queue
/// workload issues enq/deq pairs, so an odd `ops` rounds down to
/// `2 * (ops / 2)` per thread).
fn run_one<P: UniPath>(workload: &str, n: usize, ops: usize, samples: usize) -> (f64, WorkStats) {
    let mut agg = WorkStats::default();
    let (median, executed) = match workload {
        "counter" => (
            measure_with_setup(
                samples,
                || P::counter(n, ops + 1),
                |hs| agg.merge(counter_workload::<P>(hs, ops)),
            ),
            n * ops,
        ),
        "queue" => (
            measure_with_setup(
                samples,
                || P::queue(n, ops + 1),
                |hs| agg.merge(queue_workload::<P>(hs, ops)),
            ),
            n * 2 * (ops / 2),
        ),
        other => unreachable!("unknown workload {other}"),
    };
    (median.as_nanos() as f64 / executed.max(1) as f64, agg)
}

/// Operations per registration in the churn workload: each generation
/// registers, performs this many fetch-and-adds, and retires.
const CHURN_OPS_PER_GEN: usize = 8;

/// n threads each cycle register → operate → retire on one shared
/// *dynamic* universal object until they have executed `ops` operations:
/// the membership hot path (slot claim, announce-chunk reuse, retirement
/// reclaim) measured alongside the decide hot path. Only the pointer
/// paths appear — the cell baseline has no registry.
fn churn_workload(obj: &WfUniversal<Counter>, n: usize, ops: usize) -> WorkStats {
    let joins: Vec<_> = (0..n)
        .map(|_| {
            let obj = obj.clone();
            thread::spawn(move || {
                let mut agg = WorkStats::default();
                for _ in 0..ops / CHURN_OPS_PER_GEN {
                    let mut h = obj.register();
                    for _ in 0..CHURN_OPS_PER_GEN {
                        let _ = h.invoke(CounterOp::FetchAndAdd(1));
                    }
                    agg.merge(wf_stats(&h));
                    h.retire();
                }
                agg
            })
        })
        .collect();
    let mut agg = WorkStats::default();
    for j in joins {
        agg.merge(j.join().unwrap());
    }
    agg
}

/// ns/op plus merged stats for one churn row (`batched` picks the
/// decide mode). Object construction is hoisted like the static rows;
/// registration/retirement is deliberately *inside* the timed region —
/// membership churn is the workload.
fn run_churn(batched: bool, n: usize, ops: usize, samples: usize) -> (f64, WorkStats) {
    let mut agg = WorkStats::default();
    let median = measure_with_setup(
        samples,
        || {
            if batched {
                WfUniversal::new_dynamic(Counter::new(0), CHURN_OPS_PER_GEN)
            } else {
                WfUniversal::new_dynamic_per_op(Counter::new(0), CHURN_OPS_PER_GEN)
            }
        },
        |obj| agg.merge(churn_workload(&obj, n, ops)),
    );
    let executed = n * (ops / CHURN_OPS_PER_GEN) * CHURN_OPS_PER_GEN;
    (median.as_nanos() as f64 / executed.max(1) as f64, agg)
}

/// n threads hammer one shared *dynamic* counter for `per` ops each —
/// long enough for the checkpointed configuration to cycle through many
/// truncations. Handles retire at the end so the final reclamation pass
/// runs, but the object itself stays alive until after the RSS sample.
fn steady_workload(obj: &WfUniversal<Counter>, n: usize, per: usize) -> WorkStats {
    let joins: Vec<_> = (0..n)
        .map(|_| {
            let obj = obj.clone();
            thread::spawn(move || {
                let mut h = obj.register();
                for _ in 0..per {
                    let _ = h.invoke(CounterOp::FetchAndAdd(1));
                }
                let stats = wf_stats(&h);
                h.retire();
                stats
            })
        })
        .collect();
    let mut agg = WorkStats::default();
    for j in joins {
        agg.merge(j.join().unwrap());
    }
    agg
}

/// One steady-state row: median ns/op plus the first sample's RSS delta
/// across the timed region (later samples reuse allocator pages freed
/// by the first, so only the first delta attributes cleanly). The
/// checkpointed leg runs before the unbounded leg in `main` for the
/// same reason: a fresh heap is the only honest baseline.
fn run_steady(
    checkpointed: bool,
    n: usize,
    per: usize,
    samples: usize,
) -> (f64, Option<f64>, WorkStats) {
    let mut agg = WorkStats::default();
    let mut delta = None;
    let median = measure_with_setup(
        samples,
        || {
            if checkpointed {
                WfUniversal::new_dynamic_checkpointed(Counter::new(0), per + 2, STEADY_EVERY)
            } else {
                WfUniversal::new_dynamic(Counter::new(0), per + 2)
            }
        },
        |obj| {
            let before = rss_mib();
            agg.merge(steady_workload(&obj, n, per));
            if delta.is_none() {
                delta = before.zip(rss_mib()).map(|(b, a)| (a - b).max(0.0));
            }
        },
    );
    (median.as_nanos() as f64 / (n * per).max(1) as f64, delta, agg)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    // Nine samples, not five: the recorded medians feed a ±25% trend
    // gate, and on a single-core host the scheduling-noise spread of a
    // 5-sample median is wider than that.
    let ops = env_usize("BENCH_UNIVERSAL_OPS", 2_000);
    let samples = env_usize("BENCH_UNIVERSAL_SAMPLES", 9).max(1);
    // Churn medians are the noisiest figure of all (the register/retire
    // storms are scheduling-sensitive, with an observed 2x spread at 5
    // samples), so that workload takes 3x the samples.
    let churn_samples = env_usize("BENCH_UNIVERSAL_CHURN_SAMPLES", 3 * samples).max(1);
    let steady_ops = env_usize("BENCH_UNIVERSAL_STEADY_OPS", 10_000_000);
    let steady_samples = env_usize("BENCH_UNIVERSAL_STEADY_SAMPLES", 3).max(1);
    let timestamp = cli_timestamp();

    let mut report = Report::new(
        "bench_universal",
        "Universal object: ConsensusCell arena vs pointer-CAS log (per-op and batched decides)",
        &[
            "workload",
            "impl",
            "n",
            "ops/thread",
            "ns/op",
            "max_steps",
            "decides/op",
            "cas_fail/op",
            "rss_mib",
        ],
    );
    report.note(format!("ops_per_thread={ops} samples={samples} (median of whole-workload runs)"));
    report.note(
        "object construction is hoisted out of the timed region (measure_with_setup): \
         the seed path's eager O(n^2*max_ops) arena is billed to setup, not ns/op; \
         trajectory entries without the \"construction\" config marker predate this \
         and include construction in their figures",
    );
    report.note(
        "decides/op and cas_fail/op are the pointer paths' hot-path counters per \
         completed invoke (the cell baseline is uninstrumented); batch combining \
         exists to shrink exactly these",
    );

    for workload in ["counter", "queue"] {
        for n in THREAD_COUNTS {
            let (cell_ns, cell_stats) = run_one::<CellPath>(workload, n, ops, samples);
            let (ptr_ns, ptr_stats) = run_one::<PtrPath>(workload, n, ops, samples);
            let (bat_ns, bat_stats) = run_one::<BatchedPath>(workload, n, ops, samples);
            let legs = [
                (CellPath::NAME, cell_ns, &cell_stats),
                (PtrPath::NAME, ptr_ns, &ptr_stats),
                (BatchedPath::NAME, bat_ns, &bat_stats),
            ];
            for (name, ns, stats) in legs {
                report.row(&[
                    workload.to_string(),
                    name.to_string(),
                    n.to_string(),
                    ops.to_string(),
                    format!("{ns:.1}"),
                    stats.max_steps.to_string(),
                    stats.per_invoke(|h| h.decides),
                    stats.per_invoke(|h| h.cas_failures),
                    "-".to_string(),
                ]);
            }
            report.note(format!(
                "speedup {workload} n={n}: {:.2}x (cell -> pointer), {:.2}x (pointer -> batched)",
                cell_ns / ptr_ns,
                ptr_ns / bat_ns,
            ));
            // The helping bound must hold on every path even while racing
            // at full speed; 2n + 8 matches the stress tests' slack.
            for (name, _, stats) in legs {
                if stats.max_steps > 2 * n + 8 {
                    report.fail(format!(
                        "{workload} n={n} {name}: {} threading steps exceeds the O(n) bound",
                        stats.max_steps
                    ));
                }
            }
            if workload == "counter" && n == 4 {
                let speedup = ptr_ns / bat_ns;
                if speedup < 1.3 {
                    report.note(format!(
                        "WARNING: contended-counter batched speedup at n=4 is {speedup:.2}x, \
                         below the 1.3x target (expected on single-core hosts, where threads \
                         serialize and announce-time backlogs rarely form; the combining win \
                         shows up in decides/op and the failpoint-driven step-count tests)"
                    ));
                }
            }
        }
    }

    // The churn workload: dynamic membership (register → operate →
    // retire per generation) on the pointer paths. The helping bound
    // here is over the registry high-water, which concurrent claim races
    // can push transiently past n, so the gate uses 4n + 8 slack.
    report.note(format!(
        "churn workload: every {CHURN_OPS_PER_GEN} ops the thread retires its handle and \
         re-registers (slot claim + announce reuse timed in); cell has no registry, \
         so only the pointer paths have churn rows"
    ));
    for n in THREAD_COUNTS {
        let (ptr_ns, ptr_stats) = run_churn(false, n, ops, churn_samples);
        let (bat_ns, bat_stats) = run_churn(true, n, ops, churn_samples);
        let legs = [
            (PtrPath::NAME, ptr_ns, &ptr_stats),
            (BatchedPath::NAME, bat_ns, &bat_stats),
        ];
        for (name, ns, stats) in legs {
            report.row(&[
                "churn".to_string(),
                name.to_string(),
                n.to_string(),
                ops.to_string(),
                format!("{ns:.1}"),
                stats.max_steps.to_string(),
                stats.per_invoke(|h| h.decides),
                stats.per_invoke(|h| h.cas_failures),
                "-".to_string(),
            ]);
            if stats.max_steps > 4 * n + 8 {
                report.fail(format!(
                    "churn n={n} {name}: {} threading steps exceeds the O(active) bound \
                     (registry high-water ≤ 2n under churn)",
                    stats.max_steps
                ));
            }
        }
    }

    // The steady-state leg: checkpointed truncation vs the unbounded
    // log over a long fixed op count, ns/op and RSS delta per row. The
    // checkpointed leg runs first — its RSS reading needs a heap the
    // unbounded leg hasn't already grown (freed pages stay resident and
    // would mask the comparison).
    let steady_per = steady_ops / STEADY_THREADS;
    report.note(format!(
        "steady workload: {STEADY_THREADS} threads x {steady_per} ops on one dynamic object \
         ({steady_samples} sample(s)); checkpointed cadence every {STEADY_EVERY} decided ops; \
         rss_mib is the first sample's VmRSS delta across the timed region (checkpointed leg \
         measured first, on the unexpanded heap)"
    ));
    {
        let n = STEADY_THREADS;
        let (cp_ns, cp_rss, cp_stats) = run_steady(true, n, steady_per, steady_samples);
        // One sample for the reference leg: it exists for its RSS
        // figure, and its timing (see the module doc) isn't recorded.
        let (un_ns, un_rss, un_stats) = run_steady(false, n, steady_per, 1);
        let legs = [
            ("checkpointed", Some(cp_ns), cp_rss, &cp_stats),
            ("unbounded", None, un_rss, &un_stats),
        ];
        for (name, ns, rss, stats) in legs {
            report.row(&[
                "steady".to_string(),
                name.to_string(),
                n.to_string(),
                steady_per.to_string(),
                ns.map_or_else(|| "-".to_string(), |v| format!("{v:.1}")),
                stats.max_steps.to_string(),
                stats.per_invoke(|h| h.decides),
                stats.per_invoke(|h| h.cas_failures),
                rss.map_or_else(|| "-".to_string(), |r| format!("{r:.1}")),
            ]);
            // Checkpoint positions are extra helping-scan iterations:
            // the O(n) bound gains a 1/cadence factor, nothing more.
            let base = 2 * n + 8;
            if stats.max_steps > base + base / STEADY_EVERY + 2 {
                report.fail(format!(
                    "steady {name}: {} threading steps exceeds the O(n) bound \
                     (cadence slack included)",
                    stats.max_steps
                ));
            }
        }
        if let (Some(cp), Some(un)) = (cp_rss, un_rss) {
            report.note(format!(
                "steady RSS delta: checkpointed {cp:.1} MiB vs unbounded {un:.1} MiB \
                 ({:.0}x) over {steady_ops} total ops; unbounded wall-clock was \
                 {un_ns:.1} ns/op sampled once (not recorded as a measurement)",
                un / cp.max(0.1)
            ));
        }
    }

    // The recorded perf-trajectory file at the repo root: merge this run
    // into the prior runs (never overwrite the history), alongside the
    // standard single-report results/ copy written by finish().
    let config = Json::Obj(vec![
        ("ops_per_thread".into(), Json::num(ops as u64)),
        ("samples".into(), Json::num(samples as u64)),
        ("churn_samples".into(), Json::num(churn_samples as u64)),
        (
            "thread_counts".into(),
            Json::Arr(THREAD_COUNTS.iter().map(|n| Json::num(*n as u64)).collect()),
        ),
        ("construction".into(), Json::Str("hoisted".into())),
        // The dynamic-membership registry replaced the static announce
        // array (slot indirection on the helping scan, churn workload
        // rows): like the "construction" marker above, this keys a new
        // config group so pre-membership figures never gate post-
        // membership runs.
        ("membership".into(), Json::Str("dynamic".into())),
        // Checkpointed truncation replaced the Arc-per-entry log (Box
        // arena + segment reclamation, steady-state rows with an RSS
        // column): a new config group, so Arc-era figures and the new
        // hot path never gate each other.
        ("reclaim".into(), Json::Str("checkpoint".into())),
        ("steady_ops".into(), Json::num(steady_ops as u64)),
    ]);
    merge_into_file("BENCH_universal.json", &report.to_json(), &timestamp, config);
    report.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_merge_maxes_steps_and_sums_counters() {
        let mut a = WorkStats { max_steps: 3, hot: None };
        a.merge(WorkStats {
            max_steps: 7,
            hot: Some(HotCounters { decides: 2, cas_failures: 1, invokes: 4 }),
        });
        a.merge(WorkStats {
            max_steps: 5,
            hot: Some(HotCounters { decides: 4, cas_failures: 0, invokes: 6 }),
        });
        assert_eq!(a.max_steps, 7);
        let h = a.hot.unwrap();
        assert_eq!((h.decides, h.cas_failures, h.invokes), (6, 1, 10));
        assert_eq!(a.per_invoke(|h| h.decides), "0.600");
        assert_eq!(a.per_invoke(|h| h.cas_failures), "0.100");
        assert_eq!(WorkStats::default().per_invoke(|h| h.decides), "-");
    }
}
