//! E9 — Theorem 15 / Corollary 17: memory-to-memory `move` solves
//! n-process consensus — despite returning no value.

use waitfree_bench::{verdict, Report};
use waitfree_core::protocols::mem_move::{MoveConsensus2, MoveConsensusN};
use waitfree_explorer::check::{check_consensus, CheckSettings};
use waitfree_explorer::random::{run_random, RandomSettings};

fn main() {
    let mut report = Report::new(
        "thm_15_move",
        "Theorem 15: memory-to-memory move solves n-process consensus",
        &["protocol", "n", "method", "result"],
    );

    {
        let (p, o) = MoveConsensus2::setup();
        let check = check_consensus(&p, &o, 2, &CheckSettings::default());
        if !check.is_ok() {
            report.fail(format!("2-process form: {:?}", check.violation));
        }
        report.row(&[
            "two-process (write ∥ move)".into(),
            "2".into(),
            "exhaustive".into(),
            verdict(&check),
        ]);
    }

    for n in [2, 3] {
        let (p, o) = MoveConsensusN::setup(n);
        let check = check_consensus(&p, &o, n, &CheckSettings::default());
        if !check.is_ok() {
            report.fail(format!("general form n={n}: {:?}", check.violation));
        }
        report.row(&[
            "general (rounds + attacks)".into(),
            n.to_string(),
            "exhaustive".into(),
            verdict(&check),
        ]);
    }

    for n in [6, 10] {
        let (p, o) = MoveConsensusN::setup(n);
        let settings = RandomSettings { runs: 1500, ..RandomSettings::default() };
        let r = run_random(&p, &o, n, &settings);
        if !r.is_ok() {
            report.fail(format!("general form n={n}: {:?}", r.violation));
        }
        report.row(&[
            "general (rounds + attacks)".into(),
            n.to_string(),
            format!("randomized ({} runs)", settings.runs),
            if r.is_ok() { "ok".into() } else { "violated".into() },
        ]);
    }

    report.note("move returns nothing: level-∞ power can live entirely in the state effect");
    report.note("Corollary 17: move is not implementable from read/write/TAS/swap/FAA");
    report.finish();
}
