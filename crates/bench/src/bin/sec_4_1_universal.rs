//! E15 — §4.1: the universal construction, wait-free and strongly
//! wait-free.
//!
//! Three demonstrations:
//!
//! 1. queue/stack/counter built from fetch-and-cons produce only
//!    linearizable histories (explorer-driven, checker-verified);
//! 2. the replay-length measurement separating the wait-free variant
//!    (k-th operation replays k entries) from the strongly wait-free
//!    checkpointed variant (bounded replay) — the paper's O(k) vs O(n);
//! 3. the hardware universal object ([`waitfree_sync`]) under real
//!    threads: exact counters and conserved queues.

use waitfree_bench::Report;
use waitfree_core::universal::log::{LogFrontEnd, LogItem, LogUniversal};
use waitfree_explorer::impl_sim::{all_histories, run_random};
use waitfree_model::{linearize, PendingPolicy, Pid, Val};
use waitfree_objects::counter::{Counter, CounterOp};
use waitfree_objects::list::ConsList;
use waitfree_objects::queue::{FifoQueue, QueueOp};
use waitfree_objects::stack::{Stack, StackOp};
use waitfree_sync::wrappers::WfCounterHandle;

fn main() {
    let mut report = Report::new(
        "sec_4_1_universal",
        "§4.1: universal construction from fetch-and-cons",
        &["demonstration", "result"],
    );

    // 1a. Exhaustive: universal queue, 2 procs.
    {
        let fe = LogFrontEnd { initial: FifoQueue::new() };
        let workloads = vec![vec![QueueOp::Enq(1), QueueOp::Deq], vec![QueueOp::Enq(2), QueueOp::Deq]];
        let histories =
            all_histories(&fe, &ConsList::<LogItem<QueueOp>>::new(), &workloads, 1_000_000);
        let ok = histories
            .iter()
            .all(|h| linearize(h, &FifoQueue::new(), PendingPolicy::MayTakeEffect).outcome.is_ok());
        if !ok {
            report.fail("universal queue produced a non-linearizable history");
        }
        report.row(&[
            "universal FIFO queue, exhaustive 2×2".into(),
            format!("{} histories, linearizable: {ok}", histories.len()),
        ]);
    }
    // 1b. Randomized: universal stack, 3 procs.
    {
        let fe = LogFrontEnd { initial: Stack::new() };
        let workloads: Vec<Vec<StackOp>> = (0..3)
            .map(|p| vec![StackOp::Push(p as Val), StackOp::Pop, StackOp::Push(10 + p as Val)])
            .collect();
        let mut ok = true;
        for seed in 0..300 {
            let run = run_random(&fe, ConsList::<LogItem<StackOp>>::new(), &workloads, seed, 400);
            ok &= linearize(&run.history, &Stack::new(), PendingPolicy::MayTakeEffect)
                .outcome
                .is_ok();
        }
        if !ok {
            report.fail("universal stack produced a non-linearizable history");
        }
        report.row(&["universal stack, randomized 3×3 (300 runs)".into(), format!("linearizable: {ok}")]);
    }

    // 2. Replay lengths: plain vs checkpointed.
    {
        let ops = 200;
        let mut plain = LogUniversal::new(Counter::new(0), false);
        let mut ckpt = LogUniversal::new(Counter::new(0), true);
        for _ in 0..ops {
            plain.invoke(Pid(0), CounterOp::Add(1));
            ckpt.invoke(Pid(0), CounterOp::Add(1));
        }
        report.row(&[
            format!("replay length after {ops} ops (wait-free, no truncation)"),
            format!("last={} max={} log={}", plain.last_replay(), plain.max_replay(), plain.log_len()),
        ]);
        report.row(&[
            format!("replay length after {ops} ops (strongly wait-free, checkpointed)"),
            format!("last={} max={} log={}", ckpt.last_replay(), ckpt.max_replay(), ckpt.log_len()),
        ]);
        if ckpt.max_replay() > 1 || plain.max_replay() != ops - 1 {
            report.fail("replay-length shape does not match §4.1's analysis");
        }
    }

    // 3. Hardware universal object under real threads.
    {
        let threads = 4;
        let per = 2000;
        let handles = WfCounterHandle::create(threads, per + 1);
        let joins: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                waitfree_sched::thread::spawn(move || {
                    for _ in 0..per {
                        h.fetch_add(1);
                    }
                    h
                })
            })
            .collect();
        let mut finished: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let total = finished[0].get();
        let expected = (threads * per) as Val;
        if total != expected {
            report.fail(format!("hardware counter lost updates: {total} != {expected}"));
        }
        report.row(&[
            format!("hardware wait-free counter, {threads} threads × {per} ops"),
            format!("total = {total} (expected {expected})"),
        ]);
    }

    report.note("§4.1: the fetch-and-cons is where the operation 'really happens';");
    report.note("checkpointing = 'replace the cdr of its operation with its newly-reconstructed state'");
    report.finish();
}
