//! E11 — Theorems 19 and 20: atomic m-register assignment solves
//! m-process consensus directly, and 2m-2-process consensus via the
//! two-group construction — the parametric middle of Figure 1-1.

use waitfree_bench::{verdict, Report};
use waitfree_core::protocols::assignment::{AssignConsensus, WideAssignConsensus};
use waitfree_explorer::check::{check_consensus, CheckSettings, Violation};
use waitfree_explorer::random::{run_random, RandomSettings};

fn main() {
    let mut report = Report::new(
        "thm_19_assignment",
        "Theorems 19/20: m-register assignment solves m and 2m-2 processes",
        &["protocol", "width m", "processes n", "method", "result"],
    );

    // Theorem 19: width n serves n.
    for n in [2, 3] {
        let (p, o) = AssignConsensus::setup(n);
        let check = check_consensus(&p, &o, n, &CheckSettings::default());
        if !check.is_ok() {
            report.fail(format!("Thm 19 n={n}: {:?}", check.violation));
        }
        report.row(&[
            "Thm 19 (direct)".into(),
            n.to_string(),
            n.to_string(),
            "exhaustive".into(),
            verdict(&check),
        ]);
    }
    for n in [5, 7] {
        let (p, o) = AssignConsensus::setup(n);
        let settings = RandomSettings { runs: 800, ..RandomSettings::default() };
        let r = run_random(&p, &o, n, &settings);
        if !r.is_ok() {
            report.fail(format!("Thm 19 n={n}: {:?}", r.violation));
        }
        report.row(&[
            "Thm 19 (direct)".into(),
            n.to_string(),
            n.to_string(),
            format!("randomized ({} runs)", settings.runs),
            if r.is_ok() { "ok".into() } else { "violated".into() },
        ]);
    }

    // Theorem 20: width m serves 2m-2.
    {
        let (p, o) = WideAssignConsensus::setup(2);
        let check = check_consensus(&p, &o, 2, &CheckSettings::default());
        if !check.is_ok() {
            report.fail(format!("Thm 20 m=2: {:?}", check.violation));
        }
        report.row(&[
            "Thm 20 (two groups)".into(),
            "2".into(),
            "2".into(),
            "exhaustive".into(),
            verdict(&check),
        ]);
    }
    {
        // m=3 → n=4: bounded exhaustive (budget-capped) + randomized.
        let (p, o) = WideAssignConsensus::setup(3);
        let settings = CheckSettings { crashes: false, max_configs: 400_000 };
        let check = check_consensus(&p, &o, 4, &settings);
        match &check.violation {
            None => {}
            Some(Violation::Budget { .. }) => {}
            Some(v) => report.fail(format!("Thm 20 m=3: {v}")),
        }
        report.row(&[
            "Thm 20 (two groups)".into(),
            "3".into(),
            "4".into(),
            "exhaustive (budget-capped)".into(),
            verdict(&check),
        ]);
        let (p, o) = WideAssignConsensus::setup(3);
        let settings = RandomSettings { runs: 3000, ..RandomSettings::default() };
        let r = run_random(&p, &o, 4, &settings);
        if !r.is_ok() {
            report.fail(format!("Thm 20 m=3 randomized: {:?}", r.violation));
        }
        report.row(&[
            "Thm 20 (two groups)".into(),
            "3".into(),
            "4".into(),
            format!("randomized ({} runs, crashes)", settings.runs),
            if r.is_ok() { format!("ok ({} winners seen)", r.decisions_seen.len()) } else { "violated".into() },
        ]);
    }
    {
        let (p, o) = WideAssignConsensus::setup(4);
        let settings = RandomSettings { runs: 1500, ..RandomSettings::default() };
        let r = run_random(&p, &o, 6, &settings);
        if !r.is_ok() {
            report.fail(format!("Thm 20 m=4: {:?}", r.violation));
        }
        report.row(&[
            "Thm 20 (two groups)".into(),
            "4".into(),
            "6".into(),
            format!("randomized ({} runs, crashes)", settings.runs),
            if r.is_ok() { "ok".into() } else { "violated".into() },
        ]);
    }

    report.note("Thm 19: assign id to private + shared registers; earliest assigner = unique");
    report.note("participant whose shared marks were all overwritten by later assigners");
    report.note("Thm 20: per-group Thm 19, then cross-group precedence graph; decide a source's group value");
    report.note("with Thm 22 (thm_22_assignment_impossible): consensus is irreducible for even n");
    report.finish();
}
