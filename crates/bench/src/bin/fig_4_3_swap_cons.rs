//! E13 — Figures 4-3/4-4: constant-time fetch-and-cons from
//! memory-to-memory swap.
//!
//! Drives the swap-based front-end through exhaustive (2 processes) and
//! randomized (3–4 processes) schedules; every produced history is fed to
//! the generic linearizability checker against the sequential
//! fetch-and-cons specification. Also measures the constant thread-on
//! cost (3 low-level steps) versus the linear read-back walk.

use waitfree_bench::Report;
use waitfree_core::universal::swap_cons::SwapFetchAndCons;
use waitfree_explorer::impl_sim::{all_histories, run_random, run_schedule};
use waitfree_model::{linearize, ObjectSpec, PendingPolicy, Pid, Val};

/// Sequential fetch-and-cons spec for the checker.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
struct FacSpec(Vec<Val>);

impl ObjectSpec for FacSpec {
    type Op = Val;
    type Resp = Vec<Val>;
    fn apply(&mut self, _pid: Pid, x: &Val) -> Vec<Val> {
        let old = self.0.clone();
        self.0.insert(0, *x);
        old
    }
}

fn main() {
    let mut report = Report::new(
        "fig_4_3_swap_cons",
        "Figures 4-3/4-4: fetch-and-cons from memory-to-memory swap",
        &["scenario", "histories / runs", "linearizable"],
    );

    // Exhaustive, 2 processes × 1 op.
    {
        let (fe, arena) = SwapFetchAndCons::setup(2, 1);
        let histories = all_histories(&fe, &arena, &[vec![10], vec![20]], 1_000_000);
        let ok = histories
            .iter()
            .all(|h| linearize(h, &FacSpec::default(), PendingPolicy::MayTakeEffect).outcome.is_ok());
        if !ok {
            report.fail("exhaustive 2x1: non-linearizable history");
        }
        report.row(&[
            "exhaustive, 2 procs × 1 op".into(),
            histories.len().to_string(),
            ok.to_string(),
        ]);
    }
    // Exhaustive, 2 processes × 2 ops.
    {
        let (fe, arena) = SwapFetchAndCons::setup(2, 2);
        let histories = all_histories(&fe, &arena, &[vec![10, 11], vec![20, 21]], 3_000_000);
        let ok = histories
            .iter()
            .all(|h| linearize(h, &FacSpec::default(), PendingPolicy::MayTakeEffect).outcome.is_ok());
        if !ok {
            report.fail("exhaustive 2x2: non-linearizable history");
        }
        report.row(&[
            "exhaustive, 2 procs × 2 ops".into(),
            histories.len().to_string(),
            ok.to_string(),
        ]);
    }
    // Randomized, 4 processes.
    {
        let (fe, arena) = SwapFetchAndCons::setup(4, 3);
        let workloads: Vec<Vec<Val>> =
            (0..4).map(|p| (0..3).map(|k| (p * 10 + k) as Val).collect()).collect();
        let runs = 500;
        let mut ok = true;
        for seed in 0..runs {
            let run = run_random(&fe, arena.clone(), &workloads, seed, 600);
            ok &= linearize(&run.history, &FacSpec::default(), PendingPolicy::MayTakeEffect)
                .outcome
                .is_ok();
        }
        if !ok {
            report.fail("randomized 4x3: non-linearizable history");
        }
        report.row(&["randomized, 4 procs × 3 ops".into(), runs.to_string(), ok.to_string()]);
    }
    // Cost shape: thread-on is constant, walk is linear.
    {
        let (fe, arena) = SwapFetchAndCons::setup(1, 6);
        let run = run_schedule(&fe, arena, &[vec![1, 2, 3, 4, 5, 6]], &vec![0usize; 300]);
        // op k (0-based) costs 4 + 2k steps.
        let expected: usize = (0..6).map(|k| 4 + 2 * k).sum();
        if run.lo_steps[0] != expected {
            report.fail(format!("cost model mismatch: {} vs {expected}", run.lo_steps[0]));
        }
        report.row(&[
            "cost: 6 sequential ops, steps (4+2k each)".into(),
            run.lo_steps[0].to_string(),
            (run.lo_steps[0] == expected).to_string(),
        ]);
    }

    report.note("thread-on = write item, write self-pointing next, one atomic swap: O(1)");
    report.note("the swap atomically re-anchors the list and links the new cell to the old head");
    report.finish();
}
