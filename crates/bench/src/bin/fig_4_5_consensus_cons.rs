//! E14 — Figure 4-5: wait-free fetch-and-cons from rounds of consensus,
//! with Lemmas 23–25 as checked properties.
//!
//! The construction is driven through randomized schedules at n = 2..4;
//! every history is verified against the paper's own §4.2 linearizability
//! criterion (coherent views + real-time suffix order), and per-operation
//! step counts are checked against the ≤ n-rounds bound.

use waitfree_bench::Report;
use waitfree_core::universal::consensus_cons::{verify_history, ConsensusFetchAndCons};
use waitfree_explorer::impl_sim::run_random;
use waitfree_model::Val;

fn main() {
    let mut report = Report::new(
        "fig_4_5_consensus_cons",
        "Figure 4-5: fetch-and-cons from n rounds of consensus",
        &["n", "runs", "all histories linearizable", "max lo-steps per op (bound)"],
    );

    for n in [2, 3, 4] {
        let (fe, rep) = ConsensusFetchAndCons::setup(n);
        let workloads: Vec<Vec<Val>> =
            (0..n).map(|p| (0..2).map(|k| (p * 10 + k) as Val).collect()).collect();
        let runs = 400;
        let mut all_ok = true;
        let mut max_steps_per_op = 0usize;
        // Per-op bound: announce + 2n scan + catch-up + 6 steps × n rounds.
        let bound = 1 + 2 * n + 1 + 6 * n;
        for seed in 0..runs {
            let run = run_random(&fe, rep.clone(), &workloads, seed as u64, 200 * n);
            all_ok &= verify_history(&run.history);
            for (p, steps) in run.lo_steps.iter().enumerate() {
                let per_op = steps / workloads[p].len().max(1);
                max_steps_per_op = max_steps_per_op.max(per_op);
            }
        }
        if !all_ok {
            report.fail(format!("n={n}: non-linearizable fetch-and-cons history"));
        }
        if max_steps_per_op > bound {
            report.fail(format!("n={n}: {max_steps_per_op} steps/op exceeds bound {bound}"));
        }
        report.row(&[
            n.to_string(),
            runs.to_string(),
            all_ok.to_string(),
            format!("{max_steps_per_op} (≤ {bound})"),
        ]);
    }

    report.note("Lemma 23: every round ≤ maxRound has a winner (construction invariant)");
    report.note("Lemma 24: views are coherent — pairwise one is a suffix of the other (checked)");
    report.note("Lemma 25: real-time precedence implies the suffix relation (checked)");
    report.note("≤ n rounds of consensus per operation: polynomial consensus ⇒ polynomial fetch-and-cons");
    report.finish();
}
