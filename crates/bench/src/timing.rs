//! A minimal, dependency-free timing harness for the `benches/`
//! programs: warm up, auto-scale the iteration count to a target
//! measurement window, and report the median of several samples.
//!
//! This deliberately trades statistical machinery for zero dependencies;
//! the benches are comparative (same machine, same run), which medians
//! over a fixed wall-clock budget serve well enough.

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 7;
/// Target wall-clock length of one sample.
const SAMPLE_WINDOW: Duration = Duration::from_millis(120);

/// Time `f`, printing `group/name: <median> per iter (<iters> iters)`.
///
/// The closure is first run once (warm-up + cost estimate), then timed in
/// batches sized so each sample takes roughly [`SAMPLE_WINDOW`].
pub fn bench<F: FnMut()>(group: &str, name: &str, mut f: F) {
    // Warm-up and cost estimate.
    let start = Instant::now();
    f();
    let once = start.elapsed().max(Duration::from_nanos(1));
    let iters = (SAMPLE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

    let mut samples: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed() / iters as u32
        })
        .collect();
    samples.sort_unstable();
    let median = samples[SAMPLES / 2];
    println!("{group}/{name}: {} per iter ({iters} iters x {SAMPLES} samples)", fmt(median));
}

/// Time one call of `f` per sample (no batching) and return the median
/// wall-clock duration over `samples` runs, after one untimed warm-up.
///
/// For workload-shaped benchmarks — whole multi-threaded runs taking
/// milliseconds each — where the caller wants the number back (to emit
/// JSON, compute speedups) rather than a printed line. The per-call
/// median tolerates scheduler noise the same way [`bench`]'s does.
#[must_use]
pub fn measure<F: FnMut()>(samples: usize, mut f: F) -> Duration {
    assert!(samples > 0, "need at least one sample");
    f(); // warm-up
    let mut timings: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    timings.sort_unstable();
    timings[samples / 2]
}

/// Like [`measure`], but each sample (and the warm-up) first runs
/// `setup` *outside* the timed region and hands its product to `run`.
///
/// For workloads whose construction cost must not pollute the per-op
/// figure — e.g. the universal objects, where the seed path's eager
/// O(n²·max_ops) arena allocation would otherwise dominate short runs —
/// while still building a fresh object for every sample so no state
/// leaks between timings.
#[must_use]
pub fn measure_with_setup<T, S, R>(samples: usize, mut setup: S, mut run: R) -> Duration
where
    S: FnMut() -> T,
    R: FnMut(T),
{
    assert!(samples > 0, "need at least one sample");
    run(setup()); // warm-up
    let mut timings: Vec<Duration> = (0..samples)
        .map(|_| {
            let input = setup();
            let start = Instant::now();
            run(input);
            start.elapsed()
        })
        .collect();
    timings.sort_unstable();
    timings[samples / 2]
}

/// Human formatting: pick ns/µs/ms/s by magnitude.
fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_picks_sensible_units() {
        assert_eq!(fmt(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt(Duration::from_micros(50)), "50.00 µs");
        assert_eq!(fmt(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(fmt(Duration::from_secs(50)), "50.00 s");
    }

    #[test]
    fn bench_runs_the_closure() {
        let mut count = 0u64;
        bench("t", "noop", || count += 1);
        assert!(count > 0);
    }

    #[test]
    fn measure_returns_a_median_and_runs_warmup_plus_samples() {
        let mut count = 0u64;
        let d = measure(3, || count += 1);
        assert_eq!(count, 4, "one warm-up + three samples");
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn measure_with_setup_excludes_setup_from_the_timed_region() {
        let mut setups = 0u64;
        let mut runs = 0u64;
        let d = measure_with_setup(
            3,
            || {
                setups += 1;
                // Costly "construction": visibly slower than the run.
                waitfree_sched::thread::sleep(Duration::from_millis(20));
                7u64
            },
            |v| {
                assert_eq!(v, 7);
                runs += 1;
            },
        );
        assert_eq!(setups, 4, "one warm-up + three samples");
        assert_eq!(runs, 4);
        assert!(
            d < Duration::from_millis(20),
            "median {d:?} includes the 20ms setup sleep"
        );
    }
}
