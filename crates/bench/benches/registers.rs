//! P3 — step cost of the register constructions: how many base-register
//! operations one high-level operation needs at each level of the tower,
//! and the simulated-time cost of driving them.

use waitfree_bench::timing::bench;
use waitfree_explorer::impl_sim::{run_random, run_schedule};
use waitfree_model::Pid;
use waitfree_objects::register::RegOp;
use waitfree_registers::base::{TypedBank, TypedOp};
use waitfree_registers::constructions::{MrswToMrmw, SrswToMrsw, UnaryMultivalued};
use waitfree_registers::snapshot::{SnapOp, SnapshotFrontEnd};

fn main() {
    let group = "register_constructions";

    bench(group, "unary_multivalued_write_k8", || {
        // The weak bank is nondeterministic, so drive it through the
        // randomized runner (seeded: reproducible).
        let (fe, bank) = UnaryMultivalued::setup(8, 0);
        let _ = run_random(&fe, bank, &[vec![RegOp::Write(7)], vec![]], 1, 0);
    });

    for readers in [2usize, 4] {
        bench(group, &format!("srsw_to_mrsw_read/{readers}"), || {
            let (fe, bank) = SrswToMrsw::setup(readers, 0);
            let mut workloads = vec![vec![RegOp::Write(5)]];
            for _ in 0..readers {
                workloads.push(vec![RegOp::Read]);
            }
            let schedule: Vec<usize> =
                (0..(readers + 1) * 16).map(|i| i % (readers + 1)).collect();
            let _ = run_schedule(&fe, bank, &workloads, &schedule);
        });
    }

    for writers in [2usize, 4, 8] {
        bench(group, &format!("mrsw_to_mrmw_write/{writers}"), || {
            let (fe, bank) = MrswToMrmw::setup(writers, 0);
            let workloads: Vec<Vec<RegOp>> =
                (0..writers).map(|i| vec![RegOp::Write(i as i64)]).collect();
            let schedule: Vec<usize> = (0..writers * 8).map(|i| i % writers).collect();
            let _ = run_schedule(&fe, bank, &workloads, &schedule);
        });
    }

    for n in [2usize, 4, 8] {
        bench(group, &format!("snapshot_scan/{n}"), || {
            let (fe, bank) = SnapshotFrontEnd::setup(n, 0);
            let mut workloads = vec![vec![SnapOp::Scan]];
            for _ in 1..n {
                workloads.push(vec![]);
            }
            let _ = run_schedule(&fe, bank, &workloads, &vec![0usize; 4 * n * n]);
        });
    }

    // Baseline: a raw typed-bank write, for scale.
    bench(group, "raw_bank_write", || {
        use waitfree_model::ObjectSpec;
        let mut bank = TypedBank::new(vec![0i64; 4]);
        let _ = bank.apply(Pid(0), &TypedOp::Write(0, 1));
    });
}
