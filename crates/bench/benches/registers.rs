//! P3 — step cost of the register constructions: how many base-register
//! operations one high-level operation needs at each level of the tower,
//! and the simulated-time cost of driving them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use waitfree_explorer::impl_sim::{run_random, run_schedule};
use waitfree_model::Pid;
use waitfree_objects::register::RegOp;
use waitfree_registers::base::{TypedBank, TypedOp};
use waitfree_registers::constructions::{MrswToMrmw, SrswToMrsw, UnaryMultivalued};
use waitfree_registers::snapshot::{SnapOp, SnapshotFrontEnd};

fn construction_costs(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_constructions");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("unary_multivalued_write_k8", |b| {
        // The weak bank is nondeterministic, so drive it through the
        // randomized runner (seeded: reproducible).
        b.iter(|| {
            let (fe, bank) = UnaryMultivalued::setup(8, 0);
            run_random(&fe, bank, &[vec![RegOp::Write(7)], vec![]], 1, 0)
        });
    });

    for readers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("srsw_to_mrsw_read", readers),
            &readers,
            |b, &r| {
                b.iter(|| {
                    let (fe, bank) = SrswToMrsw::setup(r, 0);
                    let mut workloads = vec![vec![RegOp::Write(5)]];
                    for _ in 0..r {
                        workloads.push(vec![RegOp::Read]);
                    }
                    let schedule: Vec<usize> = (0..(r + 1) * 16).map(|i| i % (r + 1)).collect();
                    run_schedule(&fe, bank, &workloads, &schedule)
                });
            },
        );
    }

    for writers in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("mrsw_to_mrmw_write", writers),
            &writers,
            |b, &n| {
                b.iter(|| {
                    let (fe, bank) = MrswToMrmw::setup(n, 0);
                    let workloads: Vec<Vec<RegOp>> =
                        (0..n).map(|i| vec![RegOp::Write(i as i64)]).collect();
                    let schedule: Vec<usize> = (0..n * 8).map(|i| i % n).collect();
                    run_schedule(&fe, bank, &workloads, &schedule)
                });
            },
        );
    }

    for n in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("snapshot_scan", n), &n, |b, &n| {
            b.iter(|| {
                let (fe, bank) = SnapshotFrontEnd::setup(n, 0);
                let mut workloads = vec![vec![SnapOp::Scan]];
                for _ in 1..n {
                    workloads.push(vec![]);
                }
                run_schedule(&fe, bank, &workloads, &vec![0usize; 4 * n * n])
            });
        });
    }

    // Baseline: a raw typed-bank write, for scale.
    group.bench_function("raw_bank_write", |b| {
        use waitfree_model::ObjectSpec;
        b.iter(|| {
            let mut bank = TypedBank::new(vec![0i64; 4]);
            bank.apply(Pid(0), &TypedOp::Write(0, 1))
        });
    });

    group.finish();
}

criterion_group!(benches, construction_costs);
criterion_main!(benches);
