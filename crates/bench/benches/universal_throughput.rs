//! P1 — throughput of the wait-free universal objects against lock-based
//! and specialized lock-free baselines, across thread counts.
//!
//! Expected shape (the paper makes no quantitative claims): the universal
//! construction pays for its generality — specialized lock-free objects
//! and even mutexes beat it on raw throughput — but it is the only one of
//! the three with a per-operation *bound* that survives adversarial
//! scheduling and crashes.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::thread;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use waitfree_sync::locked::{LockedCounter, LockedQueue};
use waitfree_sync::lockfree::MsQueue;
use waitfree_sync::wrappers::{WfCounterHandle, WfQueueHandle};

const OPS_PER_THREAD: usize = 2_000;

fn counter_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for threads in [1usize, 2, 4] {
        let total_ops = (threads * OPS_PER_THREAD) as u64;
        group.throughput(Throughput::Elements(total_ops));

        group.bench_with_input(BenchmarkId::new("wf_universal", threads), &threads, |b, &t| {
            b.iter(|| {
                let handles = WfCounterHandle::create(t, OPS_PER_THREAD + 1);
                let joins: Vec<_> = handles
                    .into_iter()
                    .map(|mut h| {
                        thread::spawn(move || {
                            for _ in 0..OPS_PER_THREAD {
                                h.fetch_add(1);
                            }
                        })
                    })
                    .collect();
                for j in joins {
                    j.join().unwrap();
                }
            });
        });

        group.bench_with_input(BenchmarkId::new("mutex", threads), &threads, |b, &t| {
            b.iter(|| {
                let counter = Arc::new(LockedCounter::new());
                let joins: Vec<_> = (0..t)
                    .map(|_| {
                        let c = Arc::clone(&counter);
                        thread::spawn(move || {
                            for _ in 0..OPS_PER_THREAD {
                                c.fetch_add(1);
                            }
                        })
                    })
                    .collect();
                for j in joins {
                    j.join().unwrap();
                }
            });
        });

        group.bench_with_input(BenchmarkId::new("native_faa", threads), &threads, |b, &t| {
            b.iter(|| {
                let counter = Arc::new(AtomicI64::new(0));
                let joins: Vec<_> = (0..t)
                    .map(|_| {
                        let c = Arc::clone(&counter);
                        thread::spawn(move || {
                            for _ in 0..OPS_PER_THREAD {
                                c.fetch_add(1, Ordering::SeqCst);
                            }
                        })
                    })
                    .collect();
                for j in joins {
                    j.join().unwrap();
                }
            });
        });
    }
    group.finish();
}

fn queue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_throughput");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for threads in [1usize, 2, 4] {
        let total_ops = (threads * OPS_PER_THREAD) as u64;
        group.throughput(Throughput::Elements(total_ops));

        group.bench_with_input(BenchmarkId::new("wf_universal", threads), &threads, |b, &t| {
            b.iter(|| {
                let handles = WfQueueHandle::create(t, OPS_PER_THREAD + 1);
                let joins: Vec<_> = handles
                    .into_iter()
                    .map(|mut h| {
                        thread::spawn(move || {
                            for i in 0..OPS_PER_THREAD / 2 {
                                h.enq(i as i64);
                                let _ = h.deq();
                            }
                        })
                    })
                    .collect();
                for j in joins {
                    j.join().unwrap();
                }
            });
        });

        group.bench_with_input(BenchmarkId::new("mutex", threads), &threads, |b, &t| {
            b.iter(|| {
                let q = Arc::new(LockedQueue::new());
                let joins: Vec<_> = (0..t)
                    .map(|_| {
                        let q = Arc::clone(&q);
                        thread::spawn(move || {
                            for i in 0..OPS_PER_THREAD / 2 {
                                q.enq(i as i64);
                                let _ = q.deq();
                            }
                        })
                    })
                    .collect();
                for j in joins {
                    j.join().unwrap();
                }
            });
        });

        group.bench_with_input(
            BenchmarkId::new("michael_scott", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let q = Arc::new(MsQueue::new());
                    let joins: Vec<_> = (0..t)
                        .map(|_| {
                            let q = Arc::clone(&q);
                            thread::spawn(move || {
                                for i in 0..OPS_PER_THREAD / 2 {
                                    q.enq(i as i64);
                                    let _ = q.deq();
                                }
                            })
                        })
                        .collect();
                    for j in joins {
                        j.join().unwrap();
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, counter_throughput, queue_throughput);
criterion_main!(benches);
