//! P1 — throughput of the wait-free universal objects against lock-based
//! and specialized lock-free baselines, across thread counts.
//!
//! Expected shape (the paper makes no quantitative claims): the universal
//! construction pays for its generality — specialized lock-free objects
//! and even mutexes beat it on raw throughput — but it is the only one of
//! the three with a per-operation *bound* that survives adversarial
//! scheduling and crashes.

use std::sync::Arc;

use waitfree_sched::atomic::{AtomicI64, Ordering};
use waitfree_sched::thread;

use waitfree_bench::timing::bench;
use waitfree_sync::locked::{LockedCounter, LockedQueue};
use waitfree_sync::lockfree::MsQueue;
use waitfree_sync::wrappers::{WfCounterHandle, WfQueueHandle};

const OPS_PER_THREAD: usize = 2_000;

fn counter_throughput() {
    for threads in [1usize, 2, 4] {
        bench("counter_throughput", &format!("wf_universal/{threads}"), || {
            let handles = WfCounterHandle::create(threads, OPS_PER_THREAD + 1);
            let joins: Vec<_> = handles
                .into_iter()
                .map(|mut h| {
                    thread::spawn(move || {
                        for _ in 0..OPS_PER_THREAD {
                            h.fetch_add(1);
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().unwrap();
            }
        });

        bench("counter_throughput", &format!("mutex/{threads}"), || {
            let counter = Arc::new(LockedCounter::new());
            let joins: Vec<_> = (0..threads)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    thread::spawn(move || {
                        for _ in 0..OPS_PER_THREAD {
                            c.fetch_add(1);
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().unwrap();
            }
        });

        bench("counter_throughput", &format!("native_faa/{threads}"), || {
            let counter = Arc::new(AtomicI64::new(0));
            let joins: Vec<_> = (0..threads)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    thread::spawn(move || {
                        for _ in 0..OPS_PER_THREAD {
                            c.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().unwrap();
            }
        });
    }
}

fn queue_throughput() {
    for threads in [1usize, 2, 4] {
        bench("queue_throughput", &format!("wf_universal/{threads}"), || {
            let handles = WfQueueHandle::create(threads, OPS_PER_THREAD + 1);
            let joins: Vec<_> = handles
                .into_iter()
                .map(|mut h| {
                    thread::spawn(move || {
                        for i in 0..OPS_PER_THREAD / 2 {
                            h.enq(i as i64);
                            let _ = h.deq();
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().unwrap();
            }
        });

        bench("queue_throughput", &format!("mutex/{threads}"), || {
            let q = Arc::new(LockedQueue::new());
            let joins: Vec<_> = (0..threads)
                .map(|_| {
                    let q = Arc::clone(&q);
                    thread::spawn(move || {
                        for i in 0..OPS_PER_THREAD / 2 {
                            q.enq(i as i64);
                            let _ = q.deq();
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().unwrap();
            }
        });

        bench("queue_throughput", &format!("michael_scott/{threads}"), || {
            let q = Arc::new(MsQueue::new());
            let joins: Vec<_> = (0..threads)
                .map(|_| {
                    let q = Arc::clone(&q);
                    thread::spawn(move || {
                        for i in 0..OPS_PER_THREAD / 2 {
                            q.enq(i as i64);
                            let _ = q.deq();
                        }
                    })
                })
                .collect();
            for j in joins {
                j.join().unwrap();
            }
        });
    }
}

fn main() {
    counter_throughput();
    queue_throughput();
}
