//! P4 — explorer performance: configurations per second for exhaustive
//! checking, valency analysis cost, and the ablation the design calls
//! out: crash branching multiplies the explored space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use waitfree_core::protocols::cas::CasConsensus;
use waitfree_core::protocols::mem_swap::SwapConsensusN;
use waitfree_explorer::check::{check_consensus, CheckSettings};
use waitfree_explorer::valency;
use waitfree_model::{linearize, PendingPolicy, Pid};
use waitfree_objects::register::{RegOp, RegResp, RwRegister};

fn exhaustive_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("exhaustive_check");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("cas_with_crashes", n), &n, |b, &n| {
            let settings = CheckSettings::default();
            b.iter(|| {
                let (p, o) = CasConsensus::setup();
                check_consensus(&p, &o, n, &settings)
            });
        });
        group.bench_with_input(BenchmarkId::new("cas_no_crashes", n), &n, |b, &n| {
            let settings = CheckSettings { crashes: false, ..CheckSettings::default() };
            b.iter(|| {
                let (p, o) = CasConsensus::setup();
                check_consensus(&p, &o, n, &settings)
            });
        });
    }
    group.bench_function("mem_swap_n3_with_crashes", |b| {
        let settings = CheckSettings::default();
        b.iter(|| {
            let (p, o) = SwapConsensusN::setup(3);
            check_consensus(&p, &o, 3, &settings)
        });
    });
    group.finish();
}

fn valency_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("valency_analysis");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [2usize, 3] {
        group.bench_with_input(BenchmarkId::new("mem_swap", n), &n, |b, &n| {
            b.iter(|| {
                let (p, o) = SwapConsensusN::setup(n);
                valency::analyze(&p, &o, n, 10_000_000)
            });
        });
    }
    group.finish();
}

fn linearizability_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("linearizability_check");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for ops in [6usize, 10, 14] {
        group.bench_with_input(BenchmarkId::new("register_history", ops), &ops, |b, &ops| {
            // A maximally overlapping register history: all writes open,
            // then interleaved reads.
            let mut h = waitfree_model::History::new();
            for i in 0..ops / 2 {
                h.invoke(Pid(i), RegOp::Write(i as i64));
            }
            for i in 0..ops / 2 {
                h.respond(Pid(i), RegResp::Written).unwrap();
            }
            b.iter(|| linearize(&h, &RwRegister::new(0), PendingPolicy::MayTakeEffect));
        });
    }
    group.finish();
}

criterion_group!(benches, exhaustive_check, valency_analysis, linearizability_check);
criterion_main!(benches);
