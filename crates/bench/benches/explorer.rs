//! P4 — explorer performance: configurations per second for exhaustive
//! checking, valency analysis cost, and the ablation the design calls
//! out: crash branching multiplies the explored space.

use waitfree_bench::timing::bench;
use waitfree_core::protocols::cas::CasConsensus;
use waitfree_core::protocols::mem_swap::SwapConsensusN;
use waitfree_explorer::check::{check_consensus, CheckSettings};
use waitfree_explorer::valency;
use waitfree_model::{linearize, PendingPolicy, Pid};
use waitfree_objects::register::{RegOp, RegResp, RwRegister};

fn exhaustive_check() {
    for n in [2usize, 3, 4] {
        bench("exhaustive_check", &format!("cas_with_crashes/{n}"), || {
            let settings = CheckSettings::default();
            let (p, o) = CasConsensus::setup();
            let _ = check_consensus(&p, &o, n, &settings);
        });
        bench("exhaustive_check", &format!("cas_no_crashes/{n}"), || {
            let settings = CheckSettings { crashes: false, ..CheckSettings::default() };
            let (p, o) = CasConsensus::setup();
            let _ = check_consensus(&p, &o, n, &settings);
        });
    }
    bench("exhaustive_check", "mem_swap_n3_with_crashes", || {
        let settings = CheckSettings::default();
        let (p, o) = SwapConsensusN::setup(3);
        let _ = check_consensus(&p, &o, 3, &settings);
    });
}

fn valency_analysis() {
    for n in [2usize, 3] {
        bench("valency_analysis", &format!("mem_swap/{n}"), || {
            let (p, o) = SwapConsensusN::setup(n);
            let _ = valency::analyze(&p, &o, n, 10_000_000);
        });
    }
}

fn linearizability_check() {
    for ops in [6usize, 10, 14] {
        // A maximally overlapping register history: all writes open,
        // then interleaved reads.
        let mut h = waitfree_model::History::new();
        for i in 0..ops / 2 {
            h.invoke(Pid(i), RegOp::Write(i as i64));
        }
        for i in 0..ops / 2 {
            h.respond(Pid(i), RegResp::Written).unwrap();
        }
        bench("linearizability_check", &format!("register_history/{ops}"), || {
            let _ = linearize(&h, &RwRegister::new(0), PendingPolicy::MayTakeEffect);
        });
    }
}

fn main() {
    exhaustive_check();
    valency_analysis();
    linearizability_check();
}
