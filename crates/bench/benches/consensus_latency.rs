//! P2 — latency of the hardware consensus primitives (one-shot object
//! creation + decision), uncontended and contended.

use std::sync::Arc;
use std::thread;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use waitfree_sync::consensus::{ConsensusCell, FaaConsensus2, TasConsensus2, UsizeConsensus};

fn uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_uncontended");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("usize_cas", |b| {
        b.iter(|| {
            let obj = UsizeConsensus::new();
            obj.decide(1)
        });
    });
    group.bench_function("cell_clone_value", |b| {
        b.iter(|| {
            let obj: ConsensusCell<u64> = ConsensusCell::new(4);
            obj.decide(0, 42)
        });
    });
    group.bench_function("faa_two_process", |b| {
        b.iter(|| {
            let obj = FaaConsensus2::new();
            obj.decide(0, 7)
        });
    });
    group.bench_function("tas_two_process", |b| {
        b.iter(|| {
            let obj = TasConsensus2::new();
            obj.decide(1, 7)
        });
    });
    group.finish();
}

fn contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus_contended");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("usize_cas_batch", threads),
            &threads,
            |b, &t| {
                // Amortize thread spawn over a batch of 1000 objects.
                b.iter(|| {
                    let objs: Arc<Vec<UsizeConsensus>> =
                        Arc::new((0..1000).map(|_| UsizeConsensus::new()).collect());
                    let joins: Vec<_> = (0..t)
                        .map(|i| {
                            let objs = Arc::clone(&objs);
                            thread::spawn(move || {
                                let mut acc = 0usize;
                                for o in objs.iter() {
                                    acc = acc.wrapping_add(o.decide(i + 1));
                                }
                                acc
                            })
                        })
                        .collect();
                    joins.into_iter().map(|j| j.join().unwrap()).sum::<usize>()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, uncontended, contended);
criterion_main!(benches);
