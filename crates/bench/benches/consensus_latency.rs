//! P2 — latency of the hardware consensus primitives (one-shot object
//! creation + decision), uncontended and contended.

use std::sync::Arc;

use waitfree_sched::thread;

use waitfree_bench::timing::bench;
use waitfree_sync::consensus::{ConsensusCell, FaaConsensus2, TasConsensus2, UsizeConsensus};

fn uncontended() {
    bench("consensus_uncontended", "usize_cas", || {
        let obj = UsizeConsensus::new();
        let _ = obj.decide(1);
    });
    bench("consensus_uncontended", "cell_clone_value", || {
        let obj: ConsensusCell<u64> = ConsensusCell::new(4);
        let _ = obj.decide(0, 42);
    });
    bench("consensus_uncontended", "faa_two_process", || {
        let obj = FaaConsensus2::new();
        let _ = obj.decide(0, 7);
    });
    bench("consensus_uncontended", "tas_two_process", || {
        let obj = TasConsensus2::new();
        let _ = obj.decide(1, 7);
    });
}

fn contended() {
    for threads in [2usize, 4, 8] {
        // Amortize thread spawn over a batch of 1000 objects.
        bench("consensus_contended", &format!("usize_cas_batch/{threads}"), || {
            let objs: Arc<Vec<UsizeConsensus>> =
                Arc::new((0..1000).map(|_| UsizeConsensus::new()).collect());
            let joins: Vec<_> = (0..threads)
                .map(|i| {
                    let objs = Arc::clone(&objs);
                    thread::spawn(move || {
                        let mut acc = 0usize;
                        for o in objs.iter() {
                            acc = acc.wrapping_add(o.decide(i + 1));
                        }
                        acc
                    })
                })
                .collect();
            let _: usize = joins.into_iter().map(|j| j.join().unwrap()).sum();
        });
    }
}

fn main() {
    uncontended();
    contended();
}
