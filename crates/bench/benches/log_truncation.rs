//! P5 — ablation: §4.1's checkpoint truncation. Without it the k-th
//! operation replays k log entries (O(k) and growing); with it the replay
//! is bounded. This is the wait-free → strongly-wait-free upgrade,
//! measured.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use waitfree_core::universal::log::LogUniversal;
use waitfree_model::Pid;
use waitfree_objects::counter::{Counter, CounterOp};

fn log_truncation(c: &mut Criterion) {
    let mut group = c.benchmark_group("log_truncation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for history_len in [64usize, 256, 1024] {
        group.throughput(Throughput::Elements(history_len as u64));
        group.bench_with_input(
            BenchmarkId::new("plain_replay", history_len),
            &history_len,
            |b, &k| {
                b.iter(|| {
                    let mut uni = LogUniversal::new(Counter::new(0), false);
                    for _ in 0..k {
                        uni.invoke(Pid(0), CounterOp::Add(1));
                    }
                    uni.last_replay()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("checkpointed", history_len),
            &history_len,
            |b, &k| {
                b.iter(|| {
                    let mut uni = LogUniversal::new(Counter::new(0), true);
                    for _ in 0..k {
                        uni.invoke(Pid(0), CounterOp::Add(1));
                    }
                    uni.last_replay()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, log_truncation);
criterion_main!(benches);
