//! P5 — ablation: §4.1's checkpoint truncation. Without it the k-th
//! operation replays k log entries (O(k) and growing); with it the replay
//! is bounded. This is the wait-free → strongly-wait-free upgrade,
//! measured.

use waitfree_bench::timing::bench;
use waitfree_core::universal::log::LogUniversal;
use waitfree_model::Pid;
use waitfree_objects::counter::{Counter, CounterOp};

fn main() {
    for history_len in [64usize, 256, 1024] {
        bench("log_truncation", &format!("plain_replay/{history_len}"), || {
            let mut uni = LogUniversal::new(Counter::new(0), false);
            for _ in 0..history_len {
                uni.invoke(Pid(0), CounterOp::Add(1));
            }
            let _ = uni.last_replay();
        });
        bench("log_truncation", &format!("checkpointed/{history_len}"), || {
            let mut uni = LogUniversal::new(Counter::new(0), true);
            for _ in 0..history_len {
                uni.invoke(Pid(0), CounterOp::Add(1));
            }
            let _ = uni.last_replay();
        });
    }
}
