//! # waitfree-model
//!
//! The formal model underlying the reproduction of Herlihy's
//! *"Impossibility and Universality Results for Wait-Free Synchronization"*
//! (PODC 1988).
//!
//! The paper models processes and objects as I/O automata mediated by a
//! scheduler (its §2). This crate provides the executable analog:
//!
//! * [`Pid`] — process identities (consensus is treated as an *election*
//!   among process names, exactly as in the paper's §3).
//! * [`ObjectSpec`] / [`BranchingSpec`] — sequential object specifications
//!   as deterministic (or finitely nondeterministic) state machines. Because
//!   every object in the paper is linearizable, a concurrent execution can
//!   be explored at the granularity of complete operations ("Since registers
//!   are linearizable, we can consider complete read and write operations",
//!   proof of Theorem 2).
//! * [`ProcessAutomaton`] — deterministic per-process protocol code that
//!   invokes operations and eventually decides; the unit the explorer
//!   schedules.
//! * [`ImplAutomaton`] — front-end automata implementing a high-level object
//!   from a low-level one (the paper's §2.4 implementation structure).
//! * [`History`] and [`linearize`] — invocation/response histories and a
//!   decision procedure for linearizability (the paper's §2.3 correctness
//!   condition).
//!
//! # Example
//!
//! ```
//! use waitfree_model::{ObjectSpec, Pid};
//!
//! /// A single read/write register over `i64` values.
//! #[derive(Clone, Debug, PartialEq, Eq, Hash)]
//! struct Register(i64);
//!
//! #[derive(Clone, Debug, PartialEq, Eq, Hash)]
//! enum Op { Read, Write(i64) }
//!
//! impl ObjectSpec for Register {
//!     type Op = Op;
//!     type Resp = i64;
//!     fn apply(&mut self, _pid: Pid, op: &Op) -> i64 {
//!         match *op {
//!             Op::Read => self.0,
//!             Op::Write(v) => { let old = self.0; self.0 = v; old }
//!         }
//!     }
//! }
//!
//! let mut r = Register(0);
//! assert_eq!(r.apply(Pid(0), &Op::Write(7)), 0);
//! assert_eq!(r.apply(Pid(1), &Op::Read), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod bitset;
mod error;
mod history;
mod linearize;
mod pid;
mod spec;

pub use automaton::{Action, ImplAction, ImplAutomaton, ProcessAutomaton};
pub use bitset::BitSet;
pub use error::{HistoryError, ModelError};
pub use history::{Event, History, OpRecord, PendingPolicy};
pub use linearize::{linearize, LinearizeOutcome, LinearizeReport};
pub use pid::Pid;
pub use spec::{BranchingSpec, Nondet, ObjectSpec};

/// The value domain shared by protocols and simple objects.
///
/// The paper takes the consensus domain `D` to be the set of process names;
/// we use `i64` so the same domain also covers register contents,
/// fetch-and-add deltas, and sentinel values such as `EMPTY`.
pub type Val = i64;

/// Sentinel conventionally used for "empty" / `⊥` responses where an
/// `Option` would obscure arithmetic (kept out of the way of small pids).
pub const BOTTOM: Val = i64::MIN;
