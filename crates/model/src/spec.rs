//! Sequential object specifications.

use std::fmt::Debug;
use std::hash::Hash;

use crate::Pid;

/// A deterministic sequential object specification.
///
/// This is the executable form of the paper's "sequential object" (§2.2):
/// a set of states with **total** operations, specified by the effect each
/// operation has when executed alone. All objects in this workspace have
/// total operations — e.g. `deq` on an empty queue returns an explicit
/// *empty* response rather than blocking, exactly as the paper requires
/// ("a total deq would return an exception").
///
/// Implementations must be deterministic: the response and successor state
/// are functions of `(state, pid, op)`. The `pid` parameter exists because
/// a few objects in the paper are process-aware (e.g. `fetch-and-cons`
/// trims the caller's own previous operation; consensus objects record the
/// proposer).
///
/// States, operations and responses must be `Eq + Hash` so the explorer can
/// memoize global configurations and the linearizability checker can cache
/// partial linearizations.
pub trait ObjectSpec: Clone + Eq + Hash + Debug {
    /// Operations (invocations, including argument values).
    type Op: Clone + Eq + Hash + Debug;
    /// Responses (result values).
    type Resp: Clone + Eq + Hash + Debug;

    /// Apply one operation atomically, mutating the state and returning the
    /// response. Operations are total: this never fails and never blocks.
    fn apply(&mut self, pid: Pid, op: &Self::Op) -> Self::Resp;

    /// Apply an operation to a copy of the state, returning the successor
    /// state and the response. Convenience for explorers that keep states
    /// immutable.
    #[must_use]
    fn applied(&self, pid: Pid, op: &Self::Op) -> (Self, Self::Resp) {
        let mut next = self.clone();
        let resp = next.apply(pid, op);
        (next, resp)
    }
}

/// A finitely nondeterministic sequential object specification.
///
/// The paper's automata may be nondeterministic; the key example in this
/// workspace is an *unordered* message channel (the Dolev–Dwork–Stockmeyer
/// comparison in §3.1), where `recv` may deliver any pending message, and a
/// *safe* register, where a read overlapping a write may return anything.
/// An adversarial scheduler resolves the nondeterminism, so the explorer
/// branches over every outcome of [`BranchingSpec::apply_all`].
///
/// Every [`ObjectSpec`] is a `BranchingSpec` with exactly one branch.
pub trait BranchingSpec: Clone + Eq + Hash + Debug {
    /// Operations (invocations, including argument values).
    type Op: Clone + Eq + Hash + Debug;
    /// Responses (result values).
    type Resp: Clone + Eq + Hash + Debug;

    /// All `(successor state, response)` outcomes the operation may have.
    ///
    /// The returned vector is never empty (operations are total).
    fn apply_all(&self, pid: Pid, op: &Self::Op) -> Vec<(Self, Self::Resp)>;
}

impl<O: ObjectSpec> BranchingSpec for O {
    type Op = O::Op;
    type Resp = O::Resp;

    fn apply_all(&self, pid: Pid, op: &Self::Op) -> Vec<(Self, Self::Resp)> {
        vec![self.applied(pid, op)]
    }
}

/// Adapter giving a nondeterministic specification by composing a
/// deterministic object with an explicit outcome-enumeration function.
///
/// Useful in tests for building small nondeterministic specs without a new
/// type. The enumeration function is carried as a plain `fn` pointer so the
/// adapter stays `Eq + Hash`.
#[derive(Clone, Debug)]
pub struct Nondet<O: ObjectSpec> {
    /// Underlying deterministic state.
    pub state: O,
    /// Enumerates outcomes; supersedes the deterministic `apply`.
    pub branches: BranchFn<O>,
}

/// Outcome-enumeration function carried by [`Nondet`]: all
/// `(successor, response)` pairs an operation may produce from a state.
pub type BranchFn<O> = fn(&O, Pid, &<O as ObjectSpec>::Op) -> Vec<(O, <O as ObjectSpec>::Resp)>;

impl<O: ObjectSpec> PartialEq for Nondet<O> {
    fn eq(&self, other: &Self) -> bool {
        self.state == other.state && std::ptr::fn_addr_eq(self.branches, other.branches)
    }
}

impl<O: ObjectSpec> Eq for Nondet<O> {}

impl<O: ObjectSpec> Hash for Nondet<O> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.state.hash(state);
    }
}

impl<O: ObjectSpec> BranchingSpec for Nondet<O> {
    type Op = O::Op;
    type Resp = O::Resp;

    fn apply_all(&self, pid: Pid, op: &Self::Op) -> Vec<(Self, Self::Resp)> {
        (self.branches)(&self.state, pid, op)
            .into_iter()
            .map(|(state, resp)| {
                (
                    Nondet {
                        state,
                        branches: self.branches,
                    },
                    resp,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Counter(i64);

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum Op {
        Inc,
        Get,
    }

    impl ObjectSpec for Counter {
        type Op = Op;
        type Resp = i64;
        fn apply(&mut self, _pid: Pid, op: &Op) -> i64 {
            match op {
                Op::Inc => {
                    self.0 += 1;
                    self.0
                }
                Op::Get => self.0,
            }
        }
    }

    #[test]
    fn applied_leaves_original_untouched() {
        let c = Counter(0);
        let (next, resp) = c.applied(Pid(0), &Op::Inc);
        assert_eq!(c, Counter(0));
        assert_eq!(next, Counter(1));
        assert_eq!(resp, 1);
    }

    #[test]
    fn deterministic_spec_has_single_branch() {
        let c = Counter(5);
        let branches = c.apply_all(Pid(0), &Op::Get);
        assert_eq!(branches, vec![(Counter(5), 5)]);
    }

    #[test]
    fn nondet_adapter_branches() {
        fn coin(state: &Counter, _pid: Pid, _op: &Op) -> Vec<(Counter, i64)> {
            vec![(state.clone(), 0), (state.clone(), 1)]
        }
        let nd = Nondet {
            state: Counter(0),
            branches: coin,
        };
        let out = nd.apply_all(Pid(0), &Op::Get);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].1, 0);
        assert_eq!(out[1].1, 1);
    }

    #[test]
    fn nondet_equality_ignores_fn_identity_only_if_same() {
        fn coin(state: &Counter, _pid: Pid, _op: &Op) -> Vec<(Counter, i64)> {
            vec![(state.clone(), 0)]
        }
        let a = Nondet {
            state: Counter(0),
            branches: coin,
        };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
