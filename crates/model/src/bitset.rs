//! A small, hashable bit set used by the linearizability checker.

use std::fmt;

/// A fixed-capacity bit set over `usize` indices.
///
/// Used to memoize which operations have already been linearized during the
/// Wing–Gong search; must therefore be cheap to clone, hash and compare.
///
/// # Example
///
/// ```
/// use waitfree_model::BitSet;
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(99);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set able to hold indices `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Number of indices the set can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `i`, returning whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "index {i} out of capacity {}", self.capacity);
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Remove `i`, returning whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "index {i} out of capacity {}", self.capacity);
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Whether `i` is in the set. Out-of-capacity indices are absent.
    #[must_use]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of elements in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.capacity).filter(move |&i| self.contains(i))
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect indices into a set sized to the largest index.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "second insert reports already-present");
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn empty_and_iter() {
        let mut s = BitSet::new(10);
        assert!(s.is_empty());
        s.insert(2);
        s.insert(7);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 7]);
        assert!(!s.is_empty());
    }

    #[test]
    fn equality_and_hash_agree_on_content() {
        use std::collections::HashSet;
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(5);
        b.insert(5);
        let mut seen = HashSet::new();
        seen.insert(a.clone());
        assert!(seen.contains(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [3usize, 9, 1].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert!(s.contains(9));
        assert!(!s.contains(0));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_past_capacity_panics() {
        let mut s = BitSet::new(4);
        s.insert(4);
    }

    #[test]
    fn contains_past_capacity_is_false() {
        let s = BitSet::new(4);
        assert!(!s.contains(1000));
    }
}
