//! A decision procedure for linearizability (Herlihy & Wing's correctness
//! condition, §2.3 of the paper), in the style of Wing & Gong's checker.
//!
//! Given a concurrent [`History`] and an [`ObjectSpec`], the checker
//! searches for a *linearization*: a sequential order of the operations
//! that (1) respects real-time precedence (an operation that completed
//! before another was invoked must be ordered first) and (2) is legal for
//! the sequential specification, reproducing each completed operation's
//! response.

use std::collections::HashSet;

use crate::{BitSet, History, ObjectSpec, OpRecord, PendingPolicy};

/// Result of checking a history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinearizeOutcome {
    /// A legal linearization exists; the witness lists operation indices
    /// (into [`History::ops`]) in linearization order. Pending operations
    /// that were deemed never to have taken effect are absent.
    Linearizable {
        /// Witness order of operation indices.
        witness: Vec<usize>,
    },
    /// No legal linearization exists.
    NotLinearizable,
}

impl LinearizeOutcome {
    /// Whether the history was linearizable.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, LinearizeOutcome::Linearizable { .. })
    }
}

/// Outcome plus search statistics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearizeReport {
    /// The verdict and witness.
    pub outcome: LinearizeOutcome,
    /// Number of distinct `(linearized-set, object-state)` configurations
    /// visited; a measure of how hard the history was to check.
    pub configurations: usize,
}

/// Check whether `history` is linearizable with respect to the sequential
/// specification starting in `initial`.
///
/// `pending` selects how incomplete invocations are treated; the default
/// ([`PendingPolicy::MayTakeEffect`]) is the standard completion semantics.
///
/// # Example
///
/// A non-linearizable register history: a read returns a value that was
/// never written.
///
/// ```
/// use waitfree_model::{linearize, History, ObjectSpec, PendingPolicy, Pid};
///
/// #[derive(Clone, Debug, PartialEq, Eq, Hash)]
/// struct Reg(i64);
/// #[derive(Clone, Debug, PartialEq, Eq, Hash)]
/// enum Op { Read, Write(i64) }
/// impl ObjectSpec for Reg {
///     type Op = Op;
///     type Resp = i64;
///     fn apply(&mut self, _p: Pid, op: &Op) -> i64 {
///         match *op { Op::Read => self.0, Op::Write(v) => { self.0 = v; 0 } }
///     }
/// }
///
/// let mut h = History::new();
/// h.invoke(Pid(0), Op::Write(1));
/// h.respond(Pid(0), 0).unwrap();
/// h.invoke(Pid(1), Op::Read);
/// h.respond(Pid(1), 9).unwrap(); // 9 was never written
/// let report = linearize(&h, &Reg(0), PendingPolicy::MayTakeEffect);
/// assert!(!report.outcome.is_ok());
/// ```
#[must_use]
pub fn linearize<O: ObjectSpec>(
    history: &History<O::Op, O::Resp>,
    initial: &O,
    pending: PendingPolicy,
) -> LinearizeReport {
    let mut ops = history.ops();
    if pending == PendingPolicy::Drop {
        ops.retain(OpRecord::is_complete);
    }
    let n = ops.len();
    let complete: Vec<usize> = (0..n).filter(|&i| ops[i].is_complete()).collect();

    let mut seen: HashSet<(BitSet, O)> = HashSet::new();
    let mut witness: Vec<usize> = Vec::new();
    let done = BitSet::new(n);
    let ok = search(&ops, &complete, initial, done, &mut seen, &mut witness);
    LinearizeReport {
        outcome: if ok {
            LinearizeOutcome::Linearizable { witness }
        } else {
            LinearizeOutcome::NotLinearizable
        },
        configurations: seen.len(),
    }
}

fn search<O: ObjectSpec>(
    ops: &[OpRecord<O::Op, O::Resp>],
    complete: &[usize],
    state: &O,
    done: BitSet,
    seen: &mut HashSet<(BitSet, O)>,
    witness: &mut Vec<usize>,
) -> bool {
    if complete.iter().all(|&i| done.contains(i)) {
        return true;
    }
    if !seen.insert((done.clone(), state.clone())) {
        return false;
    }
    // An undone op may be linearized next iff no other undone op completed
    // strictly before it was invoked.
    let min_response = (0..ops.len())
        .filter(|&i| !done.contains(i))
        .map(|i| ops[i].responded_at)
        .min()
        .unwrap_or(usize::MAX);
    for i in 0..ops.len() {
        if done.contains(i) || ops[i].invoked_at > min_response {
            continue;
        }
        let (next_state, resp) = state.applied(ops[i].pid, &ops[i].op);
        if let Some(expected) = &ops[i].resp {
            if &resp != expected {
                continue;
            }
        }
        let mut next_done = done.clone();
        next_done.insert(i);
        witness.push(i);
        if search(ops, complete, &next_state, next_done, seen, witness) {
            return true;
        }
        witness.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pid;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    struct Reg(i64);

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum Op {
        Read,
        Write(i64),
    }

    impl ObjectSpec for Reg {
        type Op = Op;
        type Resp = i64;
        fn apply(&mut self, _p: Pid, op: &Op) -> i64 {
            match *op {
                Op::Read => self.0,
                Op::Write(v) => {
                    self.0 = v;
                    0
                }
            }
        }
    }

    fn check(h: &History<Op, i64>) -> bool {
        linearize(h, &Reg(0), PendingPolicy::MayTakeEffect)
            .outcome
            .is_ok()
    }

    #[test]
    fn empty_history_is_linearizable() {
        let h: History<Op, i64> = History::new();
        assert!(check(&h));
    }

    #[test]
    fn sequential_history_is_linearizable() {
        let mut h = History::new();
        h.invoke(Pid(0), Op::Write(5));
        h.respond(Pid(0), 0).unwrap();
        h.invoke(Pid(1), Op::Read);
        h.respond(Pid(1), 5).unwrap();
        assert!(check(&h));
    }

    #[test]
    fn overlapping_reads_may_reorder() {
        // W(1) overlaps R->0 and R->1: both reads can be placed around it.
        let mut h = History::new();
        h.invoke(Pid(0), Op::Write(1));
        h.invoke(Pid(1), Op::Read);
        h.respond(Pid(1), 0).unwrap();
        h.invoke(Pid(1), Op::Read);
        h.respond(Pid(1), 1).unwrap();
        h.respond(Pid(0), 0).unwrap();
        assert!(check(&h));
    }

    #[test]
    fn stale_read_after_completion_is_rejected() {
        // W(1) completes, then R returns 0: violates real-time order.
        let mut h = History::new();
        h.invoke(Pid(0), Op::Write(1));
        h.respond(Pid(0), 0).unwrap();
        h.invoke(Pid(1), Op::Read);
        h.respond(Pid(1), 0).unwrap();
        assert!(!check(&h));
    }

    #[test]
    fn new_old_inversion_is_rejected() {
        // P1 reads 1 then P2 reads 0 strictly later, with the only W(1)
        // completed before both reads: illegal.
        let mut h = History::new();
        h.invoke(Pid(0), Op::Write(1));
        h.respond(Pid(0), 0).unwrap();
        h.invoke(Pid(1), Op::Read);
        h.respond(Pid(1), 1).unwrap();
        h.invoke(Pid(2), Op::Read);
        h.respond(Pid(2), 0).unwrap();
        assert!(!check(&h));
    }

    #[test]
    fn pending_write_may_take_effect() {
        // W(3) never responds, but a read sees 3: allowed, the pending
        // write may have taken effect.
        let mut h = History::new();
        h.invoke(Pid(0), Op::Write(3));
        h.invoke(Pid(1), Op::Read);
        h.respond(Pid(1), 3).unwrap();
        assert!(check(&h));
    }

    #[test]
    fn pending_write_dropped_under_drop_policy() {
        let mut h = History::new();
        h.invoke(Pid(0), Op::Write(3));
        h.invoke(Pid(1), Op::Read);
        h.respond(Pid(1), 3).unwrap();
        let report = linearize(&h, &Reg(0), PendingPolicy::Drop);
        assert!(!report.outcome.is_ok());
    }

    #[test]
    fn witness_order_is_legal() {
        let mut h = History::new();
        h.invoke(Pid(0), Op::Write(2));
        h.respond(Pid(0), 0).unwrap();
        h.invoke(Pid(1), Op::Read);
        h.respond(Pid(1), 2).unwrap();
        let report = linearize(&h, &Reg(0), PendingPolicy::MayTakeEffect);
        match report.outcome {
            LinearizeOutcome::Linearizable { witness } => assert_eq!(witness, vec![0, 1]),
            LinearizeOutcome::NotLinearizable => panic!("expected linearizable"),
        }
    }

    #[test]
    fn configurations_counted() {
        let mut h = History::new();
        h.invoke(Pid(0), Op::Write(1));
        h.respond(Pid(0), 0).unwrap();
        let report = linearize(&h, &Reg(0), PendingPolicy::MayTakeEffect);
        assert!(report.configurations >= 1);
    }
}
