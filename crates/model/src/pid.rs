//! Process identities.

use std::fmt;

/// A process identity.
///
/// The paper phrases consensus as an election over the domain of process
/// names, each process proposing its own name (§3). We therefore make the
/// identity a first-class, ordered value.
///
/// # Example
///
/// ```
/// use waitfree_model::Pid;
/// let p = Pid(0);
/// let q = Pid(1);
/// assert!(p < q);
/// assert_eq!(p.as_val(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pid(pub usize);

impl Pid {
    /// The identity as a value in the shared domain (`i64`).
    #[must_use]
    pub fn as_val(self) -> crate::Val {
        self.0 as crate::Val
    }

    /// Iterator over the first `n` process identities `P0..P(n-1)`.
    ///
    /// ```
    /// use waitfree_model::Pid;
    /// let all: Vec<Pid> = Pid::all(3).collect();
    /// assert_eq!(all, vec![Pid(0), Pid(1), Pid(2)]);
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = Pid> {
        (0..n).map(Pid)
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for Pid {
    fn from(i: usize) -> Self {
        Pid(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_ordering_follows_index() {
        assert!(Pid(0) < Pid(1));
        assert!(Pid(5) > Pid(4));
    }

    #[test]
    fn pid_display_and_debug() {
        assert_eq!(format!("{}", Pid(3)), "P3");
        assert_eq!(format!("{:?}", Pid(3)), "P3");
    }

    #[test]
    fn pid_all_enumerates_in_order() {
        assert_eq!(Pid::all(0).count(), 0);
        assert_eq!(Pid::all(4).last(), Some(Pid(3)));
    }

    #[test]
    fn pid_as_val_roundtrip() {
        for i in 0..10 {
            assert_eq!(Pid(i).as_val(), i as i64);
        }
    }
}
