//! Concurrent histories of invocation and response events.

use std::fmt::Debug;
use std::hash::Hash;

use crate::{HistoryError, Pid};

/// One event in a concurrent history (the paper's `INVOKE`/`RESPOND`
/// events, §2.1, restricted to a single object).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Event<Op, Resp> {
    /// Process `pid` invokes `op`.
    Invoke {
        /// Invoking process.
        pid: Pid,
        /// Invoked operation.
        op: Op,
    },
    /// Process `pid` receives `resp` for its pending invocation.
    Respond {
        /// Responding process.
        pid: Pid,
        /// The result value.
        resp: Resp,
    },
}

impl<Op, Resp> Event<Op, Resp> {
    /// The process this event belongs to.
    pub fn pid(&self) -> Pid {
        match self {
            Event::Invoke { pid, .. } | Event::Respond { pid, .. } => *pid,
        }
    }
}

/// One operation extracted from a history: its invocation, its response (if
/// any), and the event indices delimiting its duration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpRecord<Op, Resp> {
    /// Invoking process.
    pub pid: Pid,
    /// The operation.
    pub op: Op,
    /// The response, or `None` if the operation is pending.
    pub resp: Option<Resp>,
    /// Index of the invocation event.
    pub invoked_at: usize,
    /// Index of the response event (`usize::MAX` while pending).
    pub responded_at: usize,
}

impl<Op, Resp> OpRecord<Op, Resp> {
    /// Whether the operation completed within the history.
    pub fn is_complete(&self) -> bool {
        self.resp.is_some()
    }

    /// Whether this operation finished strictly before `other` was invoked
    /// (the "real-time order" that linearizability must respect).
    pub fn precedes(&self, other: &Self) -> bool {
        self.is_complete() && self.responded_at < other.invoked_at
    }
}

/// How the linearizability checker treats pending invocations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PendingPolicy {
    /// A pending invocation may either have taken effect (with any response)
    /// or not; both possibilities are explored. This is the standard
    /// completion semantics for linearizability.
    #[default]
    MayTakeEffect,
    /// Pending invocations are ignored entirely.
    Drop,
}

/// A well-formed concurrent history over one object.
///
/// # Example
///
/// ```
/// use waitfree_model::{History, Pid};
/// let mut h: History<&str, i64> = History::new();
/// h.invoke(Pid(0), "write(7)");
/// h.invoke(Pid(1), "read");
/// h.respond(Pid(0), 0).unwrap();
/// h.respond(Pid(1), 7).unwrap();
/// assert_eq!(h.ops().len(), 2);
/// assert!(h.ops()[0].precedes(&h.ops()[1]) == false); // they overlap
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct History<Op, Resp> {
    events: Vec<Event<Op, Resp>>,
}

impl<Op, Resp> Default for History<Op, Resp> {
    fn default() -> Self {
        History { events: Vec::new() }
    }
}

impl<Op: Clone + Debug, Resp: Clone + Debug> History<Op, Resp> {
    /// An empty history.
    #[must_use]
    pub fn new() -> Self {
        History { events: Vec::new() }
    }

    /// The raw event sequence.
    #[must_use]
    pub fn events(&self) -> &[Event<Op, Resp>] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the history has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Record an invocation by `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` already has a pending invocation (well-formedness);
    /// use [`History::try_invoke`] to get an error instead.
    pub fn invoke(&mut self, pid: Pid, op: Op) {
        self.try_invoke(pid, op).expect("well-formed history");
    }

    /// Record an invocation by `pid`, or report ill-formedness.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::OverlappingInvocation`] if `pid` already has
    /// a pending invocation.
    pub fn try_invoke(&mut self, pid: Pid, op: Op) -> Result<(), HistoryError> {
        if self.has_pending(pid) {
            return Err(HistoryError::OverlappingInvocation {
                pid,
                index: self.events.len(),
            });
        }
        self.events.push(Event::Invoke { pid, op });
        Ok(())
    }

    /// Record a response for `pid`'s pending invocation.
    ///
    /// # Errors
    ///
    /// Returns [`HistoryError::ResponseWithoutInvocation`] if `pid` has no
    /// pending invocation.
    pub fn respond(&mut self, pid: Pid, resp: Resp) -> Result<(), HistoryError> {
        if !self.has_pending(pid) {
            return Err(HistoryError::ResponseWithoutInvocation {
                pid,
                index: self.events.len(),
            });
        }
        self.events.push(Event::Respond { pid, resp });
        Ok(())
    }

    /// Whether `pid` has an invocation without a matching response.
    #[must_use]
    pub fn has_pending(&self, pid: Pid) -> bool {
        let mut pending = false;
        for e in &self.events {
            if e.pid() == pid {
                pending = matches!(e, Event::Invoke { .. });
            }
        }
        pending
    }

    /// Extract per-operation records, pairing invocations with responses.
    #[must_use]
    pub fn ops(&self) -> Vec<OpRecord<Op, Resp>> {
        let mut out: Vec<OpRecord<Op, Resp>> = Vec::new();
        // Per-pid index of the op awaiting a response.
        let mut open: std::collections::HashMap<Pid, usize> = std::collections::HashMap::new();
        for (i, e) in self.events.iter().enumerate() {
            match e {
                Event::Invoke { pid, op } => {
                    open.insert(*pid, out.len());
                    out.push(OpRecord {
                        pid: *pid,
                        op: op.clone(),
                        resp: None,
                        invoked_at: i,
                        responded_at: usize::MAX,
                    });
                }
                Event::Respond { pid, resp } => {
                    let idx = open.remove(pid).expect("well-formed history");
                    out[idx].resp = Some(resp.clone());
                    out[idx].responded_at = i;
                }
            }
        }
        out
    }

    /// The subhistory of a single process (the paper's `H | P`).
    #[must_use]
    pub fn project(&self, pid: Pid) -> History<Op, Resp> {
        History {
            events: self
                .events
                .iter()
                .filter(|e| e.pid() == pid)
                .cloned()
                .collect(),
        }
    }

    /// Whether each process alternates matching invocations and responses.
    #[must_use]
    pub fn is_well_formed(&self) -> bool {
        let mut pending: std::collections::HashSet<Pid> = std::collections::HashSet::new();
        for e in &self.events {
            match e {
                Event::Invoke { pid, .. } => {
                    if !pending.insert(*pid) {
                        return false;
                    }
                }
                Event::Respond { pid, .. } => {
                    if !pending.remove(pid) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invoke_respond_pairing() {
        let mut h: History<u8, u8> = History::new();
        h.invoke(Pid(0), 1);
        h.respond(Pid(0), 10).unwrap();
        h.invoke(Pid(0), 2);
        let ops = h.ops();
        assert_eq!(ops.len(), 2);
        assert!(ops[0].is_complete());
        assert!(!ops[1].is_complete());
        assert_eq!(ops[0].resp, Some(10));
    }

    #[test]
    fn precedes_respects_real_time() {
        let mut h: History<u8, u8> = History::new();
        h.invoke(Pid(0), 1);
        h.respond(Pid(0), 0).unwrap();
        h.invoke(Pid(1), 2);
        h.respond(Pid(1), 0).unwrap();
        let ops = h.ops();
        assert!(ops[0].precedes(&ops[1]));
        assert!(!ops[1].precedes(&ops[0]));
    }

    #[test]
    fn overlapping_ops_do_not_precede() {
        let mut h: History<u8, u8> = History::new();
        h.invoke(Pid(0), 1);
        h.invoke(Pid(1), 2);
        h.respond(Pid(0), 0).unwrap();
        h.respond(Pid(1), 0).unwrap();
        let ops = h.ops();
        assert!(!ops[0].precedes(&ops[1]));
        assert!(!ops[1].precedes(&ops[0]));
    }

    #[test]
    fn double_invoke_rejected() {
        let mut h: History<u8, u8> = History::new();
        h.invoke(Pid(0), 1);
        assert_eq!(
            h.try_invoke(Pid(0), 2),
            Err(HistoryError::OverlappingInvocation { pid: Pid(0), index: 1 })
        );
    }

    #[test]
    fn orphan_response_rejected() {
        let mut h: History<u8, u8> = History::new();
        assert!(h.respond(Pid(0), 1).is_err());
    }

    #[test]
    fn projection_keeps_only_one_pid() {
        let mut h: History<u8, u8> = History::new();
        h.invoke(Pid(0), 1);
        h.invoke(Pid(1), 2);
        h.respond(Pid(1), 0).unwrap();
        let p1 = h.project(Pid(1));
        assert_eq!(p1.len(), 2);
        assert!(p1.is_well_formed());
    }

    #[test]
    fn well_formedness() {
        let mut h: History<u8, u8> = History::new();
        assert!(h.is_well_formed());
        h.invoke(Pid(0), 1);
        assert!(h.is_well_formed());
    }
}
