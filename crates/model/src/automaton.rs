//! Process and front-end automata.

use std::fmt::Debug;
use std::hash::Hash;

use crate::{Pid, Val};

/// What a protocol process does next.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Action<Op> {
    /// Invoke an operation on the shared object; the scheduler will deliver
    /// the response through [`ProcessAutomaton::observe`].
    Invoke(Op),
    /// Halt with a decision value (the `DECIDE(P, v)` output event of the
    /// paper's consensus protocols, §3).
    Decide(Val),
}

/// A deterministic per-process protocol.
///
/// This is the executable analog of the paper's process automaton: the
/// process alternates invocations and responses, and eventually emits a
/// decision. Determinism plus hashable local states let the explorer
/// memoize global configurations and compute valency.
///
/// The *wait-free* conditions of the paper (§3) are enforced externally by
/// the explorer: no process may take infinitely many steps without
/// deciding, and an undecided process always has an enabled action (which
/// determinism plus totality of `action` guarantees by construction).
///
/// `self` carries protocol parameters (e.g. the number of processes);
/// per-process mutable data lives in `State`.
pub trait ProcessAutomaton {
    /// Operations issued to the shared object.
    type Op: Clone + Eq + Hash + Debug;
    /// Responses received from the shared object.
    type Resp: Clone + Eq + Hash + Debug;
    /// Local process state.
    type State: Clone + Eq + Hash + Debug;

    /// Initial local state of process `pid`.
    fn start(&self, pid: Pid) -> Self::State;

    /// The enabled action in `state`. Must be total for undecided states.
    fn action(&self, pid: Pid, state: &Self::State) -> Action<Self::Op>;

    /// Deliver the response to the most recent invocation, producing the
    /// successor local state.
    fn observe(&self, pid: Pid, state: &Self::State, resp: &Self::Resp) -> Self::State;
}

/// What a front-end automaton does next while serving one high-level
/// operation.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ImplAction<LoOp, HiResp> {
    /// Invoke a low-level operation on the representation object.
    Invoke(LoOp),
    /// Complete the high-level operation with this response.
    Return(HiResp),
}

/// A front-end automaton implementing a high-level object from a low-level
/// ("representation") object — the paper's §2.4 structure `{F₁ … Fₙ; R}`.
///
/// Each process owns one front-end. A high-level invocation enters through
/// [`ImplAutomaton::begin`]; the front-end then performs a finite sequence
/// of low-level operations (wait-freedom: the explorer bounds this
/// sequence) before emitting [`ImplAction::Return`].
pub trait ImplAutomaton {
    /// High-level operations (of the implemented object).
    type HiOp: Clone + Eq + Hash + Debug;
    /// High-level responses.
    type HiResp: Clone + Eq + Hash + Debug;
    /// Low-level operations (on the representation object).
    type LoOp: Clone + Eq + Hash + Debug;
    /// Low-level responses.
    type LoResp: Clone + Eq + Hash + Debug;
    /// Local front-end state.
    type State: Clone + Eq + Hash + Debug;

    /// Idle state of the front-end for process `pid`.
    fn idle(&self, pid: Pid) -> Self::State;

    /// Accept a high-level invocation, making the front-end busy.
    fn begin(&self, pid: Pid, state: &Self::State, op: &Self::HiOp) -> Self::State;

    /// The enabled action while busy.
    fn action(&self, pid: Pid, state: &Self::State) -> ImplAction<Self::LoOp, Self::HiResp>;

    /// Deliver the response to the pending low-level invocation.
    fn observe(&self, pid: Pid, state: &Self::State, resp: &Self::LoResp) -> Self::State;

    /// Acknowledge that the high-level response was returned, making the
    /// front-end idle again. The default transitions through [`Self::idle`].
    fn finish(&self, pid: Pid, _state: &Self::State) -> Self::State {
        self.idle(pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A protocol that reads once, then decides what it read.
    struct ReadAndDecide;

    #[derive(Clone, Debug, PartialEq, Eq, Hash)]
    enum St {
        Fresh,
        Got(Val),
    }

    impl ProcessAutomaton for ReadAndDecide {
        type Op = ();
        type Resp = Val;
        type State = St;

        fn start(&self, _pid: Pid) -> St {
            St::Fresh
        }

        fn action(&self, _pid: Pid, state: &St) -> Action<()> {
            match state {
                St::Fresh => Action::Invoke(()),
                St::Got(v) => Action::Decide(*v),
            }
        }

        fn observe(&self, _pid: Pid, _state: &St, resp: &Val) -> St {
            St::Got(*resp)
        }
    }

    #[test]
    fn automaton_walkthrough() {
        let a = ReadAndDecide;
        let s0 = a.start(Pid(0));
        assert_eq!(a.action(Pid(0), &s0), Action::Invoke(()));
        let s1 = a.observe(Pid(0), &s0, &42);
        assert_eq!(a.action(Pid(0), &s1), Action::Decide(42));
    }
}
