//! Error types.

use std::error::Error;
use std::fmt;

use crate::Pid;

/// Ill-formed concurrent history (the paper's well-formedness condition:
/// each process alternates matching invocations and responses, §2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryError {
    /// A response event arrived for a process with no pending invocation.
    ResponseWithoutInvocation {
        /// Offending process.
        pid: Pid,
        /// Index of the offending event within the history.
        index: usize,
    },
    /// An invocation event arrived while the process already had one pending.
    OverlappingInvocation {
        /// Offending process.
        pid: Pid,
        /// Index of the offending event within the history.
        index: usize,
    },
}

impl fmt::Display for HistoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryError::ResponseWithoutInvocation { pid, index } => {
                write!(f, "response without matching invocation for {pid} at event {index}")
            }
            HistoryError::OverlappingInvocation { pid, index } => {
                write!(f, "overlapping invocation for {pid} at event {index}")
            }
        }
    }
}

impl Error for HistoryError {}

/// Errors surfaced by model-level procedures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// The history was ill-formed.
    History(HistoryError),
    /// A search exceeded its configured resource budget.
    BudgetExceeded {
        /// Human-readable description of the budget that was exhausted.
        what: &'static str,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::History(e) => write!(f, "ill-formed history: {e}"),
            ModelError::BudgetExceeded { what, limit } => {
                write!(f, "search budget exceeded: {what} (limit {limit})")
            }
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::History(e) => Some(e),
            ModelError::BudgetExceeded { .. } => None,
        }
    }
}

impl From<HistoryError> for ModelError {
    fn from(e: HistoryError) -> Self {
        ModelError::History(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = HistoryError::OverlappingInvocation { pid: Pid(2), index: 7 };
        assert_eq!(e.to_string(), "overlapping invocation for P2 at event 7");
        let m: ModelError = e.into();
        assert!(m.to_string().starts_with("ill-formed history"));
    }

    #[test]
    fn error_source_chain() {
        let m = ModelError::History(HistoryError::ResponseWithoutInvocation {
            pid: Pid(0),
            index: 0,
        });
        assert!(std::error::Error::source(&m).is_some());
        let b = ModelError::BudgetExceeded { what: "states", limit: 10 };
        assert!(std::error::Error::source(&b).is_none());
    }
}
